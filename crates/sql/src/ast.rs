//! The abstract syntax tree produced by the parser, consumed by the binder.

use vw_common::{DataType, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        /// Declared physical sort order: `ORDER BY (col [ASC|DESC], …)`.
        order_by: Vec<OrderItem>,
        /// Declared range partitioning: `PARTITION BY RANGE(col) PARTITIONS n`.
        partition_by: Option<PartitionByRange>,
    },
    Insert {
        table: String,
        columns: Vec<String>,
        rows: Vec<Vec<AstExpr>>,
    },
    Update {
        table: String,
        assignments: Vec<(String, AstExpr)>,
        predicate: Option<AstExpr>,
    },
    Delete {
        table: String,
        predicate: Option<AstExpr>,
    },
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <query>`: execute and render the profiled plan.
    ExplainAnalyze(Box<Statement>),
    /// `TRACE <query>`: execute with tracing forced on and return the
    /// per-worker timeline as chrome://tracing JSON.
    Trace(Box<Statement>),
    /// `SET [GLOBAL | LOCAL] <name> = <constant>`: configuration (memory
    /// budget, parallelism, …). Bare words on the right parse as strings, so
    /// `SET memory_budget = unbounded` works unquoted. Without a scope
    /// keyword the statement applies to the current session when one exists,
    /// else to the database.
    Set {
        name: String,
        value: AstExpr,
        scope: SetScope,
    },
}

/// Scope of a `SET` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetScope {
    /// No scope keyword: session if present, else global.
    #[default]
    Default,
    /// `SET GLOBAL …`: the shared database config.
    Global,
    /// `SET LOCAL …`: this session only (errors without a session).
    Local,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

/// SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// expression with optional alias
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// One FROM item: a base table with joined tables chained onto it.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
    pub joins: Vec<Join>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: AstJoinKind,
    pub table: String,
    pub alias: Option<String>,
    pub on: AstExpr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    Inner,
    Left,
}

/// ORDER BY item: expression (usually a name or ordinal) + direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub asc: bool,
    /// `NULLS FIRST` / `NULLS LAST`; `None` = dialect default (NULLS FIRST
    /// when ascending, NULLS LAST when descending).
    pub nulls_first: Option<bool>,
}

/// `PARTITION BY RANGE(col) PARTITIONS n` clause of CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionByRange {
    pub column: String,
    pub partitions: usize,
}

/// Binary operators at the AST level (mapped to `vw_plan::BinOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstAggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// A scalar expression before binding.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified column name: `x` or `t.x`.
    Column(Option<String>, String),
    Literal(Value),
    Binary {
        op: AstBinOp,
        l: Box<AstExpr>,
        r: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Neg(Box<AstExpr>),
    IsNull {
        e: Box<AstExpr>,
        negated: bool,
    },
    Between {
        e: Box<AstExpr>,
        lo: Box<AstExpr>,
        hi: Box<AstExpr>,
        negated: bool,
    },
    InList {
        e: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    InSubquery {
        e: Box<AstExpr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    Like {
        e: Box<AstExpr>,
        pattern: String,
        negated: bool,
    },
    Case {
        whens: Vec<(AstExpr, AstExpr)>,
        otherwise: Option<Box<AstExpr>>,
    },
    Cast {
        e: Box<AstExpr>,
        ty: DataType,
    },
    /// Aggregate call; `arg = None` means `COUNT(*)`.
    Agg {
        func: AstAggFunc,
        arg: Option<Box<AstExpr>>,
    },
    Substring {
        e: Box<AstExpr>,
        start: u32,
        len: u32,
    },
    Extract {
        part: ExtractPart,
        e: Box<AstExpr>,
    },
    /// `expr + INTERVAL 'n' MONTH/YEAR` normalized to month counts.
    AddMonths {
        e: Box<AstExpr>,
        months: i32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractPart {
    Year,
    Month,
}

impl AstExpr {
    pub fn binary(op: AstBinOp, l: AstExpr, r: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    /// True if the expression tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Column(..) | AstExpr::Literal(_) => false,
            AstExpr::Binary { l, r, .. } => l.contains_aggregate() || r.contains_aggregate(),
            AstExpr::Not(e) | AstExpr::Neg(e) => e.contains_aggregate(),
            AstExpr::IsNull { e, .. }
            | AstExpr::Like { e, .. }
            | AstExpr::Cast { e, .. }
            | AstExpr::Substring { e, .. }
            | AstExpr::Extract { e, .. }
            | AstExpr::AddMonths { e, .. } => e.contains_aggregate(),
            AstExpr::Between { e, lo, hi, .. } => {
                e.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            AstExpr::InList { e, list, .. } => {
                e.contains_aggregate() || list.iter().any(|x| x.contains_aggregate())
            }
            AstExpr::InSubquery { e, .. } => e.contains_aggregate(),
            AstExpr::Case { whens, otherwise } => {
                whens
                    .iter()
                    .any(|(c, t)| c.contains_aggregate() || t.contains_aggregate())
                    || otherwise.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::Agg {
            func: AstAggFunc::Sum,
            arg: Some(Box::new(AstExpr::Column(None, "x".into()))),
        };
        assert!(agg.contains_aggregate());
        let nested = AstExpr::binary(
            AstBinOp::Add,
            AstExpr::Literal(Value::I64(1)),
            AstExpr::binary(AstBinOp::Mul, agg, AstExpr::Literal(Value::I64(2))),
        );
        assert!(nested.contains_aggregate());
        assert!(!AstExpr::Column(None, "x".into()).contains_aggregate());
        let case = AstExpr::Case {
            whens: vec![(
                AstExpr::Literal(Value::Bool(true)),
                AstExpr::Agg {
                    func: AstAggFunc::Count,
                    arg: None,
                },
            )],
            otherwise: None,
        };
        assert!(case.contains_aggregate());
    }
}
