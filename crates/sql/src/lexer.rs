//! SQL tokenizer.
//!
//! Keywords are recognized case-insensitively; identifiers are lowercased
//! (the dialect is case-insensitive, unquoted-only). String literals use
//! single quotes with `''` escaping.

use vw_common::{Result, VwError};

/// One token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased) — only words in [`KEYWORDS`] become keywords.
    Keyword(String),
    /// Identifier (lowercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    // punctuation / operators
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Eof,
}

/// Reserved words of the dialect.
pub const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "AS",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "IS",
    "IN",
    "LIKE",
    "BETWEEN",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "DISTINCT",
    "ASC",
    "DESC",
    "CREATE",
    "TABLE",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "EXPLAIN",
    "ANALYZE",
    "TRACE",
    "CAST",
    "DATE",
    "INTERVAL",
    "YEAR",
    "MONTH",
    "DAY",
    "EXTRACT",
    "SUBSTRING",
    "FOR",
    "TRUE",
    "FALSE",
    "INTEGER",
    "INT",
    "BIGINT",
    "DOUBLE",
    "FLOAT",
    "VARCHAR",
    "TEXT",
    "BOOLEAN",
    "DECIMAL",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "EXISTS",
    "ANALYZE",
    "CHECKPOINT",
    "PRIMARY",
    "KEY",
    "PARTITION",
    "PARTITIONS",
    "RANGE",
    "NULLS",
    "FIRST",
    "LAST",
];

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let err = |pos: usize, msg: &str| VwError::Parse(format!("{} at byte {}", msg, pos));
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos: i,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos: i,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    pos: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos: i,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    pos: i,
                });
                i += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    pos: i,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    pos: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos: i,
                });
                i += 1;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        pos: i,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    pos: i,
                });
                i += 2;
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // copy raw byte; SQL text is UTF-8 and quotes are
                        // ASCII so byte-wise copying preserves validity
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| err(start, "bad float literal"))?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| err(start, "bad int literal"))?)
                };
                tokens.push(Token { kind, pos: start });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &sql[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_ascii_lowercase())
                };
                tokens.push(Token { kind, pos: start });
            }
            other => {
                return Err(err(i, &format!("unexpected character '{}'", other as char)));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: bytes.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("SELECT foo FROM Bar_Tab");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("foo".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("bar_tab".into()),
                TokenKind::Eof,
            ]
        );
        // case-insensitive keywords
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
        // trailing dot is a Dot token, not a float
        assert_eq!(
            kinds("1.a"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("a".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'hi'")[0], TokenKind::Str("hi".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert_eq!(kinds("''")[0], TokenKind::Str("".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        let ks = kinds("a <= b <> c >= d != e < f > g = h");
        assert!(ks.contains(&TokenKind::LtEq));
        assert!(ks.contains(&TokenKind::GtEq));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::NotEq).count(), 2);
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- a comment\n 1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("SELECT ¤").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn positions_recorded() {
        let ts = tokenize("SELECT x").unwrap();
        assert_eq!(ts[0].pos, 0);
        assert_eq!(ts[1].pos, 7);
    }
}
