//! Recursive-descent SQL parser with Pratt-style expression parsing.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use vw_common::date::parse_date;
use vw_common::{DataType, Result, Value, VwError};

/// Parse a single SQL statement (trailing semicolon optional).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> VwError {
        VwError::Parse(format!(
            "{} near byte {} (found {:?})",
            msg, self.tokens[self.pos].pos, self.tokens[self.pos].kind
        ))
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {}", kw)))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {}", what)))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            _ => {
                self.pos -= 1;
                Err(self.err("expected identifier"))
            }
        }
    }

    // ------------------------------------------------------------ statements

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            if self.eat_kw("ANALYZE") {
                return Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)));
            }
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.eat_kw("TRACE") {
            return Ok(Statement::Trace(Box::new(self.statement()?)));
        }
        if self.is_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            return self.create_table();
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("SET") {
            return self.set_stmt();
        }
        Err(self.err("expected a statement"))
    }

    fn set_stmt(&mut self) -> Result<Statement> {
        // GLOBAL/LOCAL are not reserved words: `SET global = 1` must still
        // parse as an option named "global". A scope keyword is only
        // recognized when another identifier (the option name) follows
        // before the `=`.
        let mut name = self.ident()?;
        let mut scope = SetScope::Default;
        if !matches!(self.peek(), TokenKind::Eq) {
            scope = match name.to_ascii_lowercase().as_str() {
                "global" => SetScope::Global,
                "local" => SetScope::Local,
                _ => return Err(self.err("expected = (or a GLOBAL/LOCAL scope)")),
            };
            name = self.ident()?;
        }
        self.expect_kind(&TokenKind::Eq, "=")?;
        // A bare word (`unbounded`, `on`) is sugar for the string literal —
        // including keywords like ON, so `SET profiling = on` parses.
        let value = match self.peek() {
            TokenKind::Ident(_) => AstExpr::Literal(Value::Str(self.ident()?)),
            TokenKind::Keyword(k) if !matches!(k.as_str(), "TRUE" | "FALSE" | "NULL") => {
                let word = k.to_ascii_lowercase();
                self.bump();
                AstExpr::Literal(Value::Str(word))
            }
            _ => self.expr(0)?,
        };
        Ok(Statement::Set { name, value, scope })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect_kind(&TokenKind::LParen, "(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty = self.data_type()?;
            let mut nullable = true;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                nullable = false;
            } else if self.eat_kw("NULL") {
                nullable = true;
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                nullable = false;
            }
            columns.push(ColumnDef {
                name: col_name,
                ty,
                nullable,
            });
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen, ")")?;
        // Physical design clauses: ORDER BY (col [ASC|DESC] [NULLS …], …)
        // and PARTITION BY RANGE(col) PARTITIONS n.
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let parens = self.eat_kind(&TokenKind::LParen);
            loop {
                let col = self.ident()?;
                let (asc, nulls_first) = self.order_direction()?;
                order_by.push(OrderItem {
                    expr: AstExpr::Column(None, col),
                    asc,
                    nulls_first,
                });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            if parens {
                self.expect_kind(&TokenKind::RParen, ")")?;
            }
        }
        let mut partition_by = None;
        if self.eat_kw("PARTITION") {
            self.expect_kw("BY")?;
            self.expect_kw("RANGE")?;
            self.expect_kind(&TokenKind::LParen, "(")?;
            let column = self.ident()?;
            self.expect_kind(&TokenKind::RParen, ")")?;
            self.expect_kw("PARTITIONS")?;
            let partitions = match self.peek() {
                TokenKind::Int(n) if *n >= 1 => {
                    let n = *n as usize;
                    self.bump();
                    n
                }
                _ => return Err(self.err("expected a partition count >= 1")),
            };
            partition_by = Some(PartitionByRange { column, partitions });
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            order_by,
            partition_by,
        })
    }

    /// `[ASC|DESC] [NULLS FIRST|NULLS LAST]` after an ORDER BY expression.
    fn order_direction(&mut self) -> Result<(bool, Option<bool>)> {
        let asc = if self.eat_kw("DESC") {
            false
        } else {
            self.eat_kw("ASC");
            true
        };
        let nulls_first = if self.eat_kw("NULLS") {
            if self.eat_kw("FIRST") {
                Some(true)
            } else {
                self.expect_kw("LAST")?;
                Some(false)
            }
        } else {
            None
        };
        Ok((asc, nulls_first))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let kw = match self.bump() {
            TokenKind::Keyword(k) => k,
            _ => {
                self.pos -= 1;
                return Err(self.err("expected a type name"));
            }
        };
        let ty = match kw.as_str() {
            "INTEGER" | "INT" => DataType::I32,
            "BIGINT" => DataType::I64,
            "DOUBLE" | "FLOAT" => DataType::F64,
            "VARCHAR" | "TEXT" => {
                // optional (n)
                if self.eat_kind(&TokenKind::LParen) {
                    self.bump(); // length
                    self.expect_kind(&TokenKind::RParen, ")")?;
                }
                DataType::Str
            }
            "BOOLEAN" => DataType::Bool,
            "DATE" => DataType::Date,
            "DECIMAL" => {
                // DECIMAL(p, s) maps onto DOUBLE in this engine
                if self.eat_kind(&TokenKind::LParen) {
                    self.bump();
                    if self.eat_kind(&TokenKind::Comma) {
                        self.bump();
                    }
                    self.expect_kind(&TokenKind::RParen, ")")?;
                }
                DataType::F64
            }
            _ => return Err(self.err("unknown type")),
        };
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, ")")?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen, "(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr(0)?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, ")")?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_kind(&TokenKind::Eq, "=")?;
            assignments.push((col, self.expr(0)?));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr(0)?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr(0)?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    // ---------------------------------------------------------------- SELECT

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_kind(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr(0)?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let TokenKind::Ident(_) = self.peek() {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr(0)?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr(0)?;
                let (asc, nulls_first) = self.order_direction()?;
                order_by.push(OrderItem {
                    expr: e,
                    asc,
                    nulls_first,
                });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => limit = Some(n as u64),
                _ => return Err(self.err("expected LIMIT count")),
            }
        }
        if self.eat_kw("OFFSET") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => offset = Some(n as u64),
                _ => return Err(self.err("expected OFFSET count")),
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = self.opt_alias()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("JOIN") || {
                if self.is_kw("INNER") {
                    self.bump();
                    self.expect_kw("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                AstJoinKind::Inner
            } else if self.is_kw("LEFT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                AstJoinKind::Left
            } else {
                break;
            };
            let t = self.ident()?;
            let a = self.opt_alias()?;
            self.expect_kw("ON")?;
            let on = self.expr(0)?;
            joins.push(Join {
                kind,
                table: t,
                alias: a,
                on,
            });
        }
        Ok(TableRef { name, alias, joins })
    }

    fn opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if let TokenKind::Ident(_) = self.peek() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // ----------------------------------------------------------- expressions

    /// Pratt parser. Binding powers (higher binds tighter):
    /// OR=1, AND=2, NOT=3, comparisons/IS/IN/LIKE/BETWEEN=4, +/-=5, */÷=6,
    /// unary minus=7.
    fn expr(&mut self, min_bp: u8) -> Result<AstExpr> {
        let mut lhs = self.prefix()?;
        loop {
            let (op_bp, op): (u8, Option<AstBinOp>) = match self.peek() {
                TokenKind::Keyword(k) if k == "OR" => (1, Some(AstBinOp::Or)),
                TokenKind::Keyword(k) if k == "AND" => (2, Some(AstBinOp::And)),
                TokenKind::Eq => (4, Some(AstBinOp::Eq)),
                TokenKind::NotEq => (4, Some(AstBinOp::Ne)),
                TokenKind::Lt => (4, Some(AstBinOp::Lt)),
                TokenKind::LtEq => (4, Some(AstBinOp::Le)),
                TokenKind::Gt => (4, Some(AstBinOp::Gt)),
                TokenKind::GtEq => (4, Some(AstBinOp::Ge)),
                TokenKind::Plus => (5, Some(AstBinOp::Add)),
                TokenKind::Minus => (5, Some(AstBinOp::Sub)),
                TokenKind::Star => (6, Some(AstBinOp::Mul)),
                TokenKind::Slash => (6, Some(AstBinOp::Div)),
                TokenKind::Keyword(k)
                    if (k == "IS" || k == "IN" || k == "LIKE" || k == "BETWEEN" || k == "NOT")
                        && min_bp <= 4 =>
                {
                    lhs = self.postfix_predicate(lhs)?;
                    continue;
                }
                _ => (0, None),
            };
            let Some(op) = op else { break };
            if op_bp < min_bp {
                break;
            }
            // special case: `expr + INTERVAL 'n' MONTH`
            if matches!(op, AstBinOp::Add | AstBinOp::Sub)
                && matches!(self.peek2(), TokenKind::Keyword(k) if k == "INTERVAL")
            {
                let negate = op == AstBinOp::Sub;
                self.bump(); // +/-
                let months = self.interval_months()?;
                lhs = AstExpr::AddMonths {
                    e: Box::new(lhs),
                    months: if negate { -months } else { months },
                };
                continue;
            }
            self.bump();
            let rhs = self.expr(op_bp + 1)?;
            lhs = AstExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    /// IS [NOT] NULL / [NOT] IN / [NOT] LIKE / [NOT] BETWEEN postfixes.
    fn postfix_predicate(&mut self, lhs: AstExpr) -> Result<AstExpr> {
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(AstExpr::IsNull {
                e: Box::new(lhs),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_kind(&TokenKind::LParen, "(")?;
            if self.is_kw("SELECT") {
                let q = self.select()?;
                self.expect_kind(&TokenKind::RParen, ")")?;
                return Ok(AstExpr::InSubquery {
                    e: Box::new(lhs),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr(0)?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, ")")?;
            return Ok(AstExpr::InList {
                e: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                TokenKind::Str(s) => s,
                _ => return Err(self.err("expected LIKE pattern string")),
            };
            return Ok(AstExpr::Like {
                e: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.expr(5)?;
            self.expect_kw("AND")?;
            let hi = self.expr(5)?;
            return Ok(AstExpr::Between {
                e: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN, LIKE or BETWEEN after NOT"));
        }
        Err(self.err("expected predicate"))
    }

    fn interval_months(&mut self) -> Result<i32> {
        self.expect_kw("INTERVAL")?;
        let n: i64 = match self.bump() {
            TokenKind::Str(s) => s
                .trim()
                .parse()
                .map_err(|_| self.err("bad INTERVAL quantity"))?,
            TokenKind::Int(n) => n,
            _ => return Err(self.err("expected INTERVAL quantity")),
        };
        if self.eat_kw("MONTH") {
            Ok(n as i32)
        } else if self.eat_kw("YEAR") {
            Ok((n * 12) as i32)
        } else {
            Err(self.err("expected MONTH or YEAR"))
        }
    }

    fn prefix(&mut self) -> Result<AstExpr> {
        match self.bump() {
            TokenKind::Int(n) => Ok(AstExpr::Literal(Value::I64(n))),
            TokenKind::Float(f) => Ok(AstExpr::Literal(Value::F64(f))),
            TokenKind::Str(s) => Ok(AstExpr::Literal(Value::Str(s))),
            TokenKind::Minus => {
                let e = self.expr(7)?;
                // fold literal negation for nicer plans
                Ok(match e {
                    AstExpr::Literal(Value::I64(n)) => AstExpr::Literal(Value::I64(-n)),
                    AstExpr::Literal(Value::F64(f)) => AstExpr::Literal(Value::F64(-f)),
                    other => AstExpr::Neg(Box::new(other)),
                })
            }
            TokenKind::LParen => {
                let e = self.expr(0)?;
                self.expect_kind(&TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::Keyword(k) => self.keyword_prefix(&k),
            TokenKind::Ident(name) => {
                if self.eat_kind(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(AstExpr::Column(Some(name), col))
                } else {
                    Ok(AstExpr::Column(None, name))
                }
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected expression"))
            }
        }
    }

    fn keyword_prefix(&mut self, kw: &str) -> Result<AstExpr> {
        match kw {
            "NULL" => Ok(AstExpr::Literal(Value::Null)),
            "TRUE" => Ok(AstExpr::Literal(Value::Bool(true))),
            "FALSE" => Ok(AstExpr::Literal(Value::Bool(false))),
            "NOT" => Ok(AstExpr::Not(Box::new(self.expr(3)?))),
            "DATE" => {
                // DATE 'yyyy-mm-dd'
                match self.bump() {
                    TokenKind::Str(s) => {
                        let d = parse_date(&s).ok_or_else(|| self.err("invalid date literal"))?;
                        Ok(AstExpr::Literal(Value::Date(d)))
                    }
                    _ => Err(self.err("expected date string")),
                }
            }
            "INTERVAL" => Err(self.err("INTERVAL is only valid after + or -")),
            "CAST" => {
                self.expect_kind(&TokenKind::LParen, "(")?;
                let e = self.expr(0)?;
                self.expect_kw("AS")?;
                let ty = self.data_type()?;
                self.expect_kind(&TokenKind::RParen, ")")?;
                Ok(AstExpr::Cast { e: Box::new(e), ty })
            }
            "CASE" => {
                let mut whens = Vec::new();
                while self.eat_kw("WHEN") {
                    let c = self.expr(0)?;
                    self.expect_kw("THEN")?;
                    let t = self.expr(0)?;
                    whens.push((c, t));
                }
                let otherwise = if self.eat_kw("ELSE") {
                    Some(Box::new(self.expr(0)?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                if whens.is_empty() {
                    return Err(self.err("CASE needs at least one WHEN"));
                }
                Ok(AstExpr::Case { whens, otherwise })
            }
            "SUBSTRING" => {
                self.expect_kind(&TokenKind::LParen, "(")?;
                let e = self.expr(0)?;
                // SUBSTRING(e FROM a FOR b) or SUBSTRING(e, a, b)
                let (start, len) = if self.eat_kw("FROM") {
                    let s = self.int_literal()?;
                    self.expect_kw("FOR")?;
                    let l = self.int_literal()?;
                    (s, l)
                } else {
                    self.expect_kind(&TokenKind::Comma, ",")?;
                    let s = self.int_literal()?;
                    self.expect_kind(&TokenKind::Comma, ",")?;
                    let l = self.int_literal()?;
                    (s, l)
                };
                self.expect_kind(&TokenKind::RParen, ")")?;
                Ok(AstExpr::Substring {
                    e: Box::new(e),
                    start: start as u32,
                    len: len as u32,
                })
            }
            "EXTRACT" => {
                self.expect_kind(&TokenKind::LParen, "(")?;
                let part = if self.eat_kw("YEAR") {
                    ExtractPart::Year
                } else if self.eat_kw("MONTH") {
                    ExtractPart::Month
                } else {
                    return Err(self.err("expected YEAR or MONTH"));
                };
                self.expect_kw("FROM")?;
                let e = self.expr(0)?;
                self.expect_kind(&TokenKind::RParen, ")")?;
                Ok(AstExpr::Extract {
                    part,
                    e: Box::new(e),
                })
            }
            "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" => {
                let func = match kw {
                    "COUNT" => AstAggFunc::Count,
                    "SUM" => AstAggFunc::Sum,
                    "MIN" => AstAggFunc::Min,
                    "MAX" => AstAggFunc::Max,
                    _ => AstAggFunc::Avg,
                };
                self.expect_kind(&TokenKind::LParen, "(")?;
                let arg = if self.eat_kind(&TokenKind::Star) {
                    if func != AstAggFunc::Count {
                        return Err(self.err("only COUNT accepts *"));
                    }
                    None
                } else {
                    Some(Box::new(self.expr(0)?))
                };
                self.expect_kind(&TokenKind::RParen, ")")?;
                Ok(AstExpr::Agg { func, arg })
            }
            other => Err(self.err(&format!("unexpected keyword {}", other))),
        }
    }

    fn int_literal(&mut self) -> Result<i64> {
        match self.bump() {
            TokenKind::Int(n) => Ok(n),
            _ => Err(self.err("expected integer literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {:?}", other),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a < 5 ORDER BY bee DESC LIMIT 10 OFFSET 2");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].name, "t");
        assert!(s.selection.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].asc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn wildcard_and_distinct() {
        let s = sel("SELECT DISTINCT * FROM t");
        assert!(s.distinct);
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn implicit_alias() {
        let s = sel("SELECT a total FROM t");
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            _ => panic!(),
        }
    }

    #[test]
    fn explicit_joins() {
        let s = sel(
            "SELECT * FROM orders o JOIN customer c ON o.custkey = c.custkey \
             LEFT JOIN nation n ON c.nationkey = n.nationkey",
        );
        assert_eq!(s.from.len(), 1);
        let t = &s.from[0];
        assert_eq!(t.alias.as_deref(), Some("o"));
        assert_eq!(t.joins.len(), 2);
        assert_eq!(t.joins[0].kind, AstJoinKind::Inner);
        assert_eq!(t.joins[1].kind, AstJoinKind::Left);
    }

    #[test]
    fn comma_joins() {
        let s = sel("SELECT * FROM a, b, c WHERE a.x = b.x AND b.y = c.y");
        assert_eq!(s.from.len(), 3);
    }

    #[test]
    fn operator_precedence() {
        // a + b * c < 10 AND x OR y  →  ((a + (b*c)) < 10 AND x) OR y
        let s = sel("SELECT 1 FROM t WHERE a + b * c < 10 AND x OR y");
        let e = s.selection.unwrap();
        match e {
            AstExpr::Binary {
                op: AstBinOp::Or,
                l,
                ..
            } => match *l {
                AstExpr::Binary {
                    op: AstBinOp::And,
                    l,
                    ..
                } => match *l {
                    AstExpr::Binary {
                        op: AstBinOp::Lt,
                        l,
                        ..
                    } => match *l {
                        AstExpr::Binary {
                            op: AstBinOp::Add,
                            r,
                            ..
                        } => {
                            assert!(matches!(
                                *r,
                                AstExpr::Binary {
                                    op: AstBinOp::Mul,
                                    ..
                                }
                            ));
                        }
                        other => panic!("{:?}", other),
                    },
                    other => panic!("{:?}", other),
                },
                other => panic!("{:?}", other),
            },
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn predicates() {
        let s = sel("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL \
             AND c LIKE '%x%' AND d NOT IN (1, 2) AND e IN ('a', 'b')");
        let text = format!("{:?}", s.selection.unwrap());
        assert!(text.contains("Between"));
        assert!(text.contains("IsNull"));
        assert!(text.contains("Like"));
        assert!(text.contains("InList"));
        assert!(text.contains("negated: true"));
    }

    #[test]
    fn in_subquery() {
        let s = sel("SELECT 1 FROM t WHERE k IN (SELECT k FROM u WHERE z > 3)");
        match s.selection.unwrap() {
            AstExpr::InSubquery { negated, query, .. } => {
                assert!(!negated);
                assert_eq!(query.from[0].name, "u");
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn date_and_interval() {
        let s = sel(
            "SELECT 1 FROM t WHERE d >= DATE '1995-01-01' AND d < DATE '1995-01-01' + INTERVAL '3' MONTH",
        );
        let text = format!("{:?}", s.selection.unwrap());
        assert!(text.contains("AddMonths"));
        assert!(text.contains("months: 3"));
        let s2 = sel("SELECT 1 FROM t WHERE d < DATE '1995-01-01' + INTERVAL '1' YEAR");
        assert!(format!("{:?}", s2.selection.unwrap()).contains("months: 12"));
    }

    #[test]
    fn aggregates_and_group() {
        let s = sel("SELECT flag, COUNT(*), SUM(qty * price) AS rev FROM li \
             GROUP BY flag HAVING COUNT(*) > 10 ORDER BY 2");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        match &s.items[1] {
            SelectItem::Expr { expr, .. } => assert!(expr.contains_aggregate()),
            _ => panic!(),
        }
    }

    #[test]
    fn case_cast_substring_extract() {
        let s = sel("SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END, \
             CAST(a AS DOUBLE), SUBSTRING(name FROM 1 FOR 2), \
             EXTRACT(YEAR FROM d) FROM t");
        assert_eq!(s.items.len(), 4);
    }

    #[test]
    fn dml_statements() {
        match parse_statement("CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR(20), c DATE)").unwrap()
        {
            Statement::CreateTable {
                name,
                columns,
                order_by,
                partition_by,
            } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].nullable);
                assert!(columns[1].nullable);
                assert_eq!(columns[2].ty, DataType::Date);
                assert!(order_by.is_empty());
                assert!(partition_by.is_none());
            }
            _ => panic!(),
        }
        match parse_statement(
            "CREATE TABLE li (k BIGINT, d DATE, v DOUBLE) \
             ORDER BY (k, d DESC NULLS LAST) PARTITION BY RANGE(k) PARTITIONS 4",
        )
        .unwrap()
        {
            Statement::CreateTable {
                order_by,
                partition_by,
                ..
            } => {
                assert_eq!(order_by.len(), 2);
                assert_eq!(order_by[0].expr, AstExpr::Column(None, "k".into()));
                assert!(order_by[0].asc);
                assert_eq!(order_by[0].nulls_first, None);
                assert!(!order_by[1].asc);
                assert_eq!(order_by[1].nulls_first, Some(false));
                let p = partition_by.unwrap();
                assert_eq!(p.column, "k");
                assert_eq!(p.partitions, 4);
            }
            _ => panic!(),
        }
        assert!(
            parse_statement("CREATE TABLE bad (k BIGINT) PARTITION BY RANGE(k) PARTITIONS 0")
                .is_err()
        );
        match parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap() {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns, vec!["a", "b"]);
            }
            _ => panic!(),
        }
        match parse_statement("UPDATE t SET b = 'y', a = a + 1 WHERE a = 1").unwrap() {
            Statement::Update {
                assignments,
                predicate,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(predicate.is_some());
            }
            _ => panic!(),
        }
        match parse_statement("DELETE FROM t WHERE a > 5").unwrap() {
            Statement::Delete { predicate, .. } => assert!(predicate.is_some()),
            _ => panic!(),
        }
        assert!(matches!(
            parse_statement("EXPLAIN SELECT 1 FROM t").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT 1 FROM t").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
    }

    #[test]
    fn negative_numbers_fold() {
        let s = sel("SELECT -5, -2.5 FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr, &AstExpr::Literal(Value::I64(-5)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT 1 FROM t WHERE").is_err());
        assert!(parse_statement("FOO BAR").is_err());
        assert!(parse_statement("SELECT 1 FROM t LIMIT x").is_err());
        assert!(parse_statement("SELECT 1 extra FROM t ORDER").is_err());
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
        assert!(parse_statement("SELECT 1; SELECT 2").is_err()); // one stmt only
    }

    #[test]
    fn semicolon_optional() {
        assert!(parse_statement("SELECT 1 FROM t;").is_ok());
        assert!(parse_statement("SELECT 1 FROM t").is_ok());
    }

    #[test]
    fn set_statement_forms() {
        assert_eq!(
            parse_statement("SET memory_budget = '16MiB'").unwrap(),
            Statement::Set {
                name: "memory_budget".into(),
                value: AstExpr::Literal(Value::Str("16MiB".into())),
                scope: SetScope::Default,
            }
        );
        assert_eq!(
            parse_statement("SET parallelism = 4").unwrap(),
            Statement::Set {
                name: "parallelism".into(),
                value: AstExpr::Literal(Value::I64(4)),
                scope: SetScope::Default,
            }
        );
        // bare words — identifiers and keywords alike — become strings
        assert_eq!(
            parse_statement("SET memory_budget = unbounded").unwrap(),
            Statement::Set {
                name: "memory_budget".into(),
                value: AstExpr::Literal(Value::Str("unbounded".into())),
                scope: SetScope::Default,
            }
        );
        assert_eq!(
            parse_statement("SET profiling = on").unwrap(),
            Statement::Set {
                name: "profiling".into(),
                value: AstExpr::Literal(Value::Str("on".into())),
                scope: SetScope::Default,
            }
        );
        assert!(parse_statement("SET = 3").is_err());
        assert!(parse_statement("SET x 3").is_err());
    }

    #[test]
    fn set_statement_scopes() {
        assert_eq!(
            parse_statement("SET GLOBAL parallelism = 4").unwrap(),
            Statement::Set {
                name: "parallelism".into(),
                value: AstExpr::Literal(Value::I64(4)),
                scope: SetScope::Global,
            }
        );
        assert_eq!(
            parse_statement("SET local vector_size = 512").unwrap(),
            Statement::Set {
                name: "vector_size".into(),
                value: AstExpr::Literal(Value::I64(512)),
                scope: SetScope::Local,
            }
        );
        // "global"/"local" stay usable as plain option names.
        assert_eq!(
            parse_statement("SET global = 1").unwrap(),
            Statement::Set {
                name: "global".into(),
                value: AstExpr::Literal(Value::I64(1)),
                scope: SetScope::Default,
            }
        );
        assert!(parse_statement("SET GLOBAL LOCAL x = 1").is_err());
        assert!(parse_statement("SET sideways parallelism = 4").is_err());
    }
}
