//! The binder: name resolution, typing, aggregate analysis and plan
//! construction. AST in, engine-neutral `LogicalPlan` out.

use crate::ast::*;
use std::collections::HashMap;
use vw_common::{bind_err, DataType, Result, Schema, TableId, Value, VwError};
use vw_plan::optimizer::order_relations;
use vw_plan::rewrite::pushdown::{conjoin, split_conjunction};
use vw_plan::{AggExpr, AggFunc, BinOp, DatePart, Expr, JoinKind, LogicalPlan, SortKey, UnOp};

/// How the binder sees the catalog.
pub trait CatalogView {
    /// Resolve a table name to its id and schema.
    fn resolve_table(&self, name: &str) -> Option<(TableId, Schema)>;
    /// Estimated row count (for comma-join ordering); `None` = unknown.
    fn table_rows(&self, _id: TableId) -> Option<u64> {
        None
    }
}

/// A bound statement, ready for execution.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    Query(LogicalPlan),
    Explain(LogicalPlan),
    /// `EXPLAIN ANALYZE`: execute the plan with profiling forced on and
    /// return the annotated tree.
    ExplainAnalyze(LogicalPlan),
    /// `TRACE`: execute the plan with tracing forced on and return the
    /// chrome://tracing JSON timeline.
    Trace(LogicalPlan),
    CreateTable {
        name: String,
        schema: Schema,
        /// Declared physical design (sort order, range partitioning).
        layout: vw_common::TableLayout,
    },
    Insert {
        table: TableId,
        rows: Vec<Vec<Value>>,
    },
    Update {
        table: TableId,
        assignments: Vec<(usize, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: TableId,
        predicate: Option<Expr>,
    },
    /// Configuration: `SET [GLOBAL | LOCAL] <name> = <constant>`.
    Set {
        name: String,
        value: Value,
        scope: SetScope,
    },
}

/// Bind a parsed statement.
pub fn bind(stmt: &Statement, catalog: &dyn CatalogView) -> Result<BoundStatement> {
    match stmt {
        Statement::Select(s) => Ok(BoundStatement::Query(bind_select(s, catalog)?)),
        Statement::Explain(inner) => match bind(inner, catalog)? {
            BoundStatement::Query(p) => Ok(BoundStatement::Explain(p)),
            _ => Err(bind_err!("EXPLAIN supports only queries")),
        },
        Statement::ExplainAnalyze(inner) => match bind(inner, catalog)? {
            BoundStatement::Query(p) => Ok(BoundStatement::ExplainAnalyze(p)),
            _ => Err(bind_err!("EXPLAIN ANALYZE supports only queries")),
        },
        Statement::Trace(inner) => match bind(inner, catalog)? {
            BoundStatement::Query(p) => Ok(BoundStatement::Trace(p)),
            _ => Err(bind_err!("TRACE supports only queries")),
        },
        Statement::CreateTable {
            name,
            columns,
            order_by,
            partition_by,
        } => {
            let schema: Schema = columns
                .iter()
                .map(|c| vw_common::Field {
                    name: c.name.clone(),
                    ty: c.ty,
                    nullable: c.nullable,
                })
                .collect();
            schema.check_unique_names()?;
            if catalog.resolve_table(name).is_some() {
                return Err(VwError::Catalog(format!("table '{}' already exists", name)));
            }
            let mut layout = vw_common::TableLayout::default();
            for item in order_by {
                let col = match &item.expr {
                    AstExpr::Column(None, c) => schema.resolve(c)?,
                    _ => return Err(bind_err!("ORDER BY in CREATE TABLE takes column names")),
                };
                layout.order.push(vw_common::SortSpec {
                    col,
                    asc: item.asc,
                    nulls_first: item.nulls_first.unwrap_or(item.asc),
                });
            }
            if let Some(p) = partition_by {
                layout.partition = Some(vw_common::RangePartitionSpec {
                    col: schema.resolve(&p.column)?,
                    partitions: p.partitions,
                });
            }
            Ok(BoundStatement::CreateTable {
                name: name.clone(),
                schema,
                layout,
            })
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => bind_insert(table, columns, rows, catalog),
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            let (tid, schema) = resolve(catalog, table)?;
            let scope = Scope::single(table, &schema);
            let mut bound_assign = Vec::new();
            for (col, e) in assignments {
                let idx = schema.resolve(col)?;
                let be = bind_scalar(e, &scope)?;
                let ety = be.data_type(&schema)?;
                if ety != schema.field(idx).ty
                    && ety.common_numeric(schema.field(idx).ty).is_none()
                    && !(ety == DataType::I32 && schema.field(idx).ty == DataType::Date)
                {
                    return Err(bind_err!(
                        "cannot assign {} to column '{}' of type {}",
                        ety,
                        col,
                        schema.field(idx).ty
                    ));
                }
                bound_assign.push((idx, be));
            }
            let predicate = predicate
                .as_ref()
                .map(|p| bind_predicate(p, &scope, &schema))
                .transpose()?;
            Ok(BoundStatement::Update {
                table: tid,
                assignments: bound_assign,
                predicate,
            })
        }
        Statement::Delete { table, predicate } => {
            let (tid, schema) = resolve(catalog, table)?;
            let scope = Scope::single(table, &schema);
            let predicate = predicate
                .as_ref()
                .map(|p| bind_predicate(p, &scope, &schema))
                .transpose()?;
            Ok(BoundStatement::Delete {
                table: tid,
                predicate,
            })
        }
        Statement::Set { name, value, scope } => {
            let bound = bind_scalar(value, &Scope::default())?;
            let value = bound
                .eval_row(&[])
                .map_err(|_| bind_err!("SET value must be a constant"))?;
            Ok(BoundStatement::Set {
                name: name.to_ascii_lowercase(),
                value,
                scope: *scope,
            })
        }
    }
}

fn resolve(catalog: &dyn CatalogView, name: &str) -> Result<(TableId, Schema)> {
    catalog
        .resolve_table(name)
        .ok_or_else(|| bind_err!("unknown table '{}'", name))
}

fn bind_insert(
    table: &str,
    columns: &[String],
    rows: &[Vec<AstExpr>],
    catalog: &dyn CatalogView,
) -> Result<BoundStatement> {
    let (tid, schema) = resolve(catalog, table)?;
    let col_indexes: Vec<usize> = if columns.is_empty() {
        (0..schema.len()).collect()
    } else {
        columns
            .iter()
            .map(|c| schema.resolve(c))
            .collect::<Result<_>>()?
    };
    let mut out = Vec::with_capacity(rows.len());
    let empty_scope = Scope::default();
    for row in rows {
        if row.len() != col_indexes.len() {
            return Err(bind_err!(
                "INSERT row has {} values, expected {}",
                row.len(),
                col_indexes.len()
            ));
        }
        let mut full = vec![Value::Null; schema.len()];
        for (e, &idx) in row.iter().zip(&col_indexes) {
            let bound = bind_scalar(e, &empty_scope)?;
            let v = bound
                .eval_row(&[])
                .map_err(|_| bind_err!("INSERT values must be constants"))?;
            let want = schema.field(idx).ty;
            let coerced = if v.is_null() {
                Value::Null
            } else {
                v.cast_to(want).ok_or_else(|| {
                    bind_err!(
                        "cannot store {} into column '{}'",
                        v,
                        schema.field(idx).name
                    )
                })?
            };
            full[idx] = coerced;
        }
        for (i, f) in schema.fields().iter().enumerate() {
            if full[i].is_null() && !f.nullable {
                return Err(bind_err!("column '{}' is NOT NULL", f.name));
            }
        }
        out.push(full);
    }
    Ok(BoundStatement::Insert {
        table: tid,
        rows: out,
    })
}

// ---------------------------------------------------------------- scopes

/// Name-resolution scope: ordered relations with their column offsets.
#[derive(Debug, Clone, Default)]
struct Scope {
    /// (qualifier, schema, base offset)
    relations: Vec<(String, Schema, usize)>,
    width: usize,
}

impl Scope {
    fn single(name: &str, schema: &Schema) -> Scope {
        let mut s = Scope::default();
        s.push(name, schema);
        s
    }

    fn push(&mut self, qualifier: &str, schema: &Schema) {
        self.relations
            .push((qualifier.to_string(), schema.clone(), self.width));
        self.width += schema.len();
    }

    fn merged(&self, other: &Scope) -> Scope {
        let mut s = self.clone();
        for (q, sch, _) in &other.relations {
            s.push(q, sch);
        }
        s
    }

    /// Resolve a (possibly qualified) column to (global index, type).
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut hit = None;
        for (q, schema, base) in &self.relations {
            if let Some(want) = qualifier {
                if q != want {
                    continue;
                }
            }
            if let Some(i) = schema.index_of(name) {
                if hit.is_some() {
                    return Err(bind_err!("ambiguous column '{}'", name));
                }
                hit = Some(base + i);
            }
        }
        hit.ok_or_else(|| match qualifier {
            Some(q) => bind_err!("column '{}.{}' not found", q, name),
            None => bind_err!("column '{}' not found", name),
        })
    }

    /// Combined schema of the scope.
    fn schema(&self) -> Schema {
        let mut fields = Vec::with_capacity(self.width);
        for (_, schema, _) in &self.relations {
            fields.extend(schema.fields().iter().cloned());
        }
        Schema::new(fields)
    }
}

// ------------------------------------------------------------- expressions

fn ast_binop(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::Ne => BinOp::Ne,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::Le => BinOp::Le,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::Ge => BinOp::Ge,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
    }
}

/// Bind a scalar (non-aggregate) expression against a scope.
fn bind_scalar(e: &AstExpr, scope: &Scope) -> Result<Expr> {
    Ok(match e {
        AstExpr::Column(q, name) => Expr::Col(scope.resolve(q.as_deref(), name)?),
        AstExpr::Literal(v) => Expr::Lit(v.clone()),
        AstExpr::Binary { op, l, r } => Expr::binary(
            ast_binop(*op),
            bind_scalar(l, scope)?,
            bind_scalar(r, scope)?,
        ),
        AstExpr::Not(x) => Expr::not(bind_scalar(x, scope)?),
        AstExpr::Neg(x) => Expr::Unary {
            op: UnOp::Neg,
            e: Box::new(bind_scalar(x, scope)?),
        },
        AstExpr::IsNull { e, negated } => Expr::Unary {
            op: if *negated {
                UnOp::IsNotNull
            } else {
                UnOp::IsNull
            },
            e: Box::new(bind_scalar(e, scope)?),
        },
        AstExpr::Between { e, lo, hi, negated } => {
            let b = bind_scalar(e, scope)?;
            let both = Expr::and(
                Expr::binary(BinOp::Ge, b.clone(), bind_scalar(lo, scope)?),
                Expr::binary(BinOp::Le, b, bind_scalar(hi, scope)?),
            );
            if *negated {
                Expr::not(both)
            } else {
                both
            }
        }
        AstExpr::InList { e, list, negated } => {
            let vals: Result<Vec<Value>> = list
                .iter()
                .map(|x| {
                    bind_scalar(x, scope)?
                        .eval_row(&[])
                        .map_err(|_| bind_err!("IN list items must be constants"))
                })
                .collect();
            Expr::InList {
                e: Box::new(bind_scalar(e, scope)?),
                list: vals?,
                negated: *negated,
            }
        }
        AstExpr::InSubquery { .. } => {
            return Err(bind_err!(
                "IN (SELECT ...) is only supported as a top-level WHERE conjunct"
            ))
        }
        AstExpr::Like {
            e,
            pattern,
            negated,
        } => Expr::Like {
            e: Box::new(bind_scalar(e, scope)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        AstExpr::Case { whens, otherwise } => Expr::Case {
            whens: whens
                .iter()
                .map(|(c, t)| Ok((bind_scalar(c, scope)?, bind_scalar(t, scope)?)))
                .collect::<Result<_>>()?,
            otherwise: otherwise
                .as_ref()
                .map(|x| Ok::<_, VwError>(Box::new(bind_scalar(x, scope)?)))
                .transpose()?,
        },
        AstExpr::Cast { e, ty } => Expr::Cast(Box::new(bind_scalar(e, scope)?), *ty),
        AstExpr::Agg { .. } => {
            return Err(bind_err!(
                "aggregate functions are not allowed here (use GROUP BY context)"
            ))
        }
        AstExpr::Substring { e, start, len } => Expr::Substr {
            e: Box::new(bind_scalar(e, scope)?),
            start: *start,
            len: *len,
        },
        AstExpr::Extract { part, e } => Expr::Extract {
            part: match part {
                ExtractPart::Year => DatePart::Year,
                ExtractPart::Month => DatePart::Month,
            },
            e: Box::new(bind_scalar(e, scope)?),
        },
        AstExpr::AddMonths { e, months } => Expr::AddMonths {
            e: Box::new(bind_scalar(e, scope)?),
            months: *months,
        },
    })
}

/// Bind a predicate and type-check it as boolean.
fn bind_predicate(e: &AstExpr, scope: &Scope, schema: &Schema) -> Result<Expr> {
    let bound = bind_scalar(e, scope)?;
    let ty = bound.data_type(schema)?;
    if ty != DataType::Bool {
        return Err(bind_err!("predicate has type {}, expected BOOLEAN", ty));
    }
    Ok(bound)
}

// ------------------------------------------------------------------- FROM

struct FromResult {
    plan: LogicalPlan,
    scope: Scope,
}

/// Bind one TableRef (base table + its explicit join chain).
fn bind_table_ref(t: &TableRef, catalog: &dyn CatalogView) -> Result<FromResult> {
    let (tid, schema) = resolve(catalog, &t.name)?;
    let qualifier = t.alias.clone().unwrap_or_else(|| t.name.clone());
    let mut scope = Scope::single(&qualifier, &schema);
    let mut plan = LogicalPlan::scan(&t.name, tid, schema);
    for j in &t.joins {
        let (jid, jschema) = resolve(catalog, &j.table)?;
        let jq = j.alias.clone().unwrap_or_else(|| j.table.clone());
        let right_scope = Scope::single(&jq, &jschema);
        let combined = scope.merged(&right_scope);
        let on = bind_predicate(&j.on, &combined, &combined.schema())?;
        let left_width = scope.width;
        let (keys, residual) = split_join_condition(&on, left_width)?;
        if keys.is_empty() {
            return Err(bind_err!(
                "JOIN ON must contain at least one equality between the two sides"
            ));
        }
        let kind = match j.kind {
            AstJoinKind::Inner => JoinKind::Inner,
            AstJoinKind::Left => JoinKind::Left,
        };
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::scan(&j.table, jid, jschema)),
            kind,
            on: keys,
            residual,
        };
        scope = combined;
    }
    Ok(FromResult { plan, scope })
}

/// Split a bound ON condition into equi-key pairs and a residual.
#[allow(clippy::type_complexity)]
fn split_join_condition(
    on: &Expr,
    left_width: usize,
) -> Result<(Vec<(usize, usize)>, Option<Expr>)> {
    let mut conjuncts = Vec::new();
    split_conjunction(on, &mut conjuncts);
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            l,
            r,
        } = &c
        {
            match (&**l, &**r) {
                (Expr::Col(a), Expr::Col(b)) if *a < left_width && *b >= left_width => {
                    keys.push((*a, *b - left_width));
                    continue;
                }
                (Expr::Col(a), Expr::Col(b)) if *b < left_width && *a >= left_width => {
                    keys.push((*b, *a - left_width));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(c);
    }
    Ok((keys, conjoin(residual)))
}

// ----------------------------------------------------------------- SELECT

/// Bind a SELECT into a logical plan.
pub fn bind_select(stmt: &SelectStmt, catalog: &dyn CatalogView) -> Result<LogicalPlan> {
    if stmt.from.is_empty() {
        return Err(bind_err!("SELECT without FROM is not supported"));
    }
    // 1. FROM items.
    let mut parts: Vec<FromResult> = stmt
        .from
        .iter()
        .map(|t| bind_table_ref(t, catalog))
        .collect::<Result<_>>()?;

    // 2. WHERE conjuncts: pull out cross-relation equi predicates (comma-join
    //    conditions) and IN-subqueries; everything else filters later.
    let (mut plan, scope, mut filter_conjuncts, subqueries) = if parts.len() == 1 {
        let FromResult { plan, scope } = parts.pop().unwrap();
        let (filters, subs) = partition_where(stmt, &scope)?;
        (plan, scope, filters, subs)
    } else {
        bind_comma_joins(stmt, parts, catalog)?
    };

    // 3. IN-subqueries become semi/anti joins.
    for sub in subqueries {
        let sub_plan = bind_select(&sub.query, catalog)?;
        let sub_schema = sub_plan.schema()?;
        if sub_schema.len() != 1 {
            return Err(bind_err!("IN subquery must produce exactly one column"));
        }
        let key = match &sub.key {
            Expr::Col(i) => *i,
            _ => {
                return Err(bind_err!(
                    "left side of IN (SELECT ...) must be a plain column"
                ))
            }
        };
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(sub_plan),
            kind: if sub.negated {
                JoinKind::Anti
            } else {
                JoinKind::Semi
            },
            on: vec![(key, 0)],
            residual: None,
        };
    }

    // 4. Residual WHERE filter.
    if let Some(pred) = conjoin(std::mem::take(&mut filter_conjuncts)) {
        let schema = plan.schema()?;
        let ty = pred.data_type(&schema)?;
        if ty != DataType::Bool {
            return Err(bind_err!("WHERE has type {}, expected BOOLEAN", ty));
        }
        plan = plan.filter(pred);
    }

    // 5. SELECT list & aggregation.
    let has_agg = stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || !stmt.group_by.is_empty()
        || stmt.having.is_some();

    // ORDER BY is handled inside the select binders (they can sort by
    // hidden, non-projected expressions); with DISTINCT the keys must come
    // from the output columns, so sorting happens after the distinct wrap.
    let order_inside = !stmt.distinct;
    let mut plan = if has_agg {
        bind_aggregate_select(stmt, plan, &scope, order_inside)?
    } else {
        bind_plain_select(stmt, plan, &scope, order_inside)?
    };

    // 6. DISTINCT (+ its output-only ORDER BY).
    if stmt.distinct {
        let n = plan.schema()?.len();
        plan = plan.aggregate((0..n).collect(), vec![]);
        if !stmt.order_by.is_empty() {
            let out_schema = plan.schema()?;
            let mut keys = Vec::new();
            for item in &stmt.order_by {
                let col = resolve_output_order_key(&item.expr, &out_schema)?
                    .ok_or_else(|| bind_err!("ORDER BY with DISTINCT must use output columns"))?;
                keys.push(SortKey {
                    col,
                    asc: item.asc,
                    nulls_first: item.nulls_first.unwrap_or(item.asc),
                });
            }
            plan = plan.sort(keys);
        }
    }

    // 8. LIMIT/OFFSET.
    if stmt.limit.is_some() || stmt.offset.is_some() {
        plan = plan.limit(stmt.offset.unwrap_or(0), stmt.limit.unwrap_or(u64::MAX));
    }
    Ok(plan)
}

struct SubqueryCond {
    key: Expr,
    query: SelectStmt,
    negated: bool,
}

/// Split WHERE into plain conjuncts and IN-subquery conditions.
fn partition_where(stmt: &SelectStmt, scope: &Scope) -> Result<(Vec<Expr>, Vec<SubqueryCond>)> {
    let mut filters = Vec::new();
    let mut subs = Vec::new();
    if let Some(w) = &stmt.selection {
        for c in split_ast_conjuncts(w) {
            match c {
                AstExpr::InSubquery { e, query, negated } => subs.push(SubqueryCond {
                    key: bind_scalar(&e, scope)?,
                    query: *query,
                    negated,
                }),
                other => filters.push(bind_scalar(&other, scope)?),
            }
        }
    }
    Ok((filters, subs))
}

fn split_ast_conjuncts(e: &AstExpr) -> Vec<AstExpr> {
    match e {
        AstExpr::Binary {
            op: AstBinOp::And,
            l,
            r,
        } => {
            let mut out = split_ast_conjuncts(l);
            out.extend(split_ast_conjuncts(r));
            out
        }
        other => vec![other.clone()],
    }
}

/// Comma-join binding with greedy reordering.
fn bind_comma_joins(
    stmt: &SelectStmt,
    parts: Vec<FromResult>,
    catalog: &dyn CatalogView,
) -> Result<(LogicalPlan, Scope, Vec<Expr>, Vec<SubqueryCond>)> {
    // Scope covering everything, in written order, for WHERE binding.
    let mut full_scope = Scope::default();
    for p in &parts {
        for (q, s, _) in &p.scope.relations {
            full_scope.push(q, s);
        }
    }
    let (bound_filters, subs) = partition_where(stmt, &full_scope)?;

    // Classify conjuncts: cross-relation equi-joins vs everything else.
    // Relation index of a global column in written order:
    let rel_of = |col: usize| -> usize {
        let mut acc = 0;
        for (i, p) in parts.iter().enumerate() {
            if col < acc + p.scope.width {
                return i;
            }
            acc += p.scope.width;
        }
        parts.len() - 1
    };
    let mut edges: Vec<(usize, usize, usize, usize)> = Vec::new(); // (relA, colA, relB, colB) global cols
    let mut rest: Vec<Expr> = Vec::new();
    for c in bound_filters {
        if let Expr::Binary {
            op: BinOp::Eq,
            l,
            r,
        } = &c
        {
            if let (Expr::Col(a), Expr::Col(b)) = (&**l, &**r) {
                let (ra, rb) = (rel_of(*a), rel_of(*b));
                if ra != rb {
                    edges.push((ra, *a, rb, *b));
                    continue;
                }
            }
        }
        rest.push(c);
    }

    // Order relations by estimated size.
    let sizes: Vec<f64> = parts
        .iter()
        .map(|p| {
            // use the base table row count of the first relation in the part
            p.scope
                .relations
                .first()
                .and_then(|(q, _, _)| {
                    catalog.resolve_table(q).or({
                        // alias: fall back to unknown
                        None
                    })
                })
                .and_then(|(tid, _)| catalog.table_rows(tid))
                .unwrap_or(1000) as f64
        })
        .collect();
    let edge_pairs: Vec<(usize, usize)> = edges.iter().map(|&(a, _, b, _)| (a, b)).collect();
    let order = order_relations(&sizes, &edge_pairs);

    // Build the join tree in that order; maintain a map from written-order
    // global columns to current plan columns.
    let offsets: Vec<usize> = {
        let mut acc = 0;
        parts
            .iter()
            .map(|p| {
                let o = acc;
                acc += p.scope.width;
                o
            })
            .collect()
    };
    let mut col_map: HashMap<usize, usize> = HashMap::new();
    let mut joined: Vec<usize> = Vec::new();
    let mut plan: Option<LogicalPlan> = None;
    let mut scope = Scope::default();
    let mut parts: Vec<Option<FromResult>> = parts.into_iter().map(Some).collect();
    let mut used_edges = vec![false; edges.len()];
    for &rel in &order {
        let part = parts[rel].take().unwrap();
        let base = offsets[rel];
        let cur_width = scope.width;
        for i in 0..part.scope.width {
            col_map.insert(base + i, cur_width + i);
        }
        match plan.take() {
            None => {
                plan = Some(part.plan);
                scope = part.scope;
            }
            Some(left) => {
                // join keys: all unused edges between `joined` and `rel`
                let mut on = Vec::new();
                for (k, &(ra, ca, rb, cb)) in edges.iter().enumerate() {
                    if used_edges[k] {
                        continue;
                    }
                    let (other, rel_col, other_col) = if ra == rel && joined.contains(&rb) {
                        (rb, ca, cb)
                    } else if rb == rel && joined.contains(&ra) {
                        (ra, cb, ca)
                    } else {
                        continue;
                    };
                    let _ = other;
                    // left key = already-joined side, right key = new rel
                    let l_col = col_map[&other_col];
                    let r_col = rel_col - base;
                    on.push((l_col, r_col));
                    used_edges[k] = true;
                }
                if on.is_empty() {
                    return Err(bind_err!(
                        "cross join between FROM items is not supported (no join predicate)"
                    ));
                }
                scope = scope.merged(&part.scope);
                plan = Some(LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(part.plan),
                    kind: JoinKind::Inner,
                    on,
                    residual: None,
                });
            }
        }
        joined.push(rel);
    }
    // Any edges left unused connect relations already joined (cycles in the
    // join graph): apply as filters.
    let mut rest_remapped: Vec<Expr> = rest
        .iter()
        .map(|e| e.remap_columns(&|i| col_map[&i]))
        .collect();
    for (k, &(_, ca, _, cb)) in edges.iter().enumerate() {
        if !used_edges[k] {
            rest_remapped.push(Expr::eq(Expr::col(col_map[&ca]), Expr::col(col_map[&cb])));
        }
    }
    // Remap subquery keys too.
    let subs = subs
        .into_iter()
        .map(|s| SubqueryCond {
            key: s.key.remap_columns(&|i| col_map[&i]),
            query: s.query,
            negated: s.negated,
        })
        .collect();
    Ok((plan.unwrap(), scope, rest_remapped, subs))
}

/// Resolve an ORDER BY key against the output schema: ordinal, alias or
/// plain output column name. `Ok(None)` = not an output key.
fn resolve_output_order_key(e: &AstExpr, out_schema: &Schema) -> Result<Option<usize>> {
    match e {
        AstExpr::Literal(Value::I64(n)) => {
            if *n >= 1 && (*n as usize) <= out_schema.len() {
                Ok(Some((*n - 1) as usize))
            } else {
                Err(bind_err!("ORDER BY ordinal {} out of range", n))
            }
        }
        AstExpr::Column(None, name) => Ok(out_schema.index_of(name)),
        _ => Ok(None),
    }
}

/// Shared ORDER BY machinery: resolve keys against the visible output, and
/// fall back to `bind_extra` for hidden sort expressions (standard SQL:
/// `SELECT id FROM t ORDER BY salary`). Hidden keys are appended to the
/// projection, sorted on, then stripped with a final projection.
fn apply_order_by(
    order_by: &[crate::ast::OrderItem],
    mut exprs: Vec<(Expr, String)>,
    input: LogicalPlan,
    bind_extra: &mut dyn FnMut(&AstExpr) -> Result<Expr>,
) -> Result<LogicalPlan> {
    let n_visible = exprs.len();
    let visible = Schema::new(
        exprs
            .iter()
            .map(|(_, n)| vw_common::Field::new(n.clone(), DataType::I64))
            .collect(),
    );
    let mut keys = Vec::new();
    for item in order_by {
        let col = match resolve_output_order_key(&item.expr, &visible)? {
            Some(c) => c,
            None => {
                let bound = bind_extra(&item.expr)?;
                match exprs.iter().position(|(e, _)| *e == bound) {
                    Some(c) => c,
                    None => {
                        exprs.push((bound, format!("__ord{}", exprs.len() - n_visible)));
                        exprs.len() - 1
                    }
                }
            }
        };
        keys.push(SortKey {
            col,
            asc: item.asc,
            nulls_first: item.nulls_first.unwrap_or(item.asc),
        });
    }
    let projected = LogicalPlan::Project {
        input: Box::new(input),
        exprs: exprs.clone(),
    };
    let sorted = projected.sort(keys);
    if exprs.len() > n_visible {
        // strip hidden sort columns
        let strip: Vec<(Expr, String)> = exprs[..n_visible]
            .iter()
            .enumerate()
            .map(|(i, (_, n))| (Expr::col(i), n.clone()))
            .collect();
        Ok(LogicalPlan::Project {
            input: Box::new(sorted),
            exprs: strip,
        })
    } else {
        Ok(sorted)
    }
}

/// Non-aggregate SELECT list.
fn bind_plain_select(
    stmt: &SelectStmt,
    plan: LogicalPlan,
    scope: &Scope,
    order_inside: bool,
) -> Result<LogicalPlan> {
    let in_schema = plan.schema()?;
    let mut exprs: Vec<(Expr, String)> = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (c, f) in in_schema.fields().iter().enumerate() {
                    exprs.push((Expr::col(c), f.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let bound = bind_scalar(expr, scope)?;
                let name = output_name(expr, alias, i, &in_schema, &bound);
                exprs.push((bound, name));
            }
        }
    }
    if order_inside && !stmt.order_by.is_empty() {
        return apply_order_by(&stmt.order_by, exprs, plan, &mut |e| bind_scalar(e, scope));
    }
    // `SELECT *` with no other items and no sorting: pass through.
    if stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Wildcard) {
        return Ok(plan);
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
    })
}

fn output_name(
    ast: &AstExpr,
    alias: &Option<String>,
    idx: usize,
    schema: &Schema,
    bound: &Expr,
) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    if let AstExpr::Column(_, name) = ast {
        return name.clone();
    }
    if let Expr::Col(i) = bound {
        return schema.field(*i).name.clone();
    }
    format!("col{}", idx + 1)
}

/// Aggregate SELECT: pre-project group keys and agg arguments, aggregate,
/// HAVING filter, post-project the final expressions.
fn bind_aggregate_select(
    stmt: &SelectStmt,
    plan: LogicalPlan,
    scope: &Scope,
    order_inside: bool,
) -> Result<LogicalPlan> {
    // Bind the GROUP BY expressions.
    let group_bound: Vec<(AstExpr, Expr)> = stmt
        .group_by
        .iter()
        .map(|g| Ok((g.clone(), bind_scalar(g, scope)?)))
        .collect::<Result<_>>()?;

    // Collect aggregates from SELECT items + HAVING.
    let mut aggs: Vec<(AstAggFunc, Option<Expr>)> = Vec::new();
    let mut collect = |e: &AstExpr| -> Result<()> { collect_aggs(e, scope, &mut aggs) };
    for item in &stmt.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect(expr)?;
        } else {
            return Err(bind_err!("SELECT * cannot be combined with GROUP BY"));
        }
    }
    if let Some(h) = &stmt.having {
        collect(h)?;
    }
    for item in &stmt.order_by {
        // ORDER BY may reference aggregates not in the select list
        if item.expr.contains_aggregate() {
            collect(&item.expr)?;
        }
    }

    let k = group_bound.len();
    // Pre-projection: group keys then agg args (agg args may be None for
    // COUNT(*), which needs no input column).
    let mut pre: Vec<(Expr, String)> = Vec::new();
    for (i, (_, ge)) in group_bound.iter().enumerate() {
        pre.push((ge.clone(), format!("__g{}", i)));
    }
    let mut agg_arg_cols: Vec<Option<usize>> = Vec::new();
    for (_, arg) in &aggs {
        match arg {
            Some(a) => {
                agg_arg_cols.push(Some(pre.len()));
                pre.push((a.clone(), format!("__a{}", agg_arg_cols.len() - 1)));
            }
            None => agg_arg_cols.push(None),
        }
    }
    // keep at least one column for COUNT(*)-only queries
    if pre.is_empty() {
        pre.push((Expr::lit(Value::I64(1)), "__one".into()));
    }
    let pre_plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: pre,
    };

    let agg_exprs: Vec<AggExpr> = aggs
        .iter()
        .zip(&agg_arg_cols)
        .enumerate()
        .map(|(j, ((func, _), col))| AggExpr {
            func: map_agg_func(*func, col.is_none()),
            arg: col.map(Expr::Col),
            name: format!("__agg{}", j),
        })
        .collect();
    let mut plan = LogicalPlan::Aggregate {
        input: Box::new(pre_plan),
        group_by: (0..k).collect(),
        aggs: agg_exprs,
        phase: vw_plan::plan::AggPhase::Single,
    };

    // Post-aggregate context: columns are [groups..., aggs...].
    let post = PostAggCtx {
        groups: &group_bound,
        aggs: &aggs,
        scope,
        k,
    };
    if let Some(h) = &stmt.having {
        let pred = post.bind(h)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred,
        };
    }
    // Final projection: the SELECT items.
    let agg_schema = plan.schema()?;
    let mut exprs: Vec<(Expr, String)> = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            unreachable!()
        };
        let bound = post.bind(expr)?;
        let name = output_name(expr, alias, i, &agg_schema, &bound);
        exprs.push((bound, name));
    }
    if order_inside && !stmt.order_by.is_empty() {
        // hidden sort keys may be group expressions or aggregates
        return apply_order_by(&stmt.order_by, exprs, plan, &mut |e| post.bind(e));
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
    })
}

fn map_agg_func(f: AstAggFunc, star: bool) -> AggFunc {
    match f {
        AstAggFunc::Count => {
            if star {
                AggFunc::CountStar
            } else {
                AggFunc::Count
            }
        }
        AstAggFunc::Sum => AggFunc::Sum,
        AstAggFunc::Min => AggFunc::Min,
        AstAggFunc::Max => AggFunc::Max,
        AstAggFunc::Avg => AggFunc::Avg,
    }
}

/// Collect (deduplicated) aggregate calls.
fn collect_aggs(
    e: &AstExpr,
    scope: &Scope,
    out: &mut Vec<(AstAggFunc, Option<Expr>)>,
) -> Result<()> {
    match e {
        AstExpr::Agg { func, arg } => {
            let bound = arg.as_ref().map(|a| bind_scalar(a, scope)).transpose()?;
            if !out.iter().any(|(f, b)| f == func && b == &bound) {
                out.push((*func, bound));
            }
            Ok(())
        }
        AstExpr::Column(..) | AstExpr::Literal(_) => Ok(()),
        AstExpr::Binary { l, r, .. } => {
            collect_aggs(l, scope, out)?;
            collect_aggs(r, scope, out)
        }
        AstExpr::Not(x) | AstExpr::Neg(x) => collect_aggs(x, scope, out),
        AstExpr::IsNull { e, .. }
        | AstExpr::Like { e, .. }
        | AstExpr::Cast { e, .. }
        | AstExpr::Substring { e, .. }
        | AstExpr::Extract { e, .. }
        | AstExpr::AddMonths { e, .. } => collect_aggs(e, scope, out),
        AstExpr::Between { e, lo, hi, .. } => {
            collect_aggs(e, scope, out)?;
            collect_aggs(lo, scope, out)?;
            collect_aggs(hi, scope, out)
        }
        AstExpr::InList { e, list, .. } => {
            collect_aggs(e, scope, out)?;
            for x in list {
                collect_aggs(x, scope, out)?;
            }
            Ok(())
        }
        AstExpr::InSubquery { .. } => Err(bind_err!("subquery not allowed here")),
        AstExpr::Case { whens, otherwise } => {
            for (c, t) in whens {
                collect_aggs(c, scope, out)?;
                collect_aggs(t, scope, out)?;
            }
            if let Some(x) = otherwise {
                collect_aggs(x, scope, out)?;
            }
            Ok(())
        }
    }
}

/// Binds expressions in the post-aggregate context: group expressions map to
/// columns `0..k`, aggregate calls map to columns `k..k+m`, anything else
/// must be composed of those.
struct PostAggCtx<'a> {
    groups: &'a [(AstExpr, Expr)],
    aggs: &'a [(AstAggFunc, Option<Expr>)],
    scope: &'a Scope,
    k: usize,
}

impl PostAggCtx<'_> {
    fn bind(&self, e: &AstExpr) -> Result<Expr> {
        // A whole subtree equal to a GROUP BY expression → group column.
        for (i, (g_ast, _)) in self.groups.iter().enumerate() {
            if g_ast == e {
                return Ok(Expr::Col(i));
            }
        }
        match e {
            AstExpr::Agg { func, arg } => {
                let bound = arg
                    .as_ref()
                    .map(|a| bind_scalar(a, self.scope))
                    .transpose()?;
                let j = self
                    .aggs
                    .iter()
                    .position(|(f, b)| f == func && b == &bound)
                    .ok_or_else(|| bind_err!("aggregate not collected"))?;
                Ok(Expr::Col(self.k + j))
            }
            AstExpr::Literal(v) => Ok(Expr::Lit(v.clone())),
            AstExpr::Column(q, name) => {
                // A bare column must match a group expr (by bound index).
                let bound = Expr::Col(self.scope.resolve(q.as_deref(), name)?);
                for (i, (_, g_bound)) in self.groups.iter().enumerate() {
                    if *g_bound == bound {
                        return Ok(Expr::Col(i));
                    }
                }
                Err(bind_err!(
                    "column '{}' must appear in GROUP BY or inside an aggregate",
                    name
                ))
            }
            AstExpr::Binary { op, l, r } => {
                Ok(Expr::binary(ast_binop(*op), self.bind(l)?, self.bind(r)?))
            }
            AstExpr::Not(x) => Ok(Expr::not(self.bind(x)?)),
            AstExpr::Neg(x) => Ok(Expr::Unary {
                op: UnOp::Neg,
                e: Box::new(self.bind(x)?),
            }),
            AstExpr::IsNull { e, negated } => Ok(Expr::Unary {
                op: if *negated {
                    UnOp::IsNotNull
                } else {
                    UnOp::IsNull
                },
                e: Box::new(self.bind(e)?),
            }),
            AstExpr::Case { whens, otherwise } => Ok(Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, t)| Ok((self.bind(c)?, self.bind(t)?)))
                    .collect::<Result<_>>()?,
                otherwise: otherwise
                    .as_ref()
                    .map(|x| Ok::<_, VwError>(Box::new(self.bind(x)?)))
                    .transpose()?,
            }),
            AstExpr::Cast { e, ty } => Ok(Expr::Cast(Box::new(self.bind(e)?), *ty)),
            AstExpr::Between { e, lo, hi, negated } => {
                let b = self.bind(e)?;
                let both = Expr::and(
                    Expr::binary(BinOp::Ge, b.clone(), self.bind(lo)?),
                    Expr::binary(BinOp::Le, b, self.bind(hi)?),
                );
                Ok(if *negated { Expr::not(both) } else { both })
            }
            other => Err(bind_err!(
                "expression not supported above GROUP BY: {:?}",
                other
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use vw_common::Field;

    struct TestCatalog {
        tables: HashMap<String, (TableId, Schema, u64)>,
    }

    impl TestCatalog {
        fn new() -> TestCatalog {
            let mut tables = HashMap::new();
            tables.insert(
                "lineitem".to_string(),
                (
                    TableId::new(1),
                    Schema::new(vec![
                        Field::new("orderkey", DataType::I64),
                        Field::new("quantity", DataType::I64),
                        Field::new("price", DataType::F64),
                        Field::new("shipdate", DataType::Date),
                        Field::new("flag", DataType::Str),
                    ]),
                    60000,
                ),
            );
            tables.insert(
                "orders".to_string(),
                (
                    TableId::new(2),
                    Schema::new(vec![
                        Field::new("orderkey", DataType::I64),
                        Field::new("custkey", DataType::I64),
                        Field::nullable("comment", DataType::Str),
                    ]),
                    15000,
                ),
            );
            tables.insert(
                "customer".to_string(),
                (
                    TableId::new(3),
                    Schema::new(vec![
                        Field::new("custkey", DataType::I64),
                        Field::new("name", DataType::Str),
                    ]),
                    1500,
                ),
            );
            TestCatalog { tables }
        }
    }

    impl CatalogView for TestCatalog {
        fn resolve_table(&self, name: &str) -> Option<(TableId, Schema)> {
            self.tables.get(name).map(|(id, s, _)| (*id, s.clone()))
        }

        fn table_rows(&self, id: TableId) -> Option<u64> {
            self.tables
                .values()
                .find(|(i, _, _)| *i == id)
                .map(|(_, _, n)| *n)
        }
    }

    fn bind_sql(sql: &str) -> Result<BoundStatement> {
        let stmt = parse_statement(sql)?;
        bind(&stmt, &TestCatalog::new())
    }

    fn plan_of(sql: &str) -> LogicalPlan {
        match bind_sql(sql).unwrap() {
            BoundStatement::Query(p) => p,
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn simple_projection_types() {
        let p = plan_of("SELECT orderkey, price * 2 AS dbl FROM lineitem");
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).name, "orderkey");
        assert_eq!(s.field(1).name, "dbl");
        assert_eq!(s.field(1).ty, DataType::F64);
    }

    #[test]
    fn wildcard_passthrough() {
        let p = plan_of("SELECT * FROM orders");
        assert_eq!(p.schema().unwrap().len(), 3);
        assert!(matches!(p, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn where_is_typed() {
        assert!(bind_sql("SELECT * FROM orders WHERE custkey").is_err());
        assert!(bind_sql("SELECT * FROM orders WHERE custkey = 5").is_ok());
        assert!(bind_sql("SELECT * FROM orders WHERE nosuch = 5").is_err());
    }

    #[test]
    fn qualified_and_ambiguous_names() {
        // both orders and customer have custkey
        assert!(
            bind_sql("SELECT custkey FROM orders o JOIN customer c ON o.custkey = c.custkey")
                .is_err()
        );
        assert!(bind_sql(
            "SELECT o.custkey FROM orders o JOIN customer c ON o.custkey = c.custkey"
        )
        .is_ok());
    }

    #[test]
    fn explicit_join_builds_keys() {
        let p = plan_of(
            "SELECT o.orderkey FROM orders o JOIN customer c ON o.custkey = c.custkey AND o.orderkey > 5",
        );
        let text = p.explain();
        assert!(text.contains("INNERJoin on l#1=r#0"), "{}", text);
        assert!(text.contains("residual"), "{}", text);
    }

    #[test]
    fn left_join_kind() {
        let p = plan_of(
            "SELECT o.orderkey FROM orders o LEFT JOIN customer c ON o.custkey = c.custkey",
        );
        assert!(p.explain().contains("LEFTJoin"));
    }

    #[test]
    fn comma_join_reorders_by_size() {
        let p = plan_of(
            "SELECT l.orderkey FROM customer c, orders o, lineitem l \
             WHERE c.custkey = o.custkey AND o.orderkey = l.orderkey",
        );
        let text = p.explain();
        // largest (lineitem) should be the outermost probe side
        let li_pos = text.find("Scan lineitem").unwrap();
        let cu_pos = text.find("Scan customer").unwrap();
        assert!(li_pos < cu_pos, "{}", text);
    }

    #[test]
    fn cross_join_rejected() {
        assert!(bind_sql("SELECT * FROM orders, customer").is_err());
    }

    #[test]
    fn aggregate_query_shape() {
        let p = plan_of(
            "SELECT flag, COUNT(*) AS n, SUM(price * quantity) AS rev \
             FROM lineitem WHERE quantity > 0 GROUP BY flag HAVING COUNT(*) > 1 \
             ORDER BY rev DESC LIMIT 5",
        );
        let text = p.explain();
        assert!(text.contains("Aggregate"), "{}", text);
        assert!(text.contains("Limit"), "{}", text);
        assert!(text.contains("Sort"), "{}", text);
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).name, "flag");
        assert_eq!(s.field(1).name, "n");
        assert_eq!(s.field(2).name, "rev");
        assert_eq!(s.field(2).ty, DataType::F64);
    }

    #[test]
    fn group_by_expression() {
        let p = plan_of(
            "SELECT EXTRACT(YEAR FROM shipdate) AS yr, COUNT(*) FROM lineitem \
             GROUP BY EXTRACT(YEAR FROM shipdate) ORDER BY yr",
        );
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).name, "yr");
        assert_eq!(s.field(0).ty, DataType::I32);
    }

    #[test]
    fn ungrouped_column_rejected() {
        assert!(bind_sql("SELECT flag, quantity, COUNT(*) FROM lineitem GROUP BY flag").is_err());
    }

    #[test]
    fn scalar_aggregate_without_group() {
        let p = plan_of("SELECT COUNT(*), AVG(price) FROM lineitem");
        let s = p.schema().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(1).ty, DataType::F64);
    }

    #[test]
    fn distinct_becomes_group() {
        let p = plan_of("SELECT DISTINCT flag FROM lineitem");
        assert!(p.explain().contains("Aggregate"));
    }

    #[test]
    fn order_by_ordinal_and_name() {
        let p = plan_of("SELECT orderkey, custkey FROM orders ORDER BY 2 DESC, orderkey");
        match p {
            LogicalPlan::Sort { keys, .. } => {
                assert_eq!(keys[0].col, 1);
                assert!(!keys[0].asc);
                assert_eq!(keys[1].col, 0);
                assert!(keys[1].asc);
            }
            other => panic!("{}", other.explain()),
        }
        assert!(bind_sql("SELECT orderkey FROM orders ORDER BY 5").is_err());
    }

    #[test]
    fn in_subquery_binds_to_semi_join() {
        let p =
            plan_of("SELECT orderkey FROM orders WHERE custkey IN (SELECT custkey FROM customer)");
        assert!(p.explain().contains("SEMIJoin"), "{}", p.explain());
        let p = plan_of(
            "SELECT orderkey FROM orders WHERE custkey NOT IN (SELECT custkey FROM customer)",
        );
        assert!(p.explain().contains("ANTIJoin"), "{}", p.explain());
    }

    #[test]
    fn insert_binding() {
        match bind_sql("INSERT INTO customer (custkey, name) VALUES (1, 'x'), (2, 'y')").unwrap() {
            BoundStatement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0], vec![Value::I64(1), Value::Str("x".into())]);
            }
            other => panic!("{:?}", other),
        }
        // missing NOT NULL column
        assert!(bind_sql("INSERT INTO customer (custkey) VALUES (1)").is_err());
        // arity mismatch
        assert!(bind_sql("INSERT INTO customer (custkey, name) VALUES (1)").is_err());
        // type coercion failure
        assert!(bind_sql("INSERT INTO customer (custkey, name) VALUES ('abc', 'x')").is_err());
    }

    #[test]
    fn update_delete_binding() {
        match bind_sql("UPDATE orders SET comment = 'hi' WHERE orderkey = 3").unwrap() {
            BoundStatement::Update {
                assignments,
                predicate,
                ..
            } => {
                assert_eq!(assignments[0].0, 2);
                assert!(predicate.is_some());
            }
            other => panic!("{:?}", other),
        }
        match bind_sql("DELETE FROM orders WHERE custkey = 9").unwrap() {
            BoundStatement::Delete { predicate, .. } => assert!(predicate.is_some()),
            other => panic!("{:?}", other),
        }
        assert!(bind_sql("UPDATE orders SET nosuch = 1").is_err());
    }

    #[test]
    fn create_table_binding() {
        match bind_sql("CREATE TABLE newt (a BIGINT NOT NULL, b VARCHAR)").unwrap() {
            BoundStatement::CreateTable {
                name,
                schema,
                layout,
            } => {
                assert_eq!(name, "newt");
                assert!(!schema.field(0).nullable);
                assert!(schema.field(1).nullable);
                assert!(layout.is_trivial());
            }
            other => panic!("{:?}", other),
        }
        assert!(bind_sql("CREATE TABLE orders (a BIGINT)").is_err()); // exists
        assert!(bind_sql("CREATE TABLE d (a BIGINT, a BIGINT)").is_err()); // dup col
    }

    #[test]
    fn create_table_layout_binding() {
        match bind_sql(
            "CREATE TABLE li (k BIGINT, d DATE, v DOUBLE) \
             ORDER BY (d DESC NULLS LAST, k) PARTITION BY RANGE(d) PARTITIONS 3",
        )
        .unwrap()
        {
            BoundStatement::CreateTable { layout, .. } => {
                assert_eq!(layout.order.len(), 2);
                assert_eq!(layout.order[0].col, 1);
                assert!(!layout.order[0].asc);
                assert!(!layout.order[0].nulls_first);
                assert_eq!(layout.order[1].col, 0);
                assert!(layout.order[1].asc);
                assert!(layout.order[1].nulls_first); // default for ASC
                let p = layout.partition.unwrap();
                assert_eq!(p.col, 1);
                assert_eq!(p.partitions, 3);
            }
            other => panic!("{:?}", other),
        }
        // Unknown columns in the physical design are binder errors.
        assert!(bind_sql("CREATE TABLE z (a BIGINT) ORDER BY (nosuch)").is_err());
        assert!(
            bind_sql("CREATE TABLE z (a BIGINT) PARTITION BY RANGE(nosuch) PARTITIONS 2").is_err()
        );
    }

    #[test]
    fn order_by_nulls_placement_binds() {
        let plan = match bind_sql("SELECT custkey FROM orders ORDER BY custkey DESC NULLS FIRST") {
            Ok(BoundStatement::Query(p)) => p,
            other => panic!("{:?}", other),
        };
        fn find_sort(p: &LogicalPlan) -> Option<Vec<SortKey>> {
            if let LogicalPlan::Sort { keys, .. } = p {
                return Some(keys.clone());
            }
            p.children().into_iter().find_map(find_sort)
        }
        let keys = find_sort(&plan).expect("plan has a sort");
        assert_eq!(keys.len(), 1);
        assert!(!keys[0].asc);
        assert!(keys[0].nulls_first);
    }

    #[test]
    fn explain_binds() {
        assert!(matches!(
            bind_sql("EXPLAIN SELECT * FROM orders").unwrap(),
            BoundStatement::Explain(_)
        ));
        assert!(matches!(
            bind_sql("EXPLAIN ANALYZE SELECT * FROM orders").unwrap(),
            BoundStatement::ExplainAnalyze(_)
        ));
        // Only queries can be analyzed.
        assert!(bind_sql("EXPLAIN ANALYZE CREATE TABLE z (a BIGINT)").is_err());
    }

    #[test]
    fn between_and_date_arith() {
        let p = plan_of(
            "SELECT orderkey FROM lineitem WHERE shipdate BETWEEN DATE '1995-01-01' \
             AND DATE '1995-01-01' + INTERVAL '3' MONTH",
        );
        let text = p.explain();
        assert!(text.contains(">="));
        assert!(text.contains("<="));
    }
}
