//! `vw-sql` — the SQL front-end: lexer, parser, binder.
//!
//! In the Vectorwise product SQL lives in the Ingres front-end (§I-B); here
//! a self-contained implementation covers the analytical dialect the engine
//! needs:
//!
//! * `SELECT` with projections, expressions, aliases, `DISTINCT`;
//! * `FROM` with comma joins and explicit `[INNER|LEFT] JOIN ... ON`;
//! * `WHERE` (full boolean expressions, `BETWEEN`, `IN`, `LIKE`,
//!   `IS [NOT] NULL`), uncorrelated `IN (SELECT ...)` subqueries
//!   (bound to semi/anti joins);
//! * `GROUP BY` / `HAVING` with `COUNT/SUM/MIN/MAX/AVG`;
//! * `ORDER BY` (output names or ordinals) and `LIMIT`/`OFFSET`;
//! * `CREATE TABLE`, `INSERT ... VALUES`, `UPDATE`, `DELETE`;
//! * `EXPLAIN <query>`;
//! * scalar functions: `SUBSTRING`, `EXTRACT(YEAR|MONTH FROM ...)`,
//!   `CAST`, date literals (`DATE '1995-01-01'`) and
//!   `INTERVAL 'n' MONTH|YEAR` arithmetic.
//!
//! The binder resolves names against a [`CatalogView`], performs
//! comma-join ordering through `vw_plan::optimizer::order_relations`, and
//! emits engine-neutral [`vw_plan::LogicalPlan`]s.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::{AstExpr, SelectStmt, SetScope, Statement};
pub use binder::{bind, BoundStatement, CatalogView};
pub use parser::parse_statement;

use vw_common::Result;

/// Parse and bind one SQL statement.
pub fn compile_sql(sql: &str, catalog: &dyn CatalogView) -> Result<BoundStatement> {
    let stmt = parse_statement(sql)?;
    bind(&stmt, catalog)
}
