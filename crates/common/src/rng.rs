//! A tiny deterministic PRNG (xoshiro256**) used inside the engine where we
//! need reproducible pseudo-randomness without pulling `rand` into low-level
//! crates (e.g. sampling in the optimizer's histogram builder, test data in
//! unit tests). The TPC-H generator uses the real `rand` crate.

/// xoshiro256** — fast, high-quality, 256-bit state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via splitmix64 so any u64 (including 0) is a valid seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` using Lemire's multiply-shift (slightly biased
    /// for huge bounds; fine for data generation).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Flip a coin with probability `p` of true.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seeded(43);
        assert_ne!(Xoshiro256::seeded(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Xoshiro256::seeded(0);
        let vals: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Xoshiro256::seeded(7);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(r.range_i64(3, 3), 3);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Xoshiro256::seeded(11);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((0.47..0.53).contains(&mean), "mean {}", mean);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seeded(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, (0..100).collect::<Vec<u32>>()); // astronomically unlikely
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro256::seeded(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {}", hits);
    }
}
