//! Fast non-cryptographic hashing for join and aggregation hash tables.
//!
//! Hash joins and hash aggregation hash millions of keys per query; SipHash
//! (std's default) would dominate their profile. We use an FxHash-style
//! multiply-rotate word hasher plus a finalizer, hand-rolled to avoid a
//! dependency. HashDoS is not a concern for an embedded analytical engine
//! processing its own storage.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hash a single 64-bit key (the common case: integer join keys).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    // xorshift-multiply finalizer (splitmix64 style) — good avalanche,
    // 3 multiplies worth of latency, no table lookups.
    let mut x = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combine an existing hash with another word (multi-column keys).
#[inline]
pub fn hash_combine(h: u64, v: u64) -> u64 {
    hash_u64(h ^ v.wrapping_mul(SEED))
}

/// Hash a byte slice (string keys). FNV-1a over 8-byte chunks with a
/// splitmix finalizer; fast enough for our workloads and allocation-free.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(0x100_0000_01b3);
    }
    let mut tail: u64 = 0;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    h = (h ^ tail).wrapping_mul(0x100_0000_01b3);
    hash_u64(h ^ bytes.len() as u64)
}

/// An `std::hash::Hasher` wrapper so std collections can use our function.
#[derive(Default)]
pub struct FxLikeHasher {
    state: u64,
}

impl Hasher for FxLikeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.state = hash_combine(self.state, hash_bytes(bytes));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.state = hash_combine(self.state, v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.state = hash_combine(self.state, v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = hash_combine(self.state, v);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// BuildHasher for `HashMap`/`HashSet` with our fast hasher.
pub type FxBuildHasher = BuildHasherDefault<FxLikeHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_u64_avalanches() {
        // Flipping one input bit should flip ~half the output bits on average.
        let mut total = 0u32;
        let trials = 64 * 16;
        for i in 0..16u64 {
            let x = i.wrapping_mul(0x1234_5678_9abc_def1);
            let base = hash_u64(x);
            for bit in 0..64 {
                let flipped = hash_u64(x ^ (1 << bit));
                total += (base ^ flipped).count_ones();
            }
        }
        let avg = total as f64 / trials as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {}", avg);
    }

    #[test]
    fn sequential_keys_spread() {
        // Low bits of hashes of sequential keys must not collide heavily —
        // this is what the open-addressing tables rely on.
        let mask = 1024 - 1;
        let mut buckets = vec![0u32; 1024];
        for i in 0..8192u64 {
            buckets[(hash_u64(i) & mask) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max <= 24, "bucket skew too high: {}", max);
    }

    #[test]
    fn bytes_hash_distinguishes() {
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
        assert_eq!(hash_bytes(b"vectorwise"), hash_bytes(b"vectorwise"));
        // longer than 8 bytes exercises the chunked path
        assert_ne!(
            hash_bytes(b"0123456789abcdef"),
            hash_bytes(b"0123456789abcdeg")
        );
    }

    #[test]
    fn std_collections_work_with_fx() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn combine_order_matters() {
        assert_ne!(hash_combine(hash_u64(1), 2), hash_combine(hash_u64(2), 1));
    }
}
