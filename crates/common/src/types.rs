//! Scalar data types and self-describing values.
//!
//! The engine is columnar and strongly typed: a [`DataType`] tags whole
//! columns, and the boxed [`Value`] enum only appears at the edges (SQL
//! literals, query results, the tuple-at-a-time baseline engine). The hot
//! vectorized path never touches `Value`.

use crate::date::{format_date, parse_date};
use std::cmp::Ordering;
use std::fmt;

/// The scalar types the engine supports.
///
/// Decimals are represented as `I64` scaled by 100 (TPC-H money), which is
/// how Vectorwise itself maps low-scale decimals onto integer kernels; the
/// SQL layer handles the scaling. `Date` is `i32` days since epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    I32,
    I64,
    F64,
    Date,
    Str,
}

impl DataType {
    /// Width in bytes of one value in uncompressed columnar form.
    /// Strings report the pointer-free average estimate used by the
    /// optimizer's cost model (actual storage is offset+bytes).
    pub fn byte_width(self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::I32 | DataType::Date => 4,
            DataType::I64 | DataType::F64 => 8,
            DataType::Str => 16,
        }
    }

    /// True for types on which SUM/AVG are defined.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::I32 | DataType::I64 | DataType::F64)
    }

    /// Name as it appears in SQL and in `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::I32 => "INTEGER",
            DataType::I64 => "BIGINT",
            DataType::F64 => "DOUBLE",
            DataType::Date => "DATE",
            DataType::Str => "VARCHAR",
        }
    }

    /// The type arithmetic between `self` and `other` produces, if any.
    pub fn common_numeric(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (F64, x) | (x, F64) if x.is_numeric() => Some(F64),
            (I64, x) | (x, I64) if x.is_numeric() => Some(I64),
            (I32, I32) => Some(I32),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single self-describing scalar value, including SQL NULL.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    I32(i32),
    I64(i64),
    F64(f64),
    /// Days since 1970-01-01.
    Date(i32),
    Str(String),
}

impl Value {
    /// The type of this value, or `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::I32(_) => Some(DataType::I32),
            Value::I64(_) => Some(DataType::I64),
            Value::F64(_) => Some(DataType::F64),
            Value::Date(_) => Some(DataType::Date),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Widen/convert this value to `ty` where SQL implicit casts allow it.
    pub fn cast_to(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Bool(b), DataType::Bool) => Some(Value::Bool(*b)),
            (Value::I32(v), DataType::I32) => Some(Value::I32(*v)),
            (Value::I32(v), DataType::I64) => Some(Value::I64(*v as i64)),
            (Value::I32(v), DataType::F64) => Some(Value::F64(*v as f64)),
            (Value::I32(v), DataType::Date) => Some(Value::Date(*v)),
            (Value::I64(v), DataType::I64) => Some(Value::I64(*v)),
            (Value::I64(v), DataType::I32) => i32::try_from(*v).ok().map(Value::I32),
            (Value::I64(v), DataType::F64) => Some(Value::F64(*v as f64)),
            (Value::F64(v), DataType::F64) => Some(Value::F64(*v)),
            (Value::F64(v), DataType::I64) => {
                let r = v.round();
                // `i64::MAX as f64` rounds up to 2^63, so an inclusive upper
                // bound would admit 9223372036854775808.0 and let `as i64`
                // saturate; the upper bound must be exclusive. The lower bound
                // is fine: `i64::MIN as f64` is exactly -2^63.
                if r.is_finite() && r >= i64::MIN as f64 && r < 9_223_372_036_854_775_808.0 {
                    Some(Value::I64(r as i64))
                } else {
                    None
                }
            }
            (Value::F64(v), DataType::I32) => {
                let r = v.round();
                if r.is_finite() && (i32::MIN as f64..=i32::MAX as f64).contains(&r) {
                    Some(Value::I32(r as i32))
                } else {
                    None
                }
            }
            (Value::Date(v), DataType::Date) => Some(Value::Date(*v)),
            (Value::Str(s), DataType::Str) => Some(Value::Str(s.clone())),
            (Value::Str(s), DataType::Date) => parse_date(s).map(Value::Date),
            _ => None,
        }
    }

    /// Extract as i64 (integers and dates), for the row engine.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I32(v) => Some(*v as i64),
            Value::I64(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Extract as f64 (any numeric), for the row engine.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I32(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as NULL (returns `None`);
    /// cross-numeric comparisons widen; strings compare bytewise.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (F64(_), _) | (_, F64(_)) => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
            _ => {
                let a = self.as_i64()?;
                let b = other.as_i64()?;
                Some(a.cmp(&b))
            }
        }
    }

    /// Total order for sorting: NULLs sort first, then by value; used by
    /// ORDER BY in the baseline engines and result comparison in tests.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.sql_cmp(other).unwrap_or_else(|| {
                // SQL comparison is partial: NaN is incomparable to every
                // double (including itself), and mismatched types have no
                // order. Fall back to IEEE total order for float pairs and to
                // type tags otherwise, so sorting stays total.
                if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
                    return a.total_cmp(&b);
                }
                let ta = self.data_type().map(|t| t.name()).unwrap_or("");
                let tb = other.data_type().map(|t| t.name()).unwrap_or("");
                ta.cmp(tb)
            }),
        }
    }

    /// SQL equality (NULL = anything is NULL, i.e. `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Canonical form for use as a grouping/join key. Structural
    /// equality/hashing on `Value` is bitwise for `F64`, which is wrong for
    /// SQL keys: `0.0` and `-0.0` are SQL-equal but have different bits, and
    /// NaN has many payloads. Key-building code normalizes values through
    /// this before hashing or comparing, rather than weakening the structural
    /// semantics everywhere else.
    pub fn normalize_key(&self) -> Value {
        match self {
            Value::F64(v) => Value::F64(normalize_key_f64(*v)),
            other => other.clone(),
        }
    }
}

/// Fold an f64 into its canonical grouping-key representative: `-0.0`
/// becomes `0.0` (SQL-equal values must share one group) and every NaN
/// payload becomes the one canonical quiet NaN so NaN groups with itself.
#[inline]
pub fn normalize_key_f64(v: f64) -> f64 {
    if v.is_nan() {
        f64::NAN
    } else if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Structural equality for tests and hash keys: NULL == NULL, f64 by bits.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (I32(a), I32(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a.to_bits() == b.to_bits(),
            (Date(a), Date(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use Value::*;
        match self {
            Null => state.write_u8(0),
            Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            I32(v) => {
                state.write_u8(2);
                state.write_i32(*v);
            }
            I64(v) => {
                state.write_u8(3);
                state.write_i64(*v);
            }
            F64(v) => {
                state.write_u8(4);
                state.write_u64(v.to_bits());
            }
            Date(v) => {
                state.write_u8(5);
                state.write_i32(*v);
            }
            Str(s) => {
                state.write_u8(6);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", b),
            Value::I32(v) => write!(f, "{}", v),
            Value::I64(v) => write!(f, "{}", v),
            Value::F64(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{}", v)
                }
            }
            Value::Date(d) => f.write_str(&format_date(*d)),
            Value::Str(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_properties() {
        assert!(DataType::I64.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert_eq!(DataType::Date.byte_width(), 4);
        assert_eq!(
            DataType::I32.common_numeric(DataType::F64),
            Some(DataType::F64)
        );
        assert_eq!(
            DataType::I32.common_numeric(DataType::I64),
            Some(DataType::I64)
        );
        assert_eq!(
            DataType::I32.common_numeric(DataType::I32),
            Some(DataType::I32)
        );
        assert_eq!(DataType::Str.common_numeric(DataType::I32), None);
        assert_eq!(DataType::Bool.name(), "BOOLEAN");
    }

    #[test]
    fn null_semantics() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.sql_cmp(&Value::I32(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        // but structural equality treats NULL == NULL (needed by GROUP BY)
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.total_cmp(&Value::I32(i32::MIN)), Ordering::Less);
    }

    #[test]
    fn cross_numeric_compare() {
        assert_eq!(Value::I32(3).sql_cmp(&Value::I64(4)), Some(Ordering::Less));
        assert_eq!(
            Value::F64(3.5).sql_cmp(&Value::I32(3)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::I64(5).sql_eq(&Value::I32(5)), Some(true));
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn casting() {
        assert_eq!(Value::I32(7).cast_to(DataType::I64), Some(Value::I64(7)));
        assert_eq!(Value::I64(7).cast_to(DataType::I32), Some(Value::I32(7)));
        assert_eq!(Value::I64(i64::MAX).cast_to(DataType::I32), None);
        assert_eq!(
            Value::Str("1995-01-01".into()).cast_to(DataType::Date),
            Some(Value::Date(crate::date::parse_date("1995-01-01").unwrap()))
        );
        assert_eq!(Value::Null.cast_to(DataType::I64), Some(Value::Null));
        assert_eq!(Value::Bool(true).cast_to(DataType::I64), None);
    }

    #[test]
    fn f64_to_int_cast_boundaries() {
        // 2^63 is exactly representable as f64 but NOT a valid i64.
        let two_pow_63 = 9_223_372_036_854_775_808.0f64;
        assert_eq!(Value::F64(two_pow_63).cast_to(DataType::I64), None);
        // i64::MAX as f64 rounds to 2^63, so it must also be rejected.
        assert_eq!(Value::F64(i64::MAX as f64).cast_to(DataType::I64), None);
        // The largest f64 strictly below 2^63 is valid.
        let below = 9_223_372_036_854_774_784.0f64;
        assert_eq!(
            Value::F64(below).cast_to(DataType::I64),
            Some(Value::I64(below as i64))
        );
        // -2^63 is exactly i64::MIN and must be accepted.
        assert_eq!(
            Value::F64(i64::MIN as f64).cast_to(DataType::I64),
            Some(Value::I64(i64::MIN))
        );
        assert_eq!(Value::F64(f64::NAN).cast_to(DataType::I64), None);
        assert_eq!(Value::F64(f64::INFINITY).cast_to(DataType::I64), None);
        // The i32 path is exact on both ends (i32 fits in f64's mantissa).
        assert_eq!(
            Value::F64(i32::MAX as f64).cast_to(DataType::I32),
            Some(Value::I32(i32::MAX))
        );
        assert_eq!(
            Value::F64(i32::MIN as f64).cast_to(DataType::I32),
            Some(Value::I32(i32::MIN))
        );
        assert_eq!(
            Value::F64(i32::MAX as f64 + 1.0).cast_to(DataType::I32),
            None
        );
    }

    #[test]
    fn key_normalization() {
        assert_eq!(normalize_key_f64(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(
            normalize_key_f64(f64::from_bits(0x7ff8_dead_beef_0001)).to_bits(),
            f64::NAN.to_bits()
        );
        assert_eq!(normalize_key_f64(1.5), 1.5);
        // Normalized values agree under structural (bitwise) equality/hash.
        assert_eq!(
            Value::F64(-0.0).normalize_key(),
            Value::F64(0.0).normalize_key()
        );
        assert_eq!(
            Value::F64(f64::NAN).normalize_key(),
            Value::F64(-f64::NAN).normalize_key()
        );
        // Non-float values pass through untouched.
        assert_eq!(Value::I64(3).normalize_key(), Value::I64(3));
        assert_eq!(Value::Null.normalize_key(), Value::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::F64(2.0).to_string(), "2.0");
        assert_eq!(Value::F64(2.5).to_string(), "2.5");
        assert_eq!(
            Value::Date(crate::date::parse_date("1998-09-02").unwrap()).to_string(),
            "1998-09-02"
        );
    }

    #[test]
    fn hashing_matches_equality() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::I64(1));
        s.insert(Value::Null);
        s.insert(Value::Null);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Value::I64(1)));
        // f64 NaN hashes consistently with bit equality
        let mut s2 = HashSet::new();
        s2.insert(Value::F64(f64::NAN));
        assert!(s2.contains(&Value::F64(f64::NAN)));
    }

    #[test]
    fn total_cmp_is_total_on_mixed_types() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::I32(1),
            Value::Str("x".into()),
            Value::F64(0.5),
            Value::F64(f64::NAN),
            Value::F64(f64::NEG_INFINITY),
            Value::F64(-0.0),
        ];
        // antisymmetry sanity: a<=b and b<=a implies a==b ordering-wise
        for a in &vals {
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{:?} vs {:?}", a, b);
            }
        }
        // transitivity: sorting must never see an ordering violation (NaN
        // used to compare Equal to every double via the type-tag fallback).
        let mut sorted = vals.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for w in sorted.windows(3) {
            if w[0].total_cmp(&w[1]) == Ordering::Equal && w[1].total_cmp(&w[2]) == Ordering::Equal
            {
                assert_eq!(w[0].total_cmp(&w[2]), Ordering::Equal);
            }
        }
        assert_eq!(
            Value::F64(f64::NAN).total_cmp(&Value::F64(f64::NAN)),
            Ordering::Equal
        );
        assert_eq!(
            Value::F64(1.0).total_cmp(&Value::F64(f64::NAN)),
            Ordering::Less
        );
    }
}
