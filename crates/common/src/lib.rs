//! `vw-common` — shared foundation types for the vectorwise-rs analytical DBMS.
//!
//! This crate holds everything that more than one subsystem needs but that has
//! no behaviour of its own worth a crate: scalar types and values, dates,
//! schemas, error handling, identifiers, a deterministic RNG, a fast
//! non-cryptographic hash, and a bit vector.
//!
//! Nothing in here depends on any other vectorwise crate; the dependency
//! graph is strictly bottom-up (see `DESIGN.md`).

pub mod bitvec;
pub mod config;
pub mod date;
pub mod error;
pub mod hash;
pub mod ids;
pub mod layout;
pub mod metrics;
pub mod rng;
pub mod schema;
pub mod types;
pub mod waits;

pub use bitvec::BitVec;
pub use config::VECTOR_SIZE;
pub use error::{Result, VwError};
pub use ids::{BlockId, ColId, Lsn, Rid, Sid, TableId, TxnId};
pub use layout::{RangePartitionSpec, SortSpec, TableLayout};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricsRegistry};
pub use schema::{Field, Schema};
pub use types::{normalize_key_f64, DataType, Value};
pub use waits::{WaitClass, WaitSnapshot, WaitStats, WaitTimer, ALL_WAIT_CLASSES, WAIT_CLASSES};
