//! Declared physical table layout: sort order and range partitioning.
//!
//! Vertica's "C-Store 7 Years Later" retrospective credits most of its speed
//! to physical design — sorted, segmented projections. This module is the
//! declarative half of that idea for vectorwise-rs: a table may declare a
//! sort order (`CREATE TABLE … ORDER BY (cols)`) and a range partitioning
//! (`PARTITION BY RANGE(col) PARTITIONS n`). The storage layer keeps row
//! groups physically sorted on the declared key and places each range
//! partition on its own simulated disk; the planner consumes the declared
//! order to elide sorts and plan streaming merge joins, and prunes whole
//! partitions from range predicates.
//!
//! These types live in `vw-common` because sql (binder), storage, and core
//! all need them and the dependency graph is strictly bottom-up.

/// One column of a declared sort order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    /// Column index into the table schema.
    pub col: usize,
    /// Ascending (`true`) or descending.
    pub asc: bool,
    /// Whether NULLs sort before non-NULLs. The SQL default matches the
    /// engine's historical behaviour: NULLS FIRST when ascending, NULLS LAST
    /// when descending (i.e. NULLs are the smallest value).
    pub nulls_first: bool,
}

impl SortSpec {
    /// A sort spec with the default NULL placement for its direction.
    pub fn new(col: usize, asc: bool) -> SortSpec {
        SortSpec {
            col,
            asc,
            nulls_first: asc,
        }
    }
}

/// Range partitioning declaration: split on one column into `partitions`
/// buckets. Bounds are computed from the data at load/checkpoint time
/// (equal-count quantile split), not declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePartitionSpec {
    /// Column index into the table schema.
    pub col: usize,
    /// Number of partitions (≥ 1; 1 behaves like an unpartitioned table).
    pub partitions: usize,
}

/// The declared physical layout of one table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableLayout {
    /// Declared sort order (empty = insertion order).
    pub order: Vec<SortSpec>,
    /// Declared range partitioning (None = single storage extent).
    pub partition: Option<RangePartitionSpec>,
}

impl TableLayout {
    /// A sort-only layout (no partitioning).
    pub fn ordered(order: Vec<SortSpec>) -> TableLayout {
        TableLayout {
            order,
            partition: None,
        }
    }

    /// True if this layout requires no physical reorganization at all.
    pub fn is_trivial(&self) -> bool {
        self.order.is_empty() && self.partition_count() <= 1
    }

    /// Number of partitions (1 when unpartitioned).
    pub fn partition_count(&self) -> usize {
        self.partition.map_or(1, |p| p.partitions.max(1))
    }

    /// Does a scan of this table in physical group order deliver the full
    /// declared sort order globally? True when unpartitioned, or when the
    /// partition column is the leading ascending sort column (partitions are
    /// stored in ascending range order, so the global sequence stays sorted;
    /// NULLs land in partition 0, matching the NULLS FIRST default).
    pub fn delivers_declared_order(&self) -> bool {
        if self.order.is_empty() {
            return false;
        }
        match self.partition {
            None => true,
            Some(_) if self.partition_count() <= 1 => true, // single extent
            Some(p) => {
                let lead = self.order[0];
                p.col == lead.col && lead.asc && lead.nulls_first
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let l = TableLayout::default();
        assert!(l.is_trivial());
        assert_eq!(l.partition_count(), 1);
        assert!(!l.delivers_declared_order());
    }

    #[test]
    fn sort_spec_null_default_tracks_direction() {
        assert!(SortSpec::new(0, true).nulls_first);
        assert!(!SortSpec::new(0, false).nulls_first);
    }

    #[test]
    fn delivered_order_rules() {
        let ordered = TableLayout {
            order: vec![SortSpec::new(2, true)],
            partition: None,
        };
        assert!(ordered.delivers_declared_order());

        let aligned = TableLayout {
            order: vec![SortSpec::new(2, true)],
            partition: Some(RangePartitionSpec {
                col: 2,
                partitions: 4,
            }),
        };
        assert!(aligned.delivers_declared_order());

        let misaligned = TableLayout {
            order: vec![SortSpec::new(2, true)],
            partition: Some(RangePartitionSpec {
                col: 1,
                partitions: 4,
            }),
        };
        assert!(!misaligned.delivers_declared_order());

        let desc = TableLayout {
            order: vec![SortSpec::new(2, false)],
            partition: Some(RangePartitionSpec {
                col: 2,
                partitions: 4,
            }),
        };
        assert!(!desc.delivers_declared_order());
    }
}
