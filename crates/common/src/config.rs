//! Engine-wide tuning constants.
//!
//! The single most important knob in a vectorized engine is the vector size:
//! the number of tuples processed per primitive invocation. X100 found ~1K
//! tuples to be the sweet spot — large enough to amortize interpretation
//! overhead over a whole vector, small enough that all vectors touched by a
//! query pipeline stay resident in the CPU cache. The `vector_size` bench
//! (experiment E2) sweeps this knob and reproduces both cliffs.

/// Default number of tuples per vector.
pub const VECTOR_SIZE: usize = 1024;

/// Default number of values per column block on "disk" (storage granularity).
pub const BLOCK_VALUES: usize = 64 * 1024;

/// Default size in bytes we model for a physical disk block (compressed).
pub const BLOCK_BYTES: usize = 512 * 1024;

/// Default DecodeCache capacity (decoded-slice cache in `vw-bufman`).
pub const DECODE_CACHE_BYTES: usize = 32 << 20;

/// Parse a human-friendly byte size: a plain integer (bytes) or an integer
/// with a `K`/`M`/`G` suffix, optionally followed by `B` or `iB`
/// (case-insensitive). All suffixes are binary (powers of 1024): `16MiB`,
/// `16MB`, and `16m` all mean `16 * 1024 * 1024`.
pub fn parse_byte_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let digits_end = s
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(s.len(), |(i, _)| i);
    let n: usize = s[..digits_end].parse().ok()?;
    let unit = s[digits_end..].trim().to_ascii_lowercase();
    let shift = match unit.as_str() {
        "" | "b" => 0,
        "k" | "kb" | "kib" => 10,
        "m" | "mb" | "mib" => 20,
        "g" | "gb" | "gib" => 30,
        _ => return None,
    };
    n.checked_shl(shift)
}

/// Environment variable consulted by `EngineConfig::default()` for the
/// execution-memory budget (e.g. `VW_MEM_BUDGET=16MiB`). Lets the whole
/// test suite and the qph harness run memory-governed without code changes
/// (used by the low-memory CI job). `0` or `unbounded` mean no limit.
pub const MEM_BUDGET_ENV: &str = "VW_MEM_BUDGET";

/// Environment variable consulted for the DecodeCache capacity.
pub const DECODE_CACHE_ENV: &str = "VW_DECODE_CACHE";

/// Environment variable selecting the aggregation path
/// (`VW_AGG_PATH=generic` forces the generic hash table everywhere; the
/// generic-path CI leg uses this to keep both paths covered by the full
/// suite). Anything else — including unset — means automatic selection.
pub const AGG_PATH_ENV: &str = "VW_AGG_PATH";

/// Which aggregation implementation `compile` may pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggPath {
    /// Use the perfect-hash (direct-array) path when the key domain allows
    /// it, falling back to the generic hash table at runtime otherwise.
    #[default]
    Auto,
    /// Always use the generic hash table.
    Generic,
}

fn env_agg_path(var: &str) -> AggPath {
    match std::env::var(var) {
        Ok(v) if v.eq_ignore_ascii_case("generic") => AggPath::Generic,
        _ => AggPath::Auto,
    }
}

/// Environment variable giving tables created without an explicit
/// `PARTITION BY` clause a default range-partitioned layout with this many
/// partitions (`VW_PARTITIONS=4`; the partition column defaults to the
/// leading declared sort column, else column 0). The `partitioned` CI leg
/// uses this to exercise the multi-disk path on the whole suite. Unset,
/// `0`, or `1` mean no default partitioning.
pub const PARTITIONS_ENV: &str = "VW_PARTITIONS";

/// Default partition count from [`PARTITIONS_ENV`]; `None` when unset or ≤ 1.
pub fn env_default_partitions() -> Option<usize> {
    let v = std::env::var(PARTITIONS_ENV).ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) if n > 1 => Some(n),
        _ => None,
    }
}

/// Environment variable acting as the global adaptivity kill switch
/// (`VW_ADAPT=off` disables micro-adaptive predicate ordering,
/// history-corrected cardinalities, and the self-tuning aggregation-path
/// choice — the `adaptivity-off` CI leg uses this). Anything else —
/// including unset — leaves adaptivity on.
pub const ADAPT_ENV: &str = "VW_ADAPT";

fn env_adaptivity(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => {
            !(v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("0"))
        }
        _ => true,
    }
}

/// Environment variable acting as the structured-event-log kill switch
/// (`VW_LOG=off` disables event recording entirely, so the ring buffer is
/// never touched). Anything else — including unset — leaves it on.
pub const LOG_ENV: &str = "VW_LOG";

fn env_event_log(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => {
            !(v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("0"))
        }
        _ => true,
    }
}

/// Default capacity of the per-database query-history ring (`vw_queries`).
pub const QUERY_HISTORY_DEFAULT: usize = 128;

/// Upper bound accepted by `SET query_history = N` (keeps the ring bounded
/// even under adversarial settings).
pub const QUERY_HISTORY_MAX: usize = 65_536;

/// Parse a human-friendly duration into nanoseconds: a plain integer is
/// nanoseconds; `us`/`ms`/`s` suffixes scale (case-insensitive, optional
/// space). `SET log_min_duration = '5ms'` and `= 5000000` are equivalent.
pub fn parse_duration_ns(s: &str) -> Option<u64> {
    let s = s.trim();
    let digits_end = s
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(s.len(), |(i, _)| i);
    let n: u64 = s[..digits_end].parse().ok()?;
    let unit = s[digits_end..].trim().to_ascii_lowercase();
    let mult: u64 = match unit.as_str() {
        "" | "ns" => 1,
        "us" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        _ => return None,
    };
    n.checked_mul(mult)
}

fn env_byte_size(var: &str) -> Option<usize> {
    let v = std::env::var(var).ok()?;
    if v.eq_ignore_ascii_case("unbounded") || v.eq_ignore_ascii_case("none") {
        return None;
    }
    match parse_byte_size(&v) {
        Some(0) | None => None,
        some => some,
    }
}

/// Runtime-configurable engine options, threaded through executors.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Tuples per vector (per primitive call).
    pub vector_size: usize,
    /// Degree of parallelism the `parallelize` rewrite rule targets.
    pub parallelism: usize,
    /// Whether the null-decompose rewrite runs (kept on in production;
    /// switchable so the E8 bench can compare against naive NULL handling).
    pub rewrite_nulls: bool,
    /// Whether queries record a per-operator profile. On by default: with
    /// ~1K-tuple vectors the bookkeeping is one timestamp pair and a few
    /// counter adds per `next()` call, amortized to well under 1% of query
    /// time (the X100 argument for always-on profiling). `EXPLAIN ANALYZE`
    /// forces it on regardless.
    pub profiling: bool,
    /// Query-wide execution-memory budget in bytes; `None` = unbounded.
    /// Shared by all workers of one query: stateful operators (hash join
    /// build, aggregation table, sort buffer) reserve against it and spill
    /// to disk under pressure. Defaults from `VW_MEM_BUDGET` if set.
    pub mem_budget_bytes: Option<usize>,
    /// DecodeCache capacity in bytes (decoded-slice cache, per Database).
    /// Defaults to [`DECODE_CACHE_BYTES`], overridable via `VW_DECODE_CACHE`.
    pub decode_cache_bytes: usize,
    /// Aggregation path selection; defaults from `VW_AGG_PATH` if set.
    pub agg_path: AggPath,
    /// Master switch for runtime adaptivity (micro-adaptive predicate
    /// ordering, history-corrected cardinality estimates, self-tuning
    /// aggregation paths). Every query snapshots this at start, so a
    /// `SET adaptivity` mid-stream never changes a running query's
    /// behaviour. Defaults on; `VW_ADAPT=off` disables.
    pub adaptivity: bool,
    /// Slow-query threshold in nanoseconds for the structured event log:
    /// queries whose wall time meets or exceeds it emit a `slow_query`
    /// event. `None` (default) disables slow-query logging. Set via
    /// `SET log_min_duration = <ns | '5ms' | 0 to disable>`.
    pub log_min_duration_ns: Option<u64>,
    /// Capacity of the query-history ring backing `vw_queries`. Evictions
    /// are counted in the `history_evicted_total` metric. Set via
    /// `SET query_history = N` (clamped to [`QUERY_HISTORY_MAX`]).
    pub query_history: usize,
    /// Master switch for the structured event log. Defaults on (recording
    /// is a handful of events per *query*, never per vector); `VW_LOG=off`
    /// disables it so the ring is never touched.
    pub event_log: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vector_size: VECTOR_SIZE,
            parallelism: 1,
            rewrite_nulls: true,
            profiling: true,
            mem_budget_bytes: env_byte_size(MEM_BUDGET_ENV),
            decode_cache_bytes: env_byte_size(DECODE_CACHE_ENV).unwrap_or(DECODE_CACHE_BYTES),
            agg_path: env_agg_path(AGG_PATH_ENV),
            adaptivity: env_adaptivity(ADAPT_ENV),
            log_min_duration_ns: None,
            query_history: QUERY_HISTORY_DEFAULT,
            event_log: env_event_log(LOG_ENV),
        }
    }
}

impl EngineConfig {
    /// Config with a specific vector size (used by the vector-size sweep).
    pub fn with_vector_size(vector_size: usize) -> Self {
        EngineConfig {
            vector_size,
            ..Default::default()
        }
    }

    /// Config with a specific degree of parallelism.
    pub fn with_parallelism(parallelism: usize) -> Self {
        EngineConfig {
            parallelism,
            ..Default::default()
        }
    }

    /// Config with a specific execution-memory budget (`None` = unbounded).
    pub fn with_mem_budget(mem_budget_bytes: Option<usize>) -> Self {
        EngineConfig {
            mem_budget_bytes,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, VECTOR_SIZE);
        assert_eq!(c.parallelism, 1);
        assert!(c.rewrite_nulls);
        assert!(c.profiling);
        assert!(VECTOR_SIZE.is_power_of_two());
        assert!(BLOCK_VALUES.is_multiple_of(VECTOR_SIZE));
    }

    #[test]
    fn builders() {
        assert_eq!(EngineConfig::with_vector_size(16).vector_size, 16);
        assert_eq!(EngineConfig::with_parallelism(4).parallelism, 4);
        assert_eq!(
            EngineConfig::with_mem_budget(Some(1 << 20)).mem_budget_bytes,
            Some(1 << 20)
        );
    }

    #[test]
    fn byte_size_parsing() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("4096"), Some(4096));
        assert_eq!(parse_byte_size("16MiB"), Some(16 << 20));
        assert_eq!(parse_byte_size("16mb"), Some(16 << 20));
        assert_eq!(parse_byte_size(" 2 GiB "), Some(2 << 30));
        assert_eq!(parse_byte_size("512k"), Some(512 << 10));
        assert_eq!(parse_byte_size("1B"), Some(1));
        assert_eq!(parse_byte_size("x"), None);
        assert_eq!(parse_byte_size("16XB"), None);
        assert_eq!(parse_byte_size(""), None);
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration_ns("0"), Some(0));
        assert_eq!(parse_duration_ns("1"), Some(1));
        assert_eq!(parse_duration_ns("5ms"), Some(5_000_000));
        assert_eq!(parse_duration_ns("10 us"), Some(10_000));
        assert_eq!(parse_duration_ns("2s"), Some(2_000_000_000));
        assert_eq!(parse_duration_ns("7ns"), Some(7));
        assert_eq!(parse_duration_ns("x"), None);
        assert_eq!(parse_duration_ns("5m"), None);
        assert_eq!(parse_duration_ns(""), None);
    }

    #[test]
    fn event_log_tracks_env() {
        // CI legs may run the whole suite with VW_LOG=off, so assert
        // consistency with the environment rather than a fixed value.
        let expected = match std::env::var(LOG_ENV) {
            Ok(v) => {
                !(v.eq_ignore_ascii_case("off")
                    || v.eq_ignore_ascii_case("false")
                    || v.eq_ignore_ascii_case("0"))
            }
            _ => true,
        };
        assert_eq!(EngineConfig::default().event_log, expected);
        assert_eq!(EngineConfig::default().query_history, QUERY_HISTORY_DEFAULT);
        assert_eq!(EngineConfig::default().log_min_duration_ns, None);
    }

    #[test]
    fn adaptivity_tracks_env() {
        // The adaptivity-off CI job runs the whole suite with VW_ADAPT=off,
        // so assert consistency with the environment rather than a fixed
        // value.
        let expected = match std::env::var(ADAPT_ENV) {
            Ok(v) => {
                !(v.eq_ignore_ascii_case("off")
                    || v.eq_ignore_ascii_case("false")
                    || v.eq_ignore_ascii_case("0"))
            }
            _ => true,
        };
        assert_eq!(EngineConfig::default().adaptivity, expected);
    }

    #[test]
    fn mem_budget_tracks_env() {
        // The low-memory CI job runs the whole suite with VW_MEM_BUDGET set,
        // so assert consistency with the environment rather than a fixed
        // value.
        let expected = std::env::var(MEM_BUDGET_ENV)
            .ok()
            .filter(|v| !v.eq_ignore_ascii_case("unbounded") && !v.eq_ignore_ascii_case("none"))
            .and_then(|v| parse_byte_size(&v))
            .filter(|&n| n > 0);
        assert_eq!(EngineConfig::default().mem_budget_bytes, expected);
    }
}
