//! Engine-wide tuning constants.
//!
//! The single most important knob in a vectorized engine is the vector size:
//! the number of tuples processed per primitive invocation. X100 found ~1K
//! tuples to be the sweet spot — large enough to amortize interpretation
//! overhead over a whole vector, small enough that all vectors touched by a
//! query pipeline stay resident in the CPU cache. The `vector_size` bench
//! (experiment E2) sweeps this knob and reproduces both cliffs.

/// Default number of tuples per vector.
pub const VECTOR_SIZE: usize = 1024;

/// Default number of values per column block on "disk" (storage granularity).
pub const BLOCK_VALUES: usize = 64 * 1024;

/// Default size in bytes we model for a physical disk block (compressed).
pub const BLOCK_BYTES: usize = 512 * 1024;

/// Runtime-configurable engine options, threaded through executors.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Tuples per vector (per primitive call).
    pub vector_size: usize,
    /// Degree of parallelism the `parallelize` rewrite rule targets.
    pub parallelism: usize,
    /// Whether the null-decompose rewrite runs (kept on in production;
    /// switchable so the E8 bench can compare against naive NULL handling).
    pub rewrite_nulls: bool,
    /// Whether queries record a per-operator profile. On by default: with
    /// ~1K-tuple vectors the bookkeeping is one timestamp pair and a few
    /// counter adds per `next()` call, amortized to well under 1% of query
    /// time (the X100 argument for always-on profiling). `EXPLAIN ANALYZE`
    /// forces it on regardless.
    pub profiling: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vector_size: VECTOR_SIZE,
            parallelism: 1,
            rewrite_nulls: true,
            profiling: true,
        }
    }
}

impl EngineConfig {
    /// Config with a specific vector size (used by the vector-size sweep).
    pub fn with_vector_size(vector_size: usize) -> Self {
        EngineConfig {
            vector_size,
            ..Default::default()
        }
    }

    /// Config with a specific degree of parallelism.
    pub fn with_parallelism(parallelism: usize) -> Self {
        EngineConfig {
            parallelism,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, VECTOR_SIZE);
        assert_eq!(c.parallelism, 1);
        assert!(c.rewrite_nulls);
        assert!(c.profiling);
        assert!(VECTOR_SIZE.is_power_of_two());
        assert!(BLOCK_VALUES.is_multiple_of(VECTOR_SIZE));
    }

    #[test]
    fn builders() {
        assert_eq!(EngineConfig::with_vector_size(16).vector_size, 16);
        assert_eq!(EngineConfig::with_parallelism(4).parallelism, 4);
    }
}
