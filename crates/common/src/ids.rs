//! Strongly-typed identifiers.
//!
//! Positions deserve particular care in a system built on Positional Delta
//! Trees, where two coordinate systems coexist:
//!
//! * [`Sid`] — *stable* ID: a tuple's position in the last checkpointed
//!   (stable) table image on disk. Deletions/insertions recorded in a PDT do
//!   not renumber SIDs.
//! * [`Rid`] — *row* ID: a tuple's position in the current logical table
//!   image, i.e. after merging all PDT layers. This is what queries see.
//!
//! Mixing them up is the classic PDT bug; newtypes make it a type error.

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            pub const ZERO: $name = $name(0);

            #[inline]
            pub fn new(v: u64) -> Self {
                $name(v)
            }

            #[inline]
            pub fn as_u64(self) -> u64 {
                self.0
            }

            #[inline]
            pub fn as_usize(self) -> usize {
                self.0 as usize
            }

            /// Next sequential id.
            #[inline]
            pub fn next(self) -> Self {
                $name(self.0 + 1)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// Identifies a table in the catalog.
    TableId
);
id_newtype!(
    /// Identifies a column within a table.
    ColId
);
id_newtype!(
    /// Identifies a transaction; monotonically increasing.
    TxnId
);
id_newtype!(
    /// Log sequence number of a WAL record.
    Lsn
);
id_newtype!(
    /// Identifies a storage block (one column chunk) on the simulated disk.
    BlockId
);
id_newtype!(
    /// Stable ID: position in the stable (checkpointed) table image.
    Sid
);
id_newtype!(
    /// Row ID: position in the current logical table image (stable + PDTs).
    Rid
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct_types_and_ordered() {
        let a = Sid::new(5);
        let b = Sid::new(7);
        assert!(a < b);
        assert_eq!(a.next(), Sid::new(6));
        assert_eq!(a.as_usize(), 5);
        assert_eq!(format!("{}", a), "Sid(5)");
        // Compile-time check that Sid and Rid are different types:
        fn takes_rid(_r: Rid) {}
        takes_rid(Rid::from(5));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(TxnId::default(), TxnId::ZERO);
        assert_eq!(Lsn::default().as_u64(), 0);
    }
}
