//! A compact bit vector.
//!
//! Used for NULL indicator columns in storage (one bit per value on disk; the
//! execution engine widens them to byte vectors for branch-free kernels) and
//! for visibility masks in the buffer manager.

/// Growable bit vector backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    pub fn new() -> Self {
        BitVec::default()
    }

    /// A bit vector of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let mut words = vec![if value { !0u64 } else { 0 }; nwords];
        // Clear the tail bits beyond `len` so count_ones stays exact.
        if value && !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        BitVec { words, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, idx: usize, value: bool) {
        debug_assert!(idx < self.len);
        let w = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let idx = self.len - 1;
            self.words[idx / 64] |= 1u64 << (idx % 64);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterator over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterator over the indexes of set bits.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place OR with another bit vector of identical length.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Serialize to little-endian bytes (used by storage and the WAL).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`to_bytes`] output. Returns bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Option<(BitVec, usize)> {
        if bytes.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(bytes[0..8].try_into().ok()?) as usize;
        let nwords = len.div_ceil(64);
        let need = 8 + nwords * 8;
        if bytes.len() < need {
            return None;
        }
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let s = 8 + i * 8;
            words.push(u64::from_le_bytes(bytes[s..s + 8].try_into().ok()?));
        }
        Some((BitVec { words, len }, need))
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

/// Iterator over indexes of set bits, word at a time.
pub struct OnesIter<'a> {
    bv: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.word_idx * 64 + bit;
                return if idx < self.bv.len { Some(idx) } else { None };
            }
            self.word_idx += 1;
            if self.word_idx >= self.bv.words.len() {
                return None;
            }
            self.current = self.bv.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {}", i);
        }
        bv.set(1, true);
        assert!(bv.get(1));
        bv.set(0, false);
        assert!(!bv.get(0));
    }

    #[test]
    fn filled_respects_tail() {
        let bv = BitVec::filled(70, true);
        assert_eq!(bv.len(), 70);
        assert_eq!(bv.count_ones(), 70);
        let bv0 = BitVec::filled(70, false);
        assert_eq!(bv0.count_ones(), 0);
        assert!(!bv0.any());
        assert!(bv.any());
        // exact multiple of 64
        let bv64 = BitVec::filled(64, true);
        assert_eq!(bv64.count_ones(), 64);
        // empty
        assert_eq!(BitVec::filled(0, true).count_ones(), 0);
    }

    #[test]
    fn ones_iterator() {
        let bv: BitVec = (0..300).map(|i| i % 67 == 0).collect();
        let ones: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(ones, vec![0, 67, 134, 201, 268]);
        let none = BitVec::filled(100, false);
        assert_eq!(none.iter_ones().count(), 0);
        let all = BitVec::filled(130, true);
        assert_eq!(all.iter_ones().count(), 130);
        assert_eq!(all.iter_ones().last(), Some(129));
    }

    #[test]
    fn union() {
        let mut a: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        let b: BitVec = (0..100).map(|i| i % 3 == 0).collect();
        a.union_with(&b);
        for i in 0..100 {
            assert_eq!(a.get(i), i % 2 == 0 || i % 3 == 0);
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let bv: BitVec = (0..157).map(|i| (i * 7) % 13 < 4).collect();
        let bytes = bv.to_bytes();
        let (back, used) = BitVec::from_bytes(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, bv);
        // Truncated input fails cleanly.
        assert!(BitVec::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(BitVec::from_bytes(&[]).is_none());
    }

    #[test]
    fn iter_matches_get() {
        let bv: BitVec = (0..77).map(|i| i % 5 == 1).collect();
        let via_iter: Vec<bool> = bv.iter().collect();
        let via_get: Vec<bool> = (0..77).map(|i| bv.get(i)).collect();
        assert_eq!(via_iter, via_get);
    }
}
