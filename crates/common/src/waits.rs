//! Wait-state attribution: fixed wait classes and lock-free accumulators.
//!
//! The Vectorwise paper's operational lesson is that under concurrent load a
//! slow query and a fast query that *waited* look identical from wall time
//! alone. This module gives every profiled plan node a [`WaitStats`] cell:
//! the choke points where an operator can block (block I/O through the ABM,
//! decode-cache misses, hash-join build waits, spill I/O, morsel-queue
//! starvation) record the blocked nanoseconds into the class-indexed atomic
//! arrays. Subtracting total wait from `operator_next_ns` yields compute
//! time; `vw_waits` rolls the classes up per query.
//!
//! Recording is two relaxed atomic adds per *blocking event* — not per
//! vector — so the attribution machinery costs nothing on the fast path and
//! is safe to leave always-on alongside profiling.

use std::sync::atomic::{AtomicU64, Ordering};

/// The fixed set of wait classes. Indexes into [`WaitStats`] arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum WaitClass {
    /// Blocked reading a column block from (simulated) disk via the ABM.
    BlockIo = 0,
    /// Decoding a compressed slice on a DecodeCache miss.
    Decode = 1,
    /// Waiting for another worker to finish a shared hash-join build.
    BuildWait = 2,
    /// Reading spilled batches back from the spill disk.
    SpillRead = 3,
    /// Writing batches out to the spill disk under memory pressure.
    SpillWrite = 4,
    /// Morsel-queue claim time (starvation shows up as growth here).
    Morsel = 5,
    /// Blocked in the admission controller before execution began.
    Admission = 6,
}

/// Number of wait classes (array size for [`WaitStats`]).
pub const WAIT_CLASSES: usize = 7;

/// All wait classes in index order.
pub const ALL_WAIT_CLASSES: [WaitClass; WAIT_CLASSES] = [
    WaitClass::BlockIo,
    WaitClass::Decode,
    WaitClass::BuildWait,
    WaitClass::SpillRead,
    WaitClass::SpillWrite,
    WaitClass::Morsel,
    WaitClass::Admission,
];

impl WaitClass {
    /// Stable lower-case name, used as the `wait_class` column of `vw_waits`
    /// and as the suffix of per-operator `wait_<class>_ns` profile extras.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::BlockIo => "block_io",
            WaitClass::Decode => "decode",
            WaitClass::BuildWait => "build_wait",
            WaitClass::SpillRead => "spill_read",
            WaitClass::SpillWrite => "spill_write",
            WaitClass::Morsel => "morsel",
            WaitClass::Admission => "admission",
        }
    }

    /// `'static` extras key (`wait_<class>_ns`) for per-operator profiles.
    pub fn extra_key(self) -> &'static str {
        match self {
            WaitClass::BlockIo => "wait_block_io_ns",
            WaitClass::Decode => "wait_decode_ns",
            WaitClass::BuildWait => "wait_build_ns",
            WaitClass::SpillRead => "wait_spill_read_ns",
            WaitClass::SpillWrite => "wait_spill_write_ns",
            WaitClass::Morsel => "wait_morsel_ns",
            WaitClass::Admission => "wait_admission_ns",
        }
    }
}

/// Per-node (or per-query) wait accumulator: blocked nanoseconds and event
/// counts per wait class. Shared across Exchange workers of one plan node
/// via `Arc`, merged with relaxed adds exactly like the profile counters.
#[derive(Debug, Default)]
pub struct WaitStats {
    ns: [AtomicU64; WAIT_CLASSES],
    count: [AtomicU64; WAIT_CLASSES],
}

impl WaitStats {
    /// Fresh all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one blocking event of `ns` nanoseconds in `class`.
    pub fn record(&self, class: WaitClass, ns: u64) {
        self.ns[class as usize].fetch_add(ns, Ordering::Relaxed);
        self.count[class as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Total blocked nanoseconds in `class`.
    pub fn ns(&self, class: WaitClass) -> u64 {
        self.ns[class as usize].load(Ordering::Relaxed)
    }

    /// Number of blocking events in `class`.
    pub fn count(&self, class: WaitClass) -> u64 {
        self.count[class as usize].load(Ordering::Relaxed)
    }

    /// Sum of blocked nanoseconds across all classes.
    pub fn total_ns(&self) -> u64 {
        ALL_WAIT_CLASSES.iter().map(|&c| self.ns(c)).sum()
    }

    /// Fold another accumulator into this one (used when rolling per-node
    /// waits up to the query level).
    pub fn merge_from(&self, other: &WaitStats) {
        for c in ALL_WAIT_CLASSES {
            let i = c as usize;
            self.ns[i].fetch_add(other.ns[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.count[i].fetch_add(other.count[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Immutable snapshot of all classes (for storing in query history).
    pub fn snapshot(&self) -> WaitSnapshot {
        let mut ns = [0u64; WAIT_CLASSES];
        let mut count = [0u64; WAIT_CLASSES];
        for c in ALL_WAIT_CLASSES {
            let i = c as usize;
            ns[i] = self.ns[i].load(Ordering::Relaxed);
            count[i] = self.count[i].load(Ordering::Relaxed);
        }
        WaitSnapshot { ns, count }
    }
}

/// Plain-data snapshot of a [`WaitStats`], stored per query in history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitSnapshot {
    /// Blocked nanoseconds, indexed by `WaitClass as usize`.
    pub ns: [u64; WAIT_CLASSES],
    /// Blocking event counts, indexed by `WaitClass as usize`.
    pub count: [u64; WAIT_CLASSES],
}

impl WaitSnapshot {
    /// Blocked nanoseconds in `class`.
    pub fn ns(&self, class: WaitClass) -> u64 {
        self.ns[class as usize]
    }

    /// Blocking event count in `class`.
    pub fn count(&self, class: WaitClass) -> u64 {
        self.count[class as usize]
    }

    /// Sum of blocked nanoseconds across all classes.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Add a single event (used to fold query-level waits like admission
    /// into a snapshot captured from operator-level stats).
    pub fn add(&mut self, class: WaitClass, ns: u64, count: u64) {
        self.ns[class as usize] += ns;
        self.count[class as usize] += count;
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &WaitSnapshot) {
        for i in 0..WAIT_CLASSES {
            self.ns[i] += other.ns[i];
            self.count[i] += other.count[i];
        }
    }
}

/// Times a blocking region into a [`WaitStats`] on drop. Constructing one
/// takes a single `Instant::now()`; the choke points are per-block /
/// per-build events, never per-tuple.
pub struct WaitTimer<'a> {
    stats: &'a WaitStats,
    class: WaitClass,
    start: std::time::Instant,
}

impl<'a> WaitTimer<'a> {
    /// Start timing a blocking region of `class` against `stats`.
    pub fn start(stats: &'a WaitStats, class: WaitClass) -> Self {
        WaitTimer {
            stats,
            class,
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for WaitTimer<'_> {
    fn drop(&mut self) {
        self.stats
            .record(self.class, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let w = WaitStats::new();
        w.record(WaitClass::BlockIo, 100);
        w.record(WaitClass::BlockIo, 50);
        w.record(WaitClass::Decode, 7);
        assert_eq!(w.ns(WaitClass::BlockIo), 150);
        assert_eq!(w.count(WaitClass::BlockIo), 2);
        assert_eq!(w.total_ns(), 157);
        let s = w.snapshot();
        assert_eq!(s.ns(WaitClass::BlockIo), 150);
        assert_eq!(s.count(WaitClass::Decode), 1);
        assert_eq!(s.total_ns(), 157);
    }

    #[test]
    fn merge_accumulates() {
        let a = WaitStats::new();
        let b = WaitStats::new();
        a.record(WaitClass::SpillWrite, 10);
        b.record(WaitClass::SpillWrite, 5);
        b.record(WaitClass::Morsel, 3);
        a.merge_from(&b);
        assert_eq!(a.ns(WaitClass::SpillWrite), 15);
        assert_eq!(a.count(WaitClass::SpillWrite), 2);
        assert_eq!(a.ns(WaitClass::Morsel), 3);

        let mut s = a.snapshot();
        s.add(WaitClass::Admission, 1000, 1);
        assert_eq!(s.ns(WaitClass::Admission), 1000);
        let mut t = WaitSnapshot::default();
        t.merge(&s);
        assert_eq!(t.total_ns(), s.total_ns());
    }

    #[test]
    fn timer_records_on_drop() {
        let w = WaitStats::new();
        {
            let _t = WaitTimer::start(&w, WaitClass::BuildWait);
        }
        assert_eq!(w.count(WaitClass::BuildWait), 1);
    }

    #[test]
    fn names_are_stable() {
        for c in ALL_WAIT_CLASSES {
            assert!(c.extra_key().starts_with("wait_"));
            assert!(c.extra_key().ends_with("_ns"));
        }
        assert_eq!(WaitClass::BlockIo.name(), "block_io");
        assert_eq!(WaitClass::Admission.name(), "admission");
    }
}
