//! Unified error type for all vectorwise crates.

use std::fmt;

/// The error type shared by every layer of the system.
///
/// Lower layers construct the variant closest to their domain; upper layers
/// pass errors through unchanged so a failure deep in storage surfaces to the
/// SQL user with its original context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VwError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// Name resolution / type checking of a query failed.
    Bind(String),
    /// A plan was structurally invalid for the executor given to it.
    Plan(String),
    /// A runtime failure during query execution (overflow, bad cast, ...).
    Exec(String),
    /// Storage-layer failure (corrupt block, unknown column, ...).
    Storage(String),
    /// Transaction aborted due to a write-write conflict (optimistic CC).
    TxnConflict(String),
    /// Transaction machinery failure other than a conflict.
    Txn(String),
    /// Write-ahead-log corruption or I/O failure.
    Wal(String),
    /// Catalog-level failure (duplicate table, unknown table, ...).
    Catalog(String),
    /// An operation was given arguments that violate its contract.
    Invalid(String),
    /// Feature is recognized but not implemented.
    Unsupported(String),
    /// Underlying OS I/O failure, stringified to keep the type `Clone + Eq`.
    Io(String),
}

impl VwError {
    /// Short machine-readable category tag, used in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            VwError::Parse(_) => "parse",
            VwError::Bind(_) => "bind",
            VwError::Plan(_) => "plan",
            VwError::Exec(_) => "exec",
            VwError::Storage(_) => "storage",
            VwError::TxnConflict(_) => "txn_conflict",
            VwError::Txn(_) => "txn",
            VwError::Wal(_) => "wal",
            VwError::Catalog(_) => "catalog",
            VwError::Invalid(_) => "invalid",
            VwError::Unsupported(_) => "unsupported",
            VwError::Io(_) => "io",
        }
    }

    fn message(&self) -> &str {
        match self {
            VwError::Parse(m)
            | VwError::Bind(m)
            | VwError::Plan(m)
            | VwError::Exec(m)
            | VwError::Storage(m)
            | VwError::TxnConflict(m)
            | VwError::Txn(m)
            | VwError::Wal(m)
            | VwError::Catalog(m)
            | VwError::Invalid(m)
            | VwError::Unsupported(m)
            | VwError::Io(m) => m,
        }
    }
}

impl fmt::Display for VwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for VwError {}

impl From<std::io::Error> for VwError {
    fn from(e: std::io::Error) -> Self {
        VwError::Io(e.to_string())
    }
}

/// Result alias used across all vectorwise crates.
pub type Result<T> = std::result::Result<T, VwError>;

/// Convenience constructors: `exec_err!("bad {}", x)` etc.
#[macro_export]
macro_rules! exec_err {
    ($($arg:tt)*) => { $crate::error::VwError::Exec(format!($($arg)*)) };
}

#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => { $crate::error::VwError::Plan(format!($($arg)*)) };
}

#[macro_export]
macro_rules! bind_err {
    ($($arg:tt)*) => { $crate::error::VwError::Bind(format!($($arg)*)) };
}

#[macro_export]
macro_rules! storage_err {
    ($($arg:tt)*) => { $crate::error::VwError::Storage(format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = VwError::Exec("division by zero".into());
        assert_eq!(e.to_string(), "exec: division by zero");
        assert_eq!(e.kind(), "exec");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: VwError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn macros_format() {
        let e = exec_err!("bad value {}", 42);
        assert_eq!(e, VwError::Exec("bad value 42".into()));
        let e = plan_err!("no column {}", "x");
        assert_eq!(e.kind(), "plan");
        let e = bind_err!("unknown table");
        assert_eq!(e.kind(), "bind");
        let e = storage_err!("corrupt block {}", 7);
        assert_eq!(e.kind(), "storage");
    }

    #[test]
    fn every_variant_has_distinct_kind() {
        let variants = [
            VwError::Parse(String::new()),
            VwError::Bind(String::new()),
            VwError::Plan(String::new()),
            VwError::Exec(String::new()),
            VwError::Storage(String::new()),
            VwError::TxnConflict(String::new()),
            VwError::Txn(String::new()),
            VwError::Wal(String::new()),
            VwError::Catalog(String::new()),
            VwError::Invalid(String::new()),
            VwError::Unsupported(String::new()),
            VwError::Io(String::new()),
        ];
        let kinds: std::collections::HashSet<_> = variants.iter().map(|v| v.kind()).collect();
        assert_eq!(kinds.len(), variants.len());
    }
}
