//! Relational schemas: ordered, named, typed, nullable-flagged fields.

use crate::error::{Result, VwError};
use crate::types::DataType;
use std::fmt;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of fields. Lookup is by exact name; qualified names
/// (`t.col`) are resolved by the binder before schemas are built.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the column named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Like [`index_of`] but returns a bind error naming the column.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            VwError::Bind(format!(
                "column '{}' not found (have: {})",
                name,
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Schema of a projection of this schema (by column indexes).
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema {
            fields: indexes.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Concatenation of two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema { fields }
    }

    /// Append a field, returning its index.
    pub fn push(&mut self, field: Field) -> usize {
        self.fields.push(field);
        self.fields.len() - 1
    }

    /// Validate that all names are unique (catalog-level invariant).
    pub fn check_unique_names(&self) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for f in &self.fields {
            if !seen.insert(f.name.as_str()) {
                return Err(VwError::Catalog(format!("duplicate column '{}'", f.name)));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fd.name, fd.ty)?;
            if fd.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<T: IntoIterator<Item = Field>>(iter: T) -> Self {
        Schema {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::I64),
            Field::nullable("name", DataType::Str),
            Field::new("price", DataType::F64),
        ])
    }

    #[test]
    fn lookup_and_resolve() {
        let s = sample();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.resolve("price").unwrap(), 2);
        let err = s.resolve("nope").unwrap_err();
        assert_eq!(err.kind(), "bind");
        assert!(err.to_string().contains("id, name, price"));
    }

    #[test]
    fn project_and_join() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.field(0).name, "price");
        assert_eq!(p.field(1).name, "id");
        let j = s.join(&p);
        assert_eq!(j.len(), 5);
        assert_eq!(j.field(4).name, "id");
    }

    #[test]
    fn unique_names() {
        let s = sample();
        assert!(s.check_unique_names().is_ok());
        let mut dup = sample();
        dup.push(Field::new("id", DataType::I32));
        assert_eq!(dup.check_unique_names().unwrap_err().kind(), "catalog");
    }

    #[test]
    fn display() {
        assert_eq!(
            sample().to_string(),
            "(id BIGINT, name VARCHAR NULL, price DOUBLE)"
        );
    }
}
