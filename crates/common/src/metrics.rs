//! Engine-wide metrics registry.
//!
//! Every layer of the engine (storage, buffer manager, execution core)
//! registers its telemetry here so that one snapshot answers "what has this
//! database been doing?" across queries and workers. Three direct instrument
//! kinds cover the hot paths:
//!
//! * [`Counter`] — monotonically increasing `u64`, one relaxed atomic add.
//! * [`Gauge`] — last-write-wins signed value (resident bytes, budgets).
//! * [`Histogram`] — fixed-bucket latency/size distribution. Buckets, sum and
//!   count are plain atomics shared by every thread recording into the
//!   instrument, so "merging across Exchange workers" is not a separate step:
//!   at any dop the workers add into the same cells and a snapshot taken
//!   afterwards is exactly the single-threaded recording of the same events.
//!
//! Subsystems that already keep their own atomic stats structs (SimDisk,
//! decode cache, ABM) do not pay a second store per event; they register a
//! *polled* gauge — a closure evaluated at snapshot time — so exposing them
//! here costs nothing on the hot path.
//!
//! Instruments live in labeled families: `(name, label)` identifies one
//! instrument; the registry hands out `Arc`s so callers cache the pointer and
//! never touch the registry lock while executing. Snapshots are sorted by
//! `(name, label)` which keeps `vw_metrics` output deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter. Cheap enough for per-query (not per-tuple) paths.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (peak tracking).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default bucket upper bounds for latency histograms, in nanoseconds:
/// 1µs .. 10s, roughly 4 buckets per decade, plus the implicit +inf bucket.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Fixed-bucket histogram. All cells are atomics, so any number of threads
/// record concurrently and the result is identical to a serial recording of
/// the same events (addition commutes); there is no per-worker shard to merge.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing. Values above the last
    /// bound land in the overflow bucket `counts[bounds.len()]`.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a histogram's cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    /// `counts[i]` pairs with `bounds[i]`; the final entry is the overflow
    /// bucket for values above every bound.
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket containing the target rank. Derived entirely from
    /// the snapshot, so it costs nothing on the recording path; because the
    /// buckets are fixed and the cells merge by addition, the estimate is
    /// identical at any dop. Empty histograms return 0.0; ranks landing in
    /// the overflow bucket return the last finite bound (the estimate is
    /// clamped — we cannot interpolate toward +inf).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum;
            cum += n;
            if (cum as f64) >= rank {
                let hi = match self.bounds.get(i) {
                    Some(&b) => b as f64,
                    // Overflow bucket: clamp to the last finite bound.
                    None => return *self.bounds.last().unwrap() as f64,
                };
                let lo = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let into = (rank - prev as f64) / n as f64;
                return lo + (hi - lo) * into.clamp(0.0, 1.0);
            }
        }
        *self.bounds.last().unwrap() as f64
    }
}

/// One row of a registry snapshot; histograms expand into `_count`, `_sum`
/// and per-bucket samples so the whole registry flattens into a relation.
#[derive(Debug, Clone)]
pub struct MetricSample {
    pub name: String,
    pub label: String,
    pub kind: &'static str,
    pub value: f64,
}

type PolledFn = Box<dyn Fn() -> f64 + Send + Sync>;

struct Polled {
    name: String,
    label: String,
    f: PolledFn,
}

/// Process-wide (per-`Database`) metrics registry.
///
/// Lookup takes a lock; recording does not. Callers resolve instruments once
/// (at construction / compile time) and hold the `Arc`.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<(String, String), Arc<Counter>>>,
    gauges: Mutex<BTreeMap<(String, String), Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<(String, String), Arc<Histogram>>>,
    polled: Mutex<Vec<Polled>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `(name, label)`. Use `label = ""` for
    /// unlabeled instruments.
    pub fn counter(&self, name: &str, label: &str) -> Arc<Counter> {
        lock(&self.counters)
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str, label: &str) -> Arc<Gauge> {
        lock(&self.gauges)
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// Get or create a histogram. The bucket bounds of the first registration
    /// win; later callers share the same instrument.
    pub fn histogram(&self, name: &str, label: &str, bounds: &[u64]) -> Arc<Histogram> {
        lock(&self.histograms)
            .entry((name.to_string(), label.to_string()))
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Register a gauge whose value is computed at snapshot time. This is how
    /// subsystems with their own atomic stats (SimDisk, caches) are exposed
    /// without a second store on their hot paths.
    pub fn register_polled(
        &self,
        name: &str,
        label: &str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        lock(&self.polled).push(Polled {
            name: name.to_string(),
            label: label.to_string(),
            f: Box::new(f),
        });
    }

    /// Flatten every instrument into samples, sorted by `(name, label, kind)`
    /// so output is deterministic across runs.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for ((name, label), c) in lock(&self.counters).iter() {
            out.push(MetricSample {
                name: name.clone(),
                label: label.clone(),
                kind: "counter",
                value: c.get() as f64,
            });
        }
        for ((name, label), g) in lock(&self.gauges).iter() {
            out.push(MetricSample {
                name: name.clone(),
                label: label.clone(),
                kind: "gauge",
                value: g.get() as f64,
            });
        }
        for ((name, label), h) in lock(&self.histograms).iter() {
            let snap = h.snapshot();
            out.push(MetricSample {
                name: format!("{name}_count"),
                label: label.clone(),
                kind: "histogram",
                value: snap.count as f64,
            });
            out.push(MetricSample {
                name: format!("{name}_sum"),
                label: label.clone(),
                kind: "histogram",
                value: snap.sum as f64,
            });
            for (suffix, q) in [("_p50", 0.50), ("_p95", 0.95), ("_p99", 0.99)] {
                out.push(MetricSample {
                    name: format!("{name}{suffix}"),
                    label: label.clone(),
                    kind: "histogram",
                    value: snap.percentile(q),
                });
            }
            for (i, &n) in snap.counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let le = snap
                    .bounds
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "inf".to_string());
                let bucket_label = if label.is_empty() {
                    format!("le={le}")
                } else {
                    format!("{label},le={le}")
                };
                out.push(MetricSample {
                    name: format!("{name}_bucket"),
                    label: bucket_label,
                    kind: "histogram",
                    value: n as f64,
                });
            }
        }
        for p in lock(&self.polled).iter() {
            out.push(MetricSample {
                name: p.name.clone(),
                label: p.label.clone(),
                kind: "gauge",
                value: (p.f)(),
            });
        }
        out.sort_by(|a, b| (&a.name, &a.label, a.kind).cmp(&(&b.name, &b.label, b.kind)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("queries_total", "");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, label) resolves to the same instrument.
        assert_eq!(reg.counter("queries_total", "").get(), 5);

        let g = reg.gauge("mem_peak_bytes", "");
        g.set(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
        g.set_max(20);
        assert_eq!(g.get(), 20);
    }

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.record(5); // bucket 0 (<=10)
        h.record(10); // bucket 0 (inclusive bound)
        h.record(11); // bucket 1
        h.record(1000); // bucket 2
        h.record(5000); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5 + 10 + 11 + 1000 + 5000);
    }

    /// The ISSUE acceptance test: recording the same event set from dop 1, 4
    /// and 8 worker threads must produce identical bucket counts and sums to
    /// a single-threaded recording — merging is inherent in the shared cells.
    #[test]
    fn histogram_merges_identically_across_dop_1_4_8() {
        let events: Vec<u64> = (0..10_000u64).map(|i| (i * 7919) % 3_000_000).collect();

        let serial = Histogram::new(LATENCY_BUCKETS_NS);
        for &e in &events {
            serial.record(e);
        }
        let expect = serial.snapshot();

        for dop in [1usize, 4, 8] {
            let h = Arc::new(Histogram::new(LATENCY_BUCKETS_NS));
            thread::scope(|s| {
                for w in 0..dop {
                    let h = Arc::clone(&h);
                    let chunk: Vec<u64> = events.iter().copied().skip(w).step_by(dop).collect();
                    s.spawn(move || {
                        for e in chunk {
                            h.record(e);
                        }
                    });
                }
            });
            let got = h.snapshot();
            assert_eq!(
                got.counts, expect.counts,
                "bucket counts differ at dop {dop}"
            );
            assert_eq!(got.sum, expect.sum, "sum differs at dop {dop}");
            assert_eq!(got.count, expect.count, "count differs at dop {dop}");
        }
    }

    #[test]
    fn snapshot_is_sorted_and_includes_polled() {
        let reg = MetricsRegistry::new();
        reg.counter("z_last", "").inc();
        reg.counter("a_first", "b").add(2);
        reg.counter("a_first", "a").add(1);
        reg.register_polled("m_polled", "", || 42.0);
        let h = reg.histogram("op_ns", "Scan", &[100]);
        h.record(50);
        h.record(500);

        let snap = reg.snapshot();
        let keys: Vec<(String, String)> = snap
            .iter()
            .map(|s| (s.name.clone(), s.label.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "snapshot must be deterministically ordered");

        let find = |n: &str, l: &str| {
            snap.iter()
                .find(|s| s.name == n && s.label == l)
                .unwrap_or_else(|| panic!("missing {n}/{l}"))
                .value
        };
        assert_eq!(find("a_first", "a"), 1.0);
        assert_eq!(find("m_polled", ""), 42.0);
        assert_eq!(find("op_ns_count", "Scan"), 2.0);
        assert_eq!(find("op_ns_bucket", "Scan,le=100"), 1.0);
        assert_eq!(find("op_ns_bucket", "Scan,le=inf"), 1.0);
    }

    #[test]
    fn histogram_bucket_boundary_values() {
        // Bounds are inclusive upper bounds: a value exactly equal to a
        // bound lands in that bucket, one past it lands in the next.
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [9, 10, 11, 99, 100, 101, 999, 1000, 1001] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 3, 3, 1]);
        // partition_point never panics at the extremes.
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 3);
        assert_eq!(s.counts[3], 2);
    }

    #[test]
    fn percentiles_on_empty_and_single_bucket() {
        // Empty histogram: every percentile is 0.
        let h = Histogram::new(&[100, 200]);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.percentile(0.99), 0.0);

        // All mass in one bucket: percentiles interpolate within [lo, hi]
        // of that bucket and never escape it.
        for _ in 0..10 {
            h.record(150);
        }
        let s = h.snapshot();
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let p = s.percentile(q);
            assert!(
                (100.0..=200.0).contains(&p),
                "p{q} = {p} escaped the single occupied bucket"
            );
        }
        // Monotone in q.
        assert!(s.percentile(0.95) >= s.percentile(0.50));

        // Overflow-only mass clamps to the last finite bound.
        let h = Histogram::new(&[100, 200]);
        h.record(5000);
        assert_eq!(h.snapshot().percentile(0.5), 200.0);
    }

    #[test]
    fn percentile_interpolation_is_dop_independent() {
        // Same events recorded at dop 1 and dop 4 must give bit-identical
        // percentile estimates (cells merge by addition).
        let events: Vec<u64> = (0..5_000u64).map(|i| (i * 104_729) % 9_000_000).collect();
        let serial = Histogram::new(LATENCY_BUCKETS_NS);
        for &e in &events {
            serial.record(e);
        }
        let par = Arc::new(Histogram::new(LATENCY_BUCKETS_NS));
        thread::scope(|s| {
            for w in 0..4usize {
                let h = Arc::clone(&par);
                let chunk: Vec<u64> = events.iter().copied().skip(w).step_by(4).collect();
                s.spawn(move || {
                    for e in chunk {
                        h.record(e);
                    }
                });
            }
        });
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                serial.snapshot().percentile(q).to_bits(),
                par.snapshot().percentile(q).to_bits()
            );
        }
    }

    #[test]
    fn snapshot_emits_percentile_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", "", LATENCY_BUCKETS_NS);
        for i in 0..100u64 {
            h.record(i * 10_000);
        }
        let snap = reg.snapshot();
        let find = |n: &str| {
            snap.iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("missing {n}"))
                .value
        };
        let (p50, p95, p99) = (find("lat_ns_p50"), find("lat_ns_p95"), find("lat_ns_p99"));
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn snapshot_twice_is_stable_when_idle() {
        let reg = MetricsRegistry::new();
        reg.counter("c", "").add(3);
        reg.histogram("h", "", &[10]).record(4);
        let a: Vec<_> = reg
            .snapshot()
            .into_iter()
            .map(|s| (s.name, s.label, s.value.to_bits()))
            .collect();
        let b: Vec<_> = reg
            .snapshot()
            .into_iter()
            .map(|s| (s.name, s.label, s.value.to_bits()))
            .collect();
        assert_eq!(a, b);
    }
}
