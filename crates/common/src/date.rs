//! Calendar date arithmetic.
//!
//! Dates are stored engine-wide as `i32` days since the Unix epoch
//! (1970-01-01 = day 0), the same trick Vectorwise uses so that date columns
//! compress with PFOR-DELTA and compare with plain integer kernels.
//!
//! Conversion uses Howard Hinnant's branchless civil-date algorithms, valid
//! for the full proleptic Gregorian calendar range we care about.

/// Convert a civil date to days since 1970-01-01.
///
/// `m` is 1-based (1 = January). Out-of-range day-of-month values are the
/// caller's responsibility; use [`is_valid_date`] to check first.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March=0 .. February=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Convert days since 1970-01-01 back to a civil date `(y, m, d)`.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// True iff `y` is a leap year in the Gregorian calendar.
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in month `m` (1-based) of year `y`.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// True iff `(y, m, d)` names a real calendar date.
pub fn is_valid_date(y: i32, m: u32, d: u32) -> bool {
    (1..=12).contains(&m) && d >= 1 && d <= days_in_month(y, m)
}

/// Parse a `YYYY-MM-DD` literal into days-since-epoch.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !is_valid_date(y, m, d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{:04}-{:02}-{:02}", y, m, d)
}

/// Extract the year of a days-since-epoch date (SQL `EXTRACT(YEAR ...)`).
pub fn year_of(days: i32) -> i32 {
    civil_from_days(days).0
}

/// Extract the month (1-12) of a days-since-epoch date.
pub fn month_of(days: i32) -> i32 {
    civil_from_days(days).1 as i32
}

/// Add `months` to a date, clamping the day-of-month (SQL interval rules).
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = (total.rem_euclid(12) + 1) as u32;
    let nd = d.min(days_in_month(ny, nm));
    days_from_civil(ny, nm, nd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(format_date(days_from_civil(1992, 1, 1)), "1992-01-01");
        assert_eq!(format_date(days_from_civil(1998, 12, 31)), "1998-12-31");
        // Leap day.
        assert_eq!(parse_date("2000-02-29"), Some(days_from_civil(2000, 2, 29)));
        assert_eq!(parse_date("1900-02-29"), None); // 1900 not a leap year
        assert_eq!(parse_date("2000-13-01"), None);
        assert_eq!(parse_date("2000-04-31"), None);
        assert_eq!(parse_date("garbage"), None);
    }

    #[test]
    fn roundtrip_every_day_for_decades() {
        let start = days_from_civil(1950, 1, 1);
        let end = days_from_civil(2050, 1, 1);
        let mut prev = civil_from_days(start - 1);
        for z in start..end {
            let (y, m, d) = civil_from_days(z);
            assert!(is_valid_date(y, m, d), "invalid {y}-{m}-{d}");
            assert_eq!(days_from_civil(y, m, d), z);
            // Dates advance strictly.
            assert!((y, m, d) > prev);
            prev = (y, m, d);
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1997));
    }

    #[test]
    fn extract_and_interval() {
        let d = parse_date("1995-03-15").unwrap();
        assert_eq!(year_of(d), 1995);
        assert_eq!(month_of(d), 3);
        assert_eq!(format_date(add_months(d, 3)), "1995-06-15");
        assert_eq!(format_date(add_months(d, -3)), "1994-12-15");
        // Clamping: Jan 31 + 1 month = Feb 28 (non-leap).
        let jan31 = parse_date("1995-01-31").unwrap();
        assert_eq!(format_date(add_months(jan31, 1)), "1995-02-28");
        // 12-month wrap.
        assert_eq!(format_date(add_months(d, 12)), "1996-03-15");
    }

    #[test]
    fn negative_days_before_epoch() {
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }
}
