//! Shared infrastructure for the benchmark harnesses.
//!
//! Every bench target regenerates one row of `EXPERIMENTS.md` (see
//! `DESIGN.md`'s experiment index). The helpers here load TPC-H into a
//! database, build in-memory workloads for the raw-processing-power
//! experiments, and implement a deliberately classic tuple-at-a-time
//! interpreter loop used as the E2 baseline.

use std::collections::HashMap;
use std::sync::Arc;
use vw_common::{Result, Schema, Value};
use vw_core::batch::Batch;
use vw_core::operators::{BatchSource, BoxedOperator};
use vw_core::Database;
use vw_plan::LogicalPlan;
use vw_tpch::{tpch_schema, TpchCatalog, TpchGenerator, TPCH_TABLES};

/// Load a TPC-H database at `sf` (bulk load + ANALYZE on the big tables).
pub fn load_tpch(sf: f64) -> (Database, TpchCatalog) {
    let db = Database::new().expect("db");
    let generator = TpchGenerator::new(sf);
    for table in TPCH_TABLES {
        db.create_table(table, tpch_schema(table).unwrap()).unwrap();
        db.bulk_load(table, generator.rows(table)).unwrap();
    }
    for t in [
        "lineitem", "orders", "customer", "part", "partsupp", "supplier",
    ] {
        db.analyze(t).unwrap();
    }
    use vw_sql::CatalogView;
    let cat = TpchCatalog::new(|name| db.resolve_table(name)).unwrap();
    (db, cat)
}

/// Row-engine table map from a database.
pub fn row_tables(
    db: &Database,
) -> HashMap<vw_common::TableId, Arc<parking_lot::RwLock<vw_storage::TableStorage>>> {
    db.exec_context(None)
        .unwrap()
        .tables
        .iter()
        .map(|(id, p)| (*id, Arc::clone(&p.storage)))
        .collect()
}

/// Drain an operator, returning the row count (keeps the optimizer honest).
pub fn drain(mut op: BoxedOperator) -> usize {
    let mut n = 0;
    while let Some(b) = op.next().expect("exec") {
        n += b.len();
    }
    n
}

/// Run a plan end-to-end on a database (optimize + rewrite + execute).
pub fn run(db: &Database, plan: &LogicalPlan) -> usize {
    db.run_plan(plan.clone()).expect("run").rows.len()
}

// ------------------------------------------------- in-memory E2 workload

/// The in-memory lineitem-like relation used by the raw-processing-power
/// experiments: (quantity f64, extendedprice f64, discount f64, shipdate
/// i32-as-date, returnflag str).
pub struct MemWorkload {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

impl MemWorkload {
    pub fn generate(n: usize) -> MemWorkload {
        use vw_common::rng::Xoshiro256;
        let mut r = Xoshiro256::seeded(42);
        let schema = Schema::new(vec![
            vw_common::Field::new("quantity", vw_common::DataType::F64),
            vw_common::Field::new("extendedprice", vw_common::DataType::F64),
            vw_common::Field::new("discount", vw_common::DataType::F64),
            vw_common::Field::new("shipdate", vw_common::DataType::Date),
            vw_common::Field::new("returnflag", vw_common::DataType::Str),
        ]);
        let flags = ["A", "N", "R"];
        let rows = (0..n)
            .map(|_| {
                vec![
                    Value::F64(r.range_i64(1, 50) as f64),
                    Value::F64(r.range_i64(1000, 100_000) as f64 / 100.0),
                    Value::F64(r.range_i64(0, 10) as f64 / 100.0),
                    Value::Date(8035 + r.range_i64(0, 2400) as i32),
                    Value::Str(flags[r.next_below(3) as usize].to_string()),
                ]
            })
            .collect();
        MemWorkload { schema, rows }
    }

    /// The relation pre-chunked into batches of `vector_size`.
    pub fn batches(&self, vector_size: usize) -> Vec<Batch> {
        self.rows
            .chunks(vector_size.max(1))
            .map(|chunk| Batch::from_rows(&self.schema, chunk).expect("batch"))
            .collect()
    }

    /// A fresh operator source over pre-built batches.
    pub fn source(&self, batches: &[Batch]) -> BoxedOperator {
        Box::new(BatchSource::new(self.schema.clone(), batches.to_vec()))
    }
}

/// Q6-like pipeline over an arbitrary source: filter on shipdate+discount+
/// quantity, then SUM(extendedprice*discount).
pub fn q6_like(source: BoxedOperator) -> Result<BoxedOperator> {
    use vw_plan::{AggExpr, AggFunc, BinOp, Expr};
    let lo = Expr::lit(Value::Date(8766));
    let hi = Expr::lit(Value::Date(9131));
    let pred = Expr::and(
        Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(3), lo),
            Expr::binary(BinOp::Lt, Expr::col(3), hi),
        ),
        Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(2), Expr::lit(Value::F64(0.05))),
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::F64(24.0))),
        ),
    );
    let filter = vw_core::operators::VecFilter::new(source, pred, false)?;
    let agg = vw_core::operators::HashAggregate::new(
        Box::new(filter),
        vec![],
        vec![AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::binary(BinOp::Mul, Expr::col(1), Expr::col(2))),
            name: "revenue".into(),
        }],
        vw_plan::plan::AggPhase::Single,
        1024,
        false,
    )?;
    Ok(Box::new(agg))
}

/// Q1-like pipeline: filter on shipdate, group by returnflag with sums/avgs.
pub fn q1_like(source: BoxedOperator) -> Result<BoxedOperator> {
    use vw_plan::{AggExpr, AggFunc, BinOp, Expr};
    let pred = Expr::binary(BinOp::Le, Expr::col(3), Expr::lit(Value::Date(10_000)));
    let filter = vw_core::operators::VecFilter::new(source, pred, false)?;
    let disc_price = Expr::binary(
        BinOp::Mul,
        Expr::col(1),
        Expr::binary(BinOp::Sub, Expr::lit(Value::F64(1.0)), Expr::col(2)),
    );
    let agg = vw_core::operators::HashAggregate::new(
        Box::new(filter),
        vec![4],
        vec![
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::col(0)),
                name: "sum_qty".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(disc_price),
                name: "sum_disc_price".into(),
            },
            AggExpr {
                func: AggFunc::Avg,
                arg: Some(Expr::col(1)),
                name: "avg_price".into(),
            },
            AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            },
        ],
        vw_plan::plan::AggPhase::Single,
        1024,
        false,
    )?;
    Ok(Box::new(agg))
}

/// The tuple-at-a-time interpreter baseline for the in-memory workloads:
/// one expression-tree interpretation per tuple, boxed `Value`s throughout —
/// the execution model the paper claims >10x over (§I-A).
pub fn q6_like_tuple_at_a_time(rows: &[Vec<Value>]) -> f64 {
    use vw_plan::{BinOp, Expr};
    let lo = Expr::lit(Value::Date(8766));
    let hi = Expr::lit(Value::Date(9131));
    let pred = Expr::and(
        Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(3), lo),
            Expr::binary(BinOp::Lt, Expr::col(3), hi),
        ),
        Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(2), Expr::lit(Value::F64(0.05))),
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::F64(24.0))),
        ),
    );
    let revenue = Expr::binary(BinOp::Mul, Expr::col(1), Expr::col(2));
    let mut sum = 0.0;
    for row in rows {
        if pred.eval_row(row).expect("pred") == Value::Bool(true) {
            sum += revenue.eval_row(row).expect("expr").as_f64().unwrap_or(0.0);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_core::operators::collect_rows;

    #[test]
    fn mem_workload_pipelines_agree_with_tuple_baseline() {
        let w = MemWorkload::generate(20_000);
        let batches = w.batches(1024);
        let mut op = q6_like(w.source(&batches)).unwrap();
        let rows = collect_rows(op.as_mut()).unwrap();
        let vec_sum = rows[0][0].as_f64().unwrap();
        let tup_sum = q6_like_tuple_at_a_time(&w.rows);
        assert!(
            (vec_sum - tup_sum).abs() <= vec_sum.abs() * 1e-9,
            "{} vs {}",
            vec_sum,
            tup_sum
        );
        // q1-like runs and groups by the three flags
        let mut op = q1_like(w.source(&batches)).unwrap();
        let rows = collect_rows(op.as_mut()).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn tpch_loader_smoke() {
        let (db, cat) = load_tpch(0.001);
        let n = run(&db, &vw_tpch::queries::q1(&cat));
        assert!(n >= 1);
        assert!(!row_tables(&db).is_empty());
    }
}
