//! The QphH-style harness — experiment E1.
//!
//! Reproduces the *structure* of the paper's §I-C evaluation: a TPC-H power
//! run (geometric mean of the 22 query times) and a throughput run
//! (concurrent query streams), combined into a composite score, for the
//! vectorized engine and for the tuple-at-a-time baseline that stands in
//! for the "pipelined commercial engine" of the paper's SQLServer
//! comparison. Absolute numbers are laptop-scale; the shape to check is the
//! ratio (the paper's 100GB result: 251K vs 74K QphH ≈ 3.4x).
//!
//! ```sh
//! cargo run --release -p vw-bench --bin qph              # SF 0.01
//! TPCH_SF=0.05 QPH_STREAMS=2 cargo run --release -p vw-bench --bin qph
//! QPH_PROFILE=1 cargo run --release -p vw-bench --bin qph   # per-op dumps
//! QPH_SMOKE=1 cargo run --release -p vw-bench --bin qph     # Q1 profile only
//! QPH_MODE=qthr QPH_STREAMS=4 cargo run --release -p vw-bench --bin qph
//! QPH_COMPARE=BENCH_baseline.json QPH_SMOKE=1 cargo run --release -p vw-bench --bin qph
//! ```
//!
//! `QPH_COMPARE` points at a committed baseline (a previous run's
//! `BENCH_qph.json`); the harness exits non-zero when this run's composite
//! fell more than 25% below it.
//!
//! Qthr mode exercises the concurrent-serving stack end to end: each stream
//! is a [`Session`](vw_core::Session) replaying all 22 queries at dop 1
//! (floats sum in a fixed order, so every per-query result must be
//! byte-identical to a serial reference), admission control is asserted to
//! gate every start within the global memory ledger, and overlapping
//! `lineitem` scans must share at least one block through the cooperative
//! buffer manager.

use std::time::Instant;
use vw_bench::{load_tpch, row_tables};
use vw_tpch::all_queries;

fn geo_mean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

/// One machine-readable benchmark record for `BENCH_qph.json`.
struct BenchRecord {
    query: String,
    dop: usize,
    wall_ms: f64,
    rows: usize,
    peak_mem_bytes: u64,
    spill_bytes: u64,
    decode_hit_rate: Option<f64>,
}

impl BenchRecord {
    /// Build from the database's last-query profile (falls back to zeros when
    /// profiling was off).
    fn from_last_profile(db: &vw_core::Database, query: &str, wall_ms: f64, rows: usize) -> Self {
        let prof = db.profile_last_query();
        BenchRecord {
            query: query.to_string(),
            dop: prof.as_ref().map_or(1, |p| p.dop),
            wall_ms,
            rows,
            peak_mem_bytes: prof.as_ref().map_or(0, |p| p.mem.peak),
            spill_bytes: prof.as_ref().map_or(0, |p| p.mem.spill_bytes),
            decode_hit_rate: prof
                .as_ref()
                .and_then(|p| p.decode.as_ref())
                .and_then(|d| d.hit_rate()),
        }
    }
}

/// A JSON number that is always valid JSON (NaN/inf → null).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{:.6}", x)
    } else {
        "null".to_string()
    }
}

/// Emit `BENCH_qph.json` (path overridable via `QPH_JSON`): the per-query
/// machine-readable results CI uploads as an artifact. Hand-rolled writer —
/// flat structure, no dependency needed.
fn write_bench_json(mode: &str, sf: f64, records: &[BenchRecord], scores: &[(&str, f64)]) {
    let path = std::env::var("QPH_JSON").unwrap_or_else(|_| "BENCH_qph.json".to_string());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", mode));
    out.push_str(&format!("  \"sf\": {},\n", json_num(sf)));
    out.push_str("  \"queries\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"dop\": {}, \"wall_ms\": {}, \"rows\": {}, \
             \"peak_mem_bytes\": {}, \"spill_bytes\": {}, \"decode_cache_hit_rate\": {}}}{}\n",
            r.query,
            r.dop,
            json_num(r.wall_ms),
            r.rows,
            r.peak_mem_bytes,
            r.spill_bytes,
            r.decode_hit_rate.map_or("null".to_string(), json_num),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"scores\": {");
    for (i, (name, v)) in scores.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{}\": {}",
            if i > 0 { ", " } else { "" },
            name,
            json_num(*v)
        ));
    }
    out.push_str("}\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {}", path),
        Err(e) => eprintln!("could not write {}: {}", path, e),
    }
    compare_baseline(mode, scores);
}

/// Pull `"key": <number>` out of a baseline file written by
/// [`write_bench_json`]. Hand-rolled to match that writer's flat format —
/// no JSON dependency.
fn json_score(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{}\": ", key);
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Regression gate (`QPH_COMPARE=<baseline.json>`): diff this run's
/// composite against a committed baseline and exit non-zero when it fell
/// more than 25% below. All composites are queries-per-hour shaped (higher
/// is better). A missing or mode-mismatched baseline is an error too —
/// a gate that silently skips is no gate.
fn compare_baseline(mode: &str, scores: &[(&str, f64)]) {
    let Ok(path) = std::env::var("QPH_COMPARE") else {
        return;
    };
    // The composite per harness mode; everything else in "scores" is
    // informational (adaptivity deltas, admission counters, ...).
    let key = match mode {
        "smoke" => "power",
        "qthr" => "qthr_queries_per_hour",
        _ => "vectorized_composite",
    };
    let Some((_, current)) = scores.iter().find(|(n, _)| *n == key) else {
        return;
    };
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("QPH_COMPARE: cannot read baseline {}: {}", path, e);
            std::process::exit(2);
        }
    };
    let Some(base) = json_score(&baseline, key) else {
        eprintln!(
            "QPH_COMPARE: baseline {} has no \"{}\" score (recorded in a different mode?)",
            path, key
        );
        std::process::exit(2);
    };
    const FLOOR: f64 = 0.75;
    println!(
        "baseline gate: {} = {:.0} vs baseline {:.0} ({:+.1}%, floor {:.0}%)",
        key,
        current,
        base,
        (current / base - 1.0) * 100.0,
        FLOOR * 100.0
    );
    if base > 0.0 && *current < base * FLOOR {
        eprintln!(
            "REGRESSION: {} = {:.0} is more than {:.0}% below baseline {:.0} (from {})",
            key,
            current,
            (1.0 - FLOOR) * 100.0,
            base,
            path
        );
        std::process::exit(1);
    }
}

/// Per-operator breakdown of the last query, indented for the power listing,
/// followed by a one-line I/O + decode-cache summary.
fn dump_profile(db: &vw_core::Database) {
    let Some(prof) = db.profile_last_query() else {
        return;
    };
    for line in prof.render().lines() {
        println!("      | {}", line);
    }
    let mut io = format!(
        "      | io: {} KiB read, {} KiB skipped",
        prof.disk.bytes_read / 1024,
        prof.disk.bytes_skipped / 1024
    );
    if let Some(rate) = prof.decode.as_ref().and_then(|d| d.hit_rate()) {
        io.push_str(&format!(", decode-cache {:.0}% hit", rate * 100.0));
    }
    println!("{}", io);
    let mut mem = format!("      | mem: {} KiB peak reserved", prof.mem.peak / 1024);
    if prof.mem.spill_events > 0 {
        mem.push_str(&format!(
            ", spilled {} KiB in {} partitions/runs",
            prof.mem.spill_bytes / 1024,
            prof.mem.spill_events
        ));
    }
    println!("{}", mem);
}

/// On-disk footprint of the loaded tables (compressed execution context for
/// the per-query bytes-read numbers).
fn compression_summary(db: &vw_core::Database) {
    let ctx = db.exec_context(None).expect("exec context");
    let (mut enc, mut raw) = (0usize, 0usize);
    for provider in ctx.tables.values() {
        let storage = provider.storage.read();
        enc += storage.encoded_bytes();
        raw += storage.raw_bytes();
    }
    if enc > 0 {
        println!(
            "storage: {} KiB encoded / {} KiB raw ({:.2}x compression)",
            enc / 1024,
            raw / 1024,
            raw as f64 / enc as f64
        );
    }
}

/// A Q6-shaped selective scan: `l_orderkey` ascends in load order, so a tight
/// range predicate lets the lazy scan reject whole vectors in encoded form.
/// Asserts (for CI) that the scan decoded fewer vectors than it covered.
fn smoke_selective(db: &vw_core::Database, sf: f64) {
    use vw_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan};
    use vw_sql::CatalogView;
    let (tid, schema) = db.resolve_table("lineitem").expect("lineitem");
    let key = schema.index_of("l_orderkey").expect("l_orderkey");
    let price = schema.index_of("l_extendedprice").expect("l_extendedprice");
    // ~1% of the orderkey domain (orderkeys are dense 1..=1.5M*sf).
    let cutoff = ((sf * 1_500_000.0) / 100.0).ceil().max(1.0) as i64;
    let plan = LogicalPlan::scan("lineitem", tid, schema)
        .filter(Expr::binary(
            BinOp::Lt,
            Expr::col(key),
            Expr::lit(vw_common::Value::I64(cutoff)),
        ))
        .aggregate(
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(price)),
                    name: "revenue".into(),
                },
            ],
        );
    db.set_parallelism(1);
    let rows = db.run_plan(plan).expect("selective scan").rows.len();
    let prof = db.profile_last_query().expect("profiling on by default");
    println!("selective smoke (l_orderkey < {}): {} rows", cutoff, rows);
    println!("{}", prof.render());
    let scan = prof
        .nodes()
        .into_iter()
        .find(|n| n.op_name() == "Scan")
        .expect("scan node in profile");
    let extras: std::collections::BTreeMap<_, _> = scan.extras().into_iter().collect();
    let decoded = extras.get("vec_decoded").copied().unwrap_or(0);
    let skipped = extras.get("vec_skipped").copied().unwrap_or(0);
    assert!(
        skipped > 0,
        "selective scan should skip decoding some vectors (decoded={}, skipped={})",
        decoded,
        skipped
    );
    assert!(
        decoded < decoded + skipped,
        "scan must decode fewer vectors than it covers"
    );
    println!(
        "selective smoke: {} column-vectors decoded, {} skipped undecoded",
        decoded, skipped
    );
    // Under VW_PARTITIONS the whole schema loads range-partitioned on each
    // table's first column — l_orderkey here — so this range predicate must
    // rule out whole partitions before any zone map is consulted.
    if vw_common::config::env_default_partitions().is_some() {
        let parts = extras.get("partitions").copied().unwrap_or(0);
        let pruned = extras.get("partitions_pruned").copied().unwrap_or(0);
        assert!(
            pruned > 0,
            "partitioned layout should prune partitions for l_orderkey < {} \
             (partitions={}, pruned={})",
            cutoff,
            parts,
            pruned
        );
        println!("selective smoke: {} of {} partitions pruned", pruned, parts);
    }
}

/// Multi-stream session throughput (Qthr) mode: N concurrent sessions over
/// one `Database`, byte-identical results, admission + ABM assertions.
fn run_qthr(sf: f64, streams: usize) {
    use std::sync::{Arc, Barrier};

    println!(
        "Qthr throughput harness — TPC-H at SF {} ({} session streams)",
        sf, streams
    );
    let (db, cat) = load_tpch(sf);
    let db = Arc::new(db);
    // Plan-stability guard: cardinality feedback corrects plans as queries
    // complete, so a stream replay may legally run a *different* (corrected)
    // plan than the serial reference — and a different join order sums
    // floats in a different order. Byte-identity is only a meaningful
    // assertion with plans frozen; the smoke mode measures the adaptive
    // delta on a single session where replays see the same feedback.
    db.execute("SET GLOBAL adaptivity = 'off'")
        .expect("freeze adaptivity");
    let abm = db.enable_cooperative_scans(256 << 20);
    // dop 1 everywhere: within one query floats sum in a fixed order, so
    // concurrency across streams is the only parallelism — and per-query
    // results must be byte-identical (Value::F64 compares by to_bits) to the
    // serial reference below.
    db.set_parallelism(1);

    let queries = all_queries(&cat);
    let n_queries = queries.len();
    println!("\nserial reference ({} queries, dop 1):", n_queries);
    let t_ref = Instant::now();
    let expected: Arc<Vec<Vec<Vec<vw_common::Value>>>> = Arc::new(
        queries
            .iter()
            .map(|(_, plan)| db.run_plan(plan.clone()).expect("reference").rows)
            .collect(),
    );
    let serial_s = t_ref.elapsed().as_secs_f64();
    println!("  {:.1}s total", serial_s);

    let limit = db.ledger().limit();
    let adm_before = db.admission_stats();
    let abm_before = abm.stats();
    let barrier = Arc::new(Barrier::new(streams));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for s in 0..streams {
        let session = db.session();
        session.set_parallelism(1);
        let cat = cat.clone();
        let expected = expected.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let queries = all_queries(&cat);
            barrier.wait();
            let mut records = Vec::new();
            let mut waited = 0usize;
            for i in 0..queries.len() {
                // Offset start order so streams hit different queries at once
                // while still overlapping on the hot tables.
                let idx = (i + s * 7) % queries.len();
                let (n, plan) = &queries[idx];
                let t = Instant::now();
                let rows = session.run_plan(plan.clone()).expect("stream query").rows;
                let wall_ms = t.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    rows, expected[idx],
                    "stream {} Q{} diverged from the serial reference",
                    s, n
                );
                let prof = session.profile_last_query();
                // Lifecycle wait attribution: any query that measurably
                // blocked in admission (>=1ms, the slow-wait event
                // threshold) must carry an "admission" phase span in its
                // chrome trace, timed from the same clock as the profile.
                if prof
                    .as_ref()
                    .is_some_and(|p| p.timeline.admission_ns >= 1_000_000)
                {
                    waited += 1;
                    let trace = session
                        .export_trace()
                        .expect("profiled stream query must produce a trace");
                    assert!(
                        trace.contains("\"admission\""),
                        "stream {} Q{} waited in admission but its trace has no \
                         admission span",
                        s,
                        n
                    );
                }
                records.push(BenchRecord {
                    query: format!("S{}-Q{}", s, n),
                    dop: prof.as_ref().map_or(1, |p| p.dop),
                    wall_ms,
                    rows: rows.len(),
                    peak_mem_bytes: prof.as_ref().map_or(0, |p| p.mem.peak),
                    spill_bytes: prof.as_ref().map_or(0, |p| p.mem.spill_bytes),
                    decode_hit_rate: prof
                        .as_ref()
                        .and_then(|p| p.decode.as_ref())
                        .and_then(|d| d.hit_rate()),
                });
            }
            (records, waited)
        }));
    }
    let mut records = Vec::new();
    let mut traced_waits = 0usize;
    for h in handles {
        let (r, w) = h.join().unwrap();
        records.extend(r);
        traced_waits += w;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let qthr = (streams * n_queries) as f64 * 3600.0 / elapsed;
    println!(
        "\nthroughput run: {} streams × {} queries in {:.1}s → {:.0} queries/hour \
         ({:.2}x vs serial)",
        streams,
        n_queries,
        elapsed,
        qthr,
        serial_s * streams as f64 / elapsed
    );

    // Admission: every stream query passed through the scheduler, and grants
    // never exceeded the ledger. (Timing-independent asserts only — whether
    // anyone actually *waited* depends on scheduling luck.)
    let adm = db.admission_stats();
    assert_eq!(
        adm.admitted - adm_before.admitted,
        (streams * n_queries) as u64,
        "every stream query passes admission exactly once"
    );
    assert_eq!(adm.violations, 0, "grants exceeded the global ledger");
    match limit {
        Some(limit) => {
            assert!(adm.peak_granted > 0, "bounded ledger but no grant charged");
            assert!(
                adm.peak_granted <= limit,
                "peak granted {} > ledger {}",
                adm.peak_granted,
                limit
            );
            println!(
                "admission: {} admitted, {} waited, {} bypassed, peak {} KiB of {} KiB",
                adm.admitted - adm_before.admitted,
                adm.waited - adm_before.waited,
                adm.bypassed - adm_before.bypassed,
                adm.peak_granted / 1024,
                limit / 1024
            );
        }
        None => println!(
            "admission: {} admitted (unbounded ledger — set VW_MEM_BUDGET to constrain)",
            adm.admitted - adm_before.admitted
        ),
    }

    // Wait-state attribution must agree with the scheduler: every profiled
    // query times its admission acquire, so the history ring's `vw_waits`
    // rows always carry a nonzero admission total — and any stream query
    // that blocked >=1ms was already checked above for an "admission" phase
    // span in its chrome trace.
    let wait_rows = db
        .execute("SELECT wait_class, wait_ms FROM vw_waits")
        .expect("vw_waits query")
        .rows;
    let adm_ms: f64 = wait_rows
        .iter()
        .filter(|r| matches!(&r[0], vw_common::Value::Str(s) if s == "admission"))
        .map(|r| match &r[1] {
            vw_common::Value::F64(v) => *v,
            _ => 0.0,
        })
        .sum();
    assert!(
        adm_ms > 0.0,
        "vw_waits attributes no admission time across {} rows",
        wait_rows.len()
    );
    println!(
        "waits: vw_waits attributes {:.2}ms of admission across the history \
         ring; {} stream queries blocked >=1ms (trace spans verified)",
        adm_ms, traced_waits
    );

    // ABM bandwidth sharing between overlapping lineitem scans. The main run
    // usually produces shared hits; if the interleaving happened to never
    // overlap two scans of the same table, force the issue with a bounded
    // two-session overlap probe on Q1 (a pure lineitem scan-aggregate).
    let mut shared = abm.stats().shared_hits - abm_before.shared_hits;
    let mut probe_rounds = 0;
    while shared == 0 && probe_rounds < 30 {
        probe_rounds += 1;
        let before = abm.stats();
        let barrier = Arc::new(Barrier::new(2));
        let probes: Vec<_> = (0..2)
            .map(|_| {
                let session = db.session();
                session.set_parallelism(1);
                let cat = cat.clone();
                let expected = expected.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let (_, plan) = all_queries(&cat).swap_remove(0);
                    barrier.wait();
                    let rows = session.run_plan(plan).expect("probe").rows;
                    assert_eq!(rows, expected[0], "probe Q1 diverged");
                })
            })
            .collect();
        for p in probes {
            p.join().unwrap();
        }
        shared = abm.stats().shared_hits - before.shared_hits;
    }
    assert!(
        shared > 0,
        "overlapping scans never shared a block through the ABM"
    );
    println!(
        "abm: {} shared block hits, {} loads{}",
        shared,
        abm.stats().loads,
        if probe_rounds > 0 {
            format!(" (after {} overlap probe rounds)", probe_rounds)
        } else {
            String::new()
        }
    );

    write_bench_json(
        "qthr",
        sf,
        &records,
        &[
            ("streams", streams as f64),
            ("qthr_queries_per_hour", qthr),
            ("elapsed_s", elapsed),
            ("serial_reference_s", serial_s),
            ("abm_shared_hits", shared as f64),
            (
                "admission_admitted",
                (adm.admitted - adm_before.admitted) as f64,
            ),
            ("admission_waited", (adm.waited - adm_before.waited) as f64),
            ("admission_peak_granted", adm.peak_granted as f64),
            ("admission_violations", adm.violations as f64),
        ],
    );
    println!("Qthr OK: {} byte-identical stream results", records.len());
}

fn main() {
    let sf: f64 = std::env::var("TPCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let streams: usize = std::env::var("QPH_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let profile_dump = env_flag("QPH_PROFILE");

    // Qthr mode (CI throughput smoke): concurrent session streams with
    // byte-identity, admission, and cooperative-scan assertions.
    if std::env::var("QPH_MODE").is_ok_and(|v| v == "qthr") {
        run_qthr(sf, streams.max(2));
        return;
    }

    // Smoke mode (CI): run Q1 serial and at dop 4 with profiling and dump
    // the per-operator trees — exercises the whole observability path.
    if env_flag("QPH_SMOKE") {
        let (db, cat) = load_tpch(sf);
        compression_summary(&db);
        let q1 = all_queries(&cat).remove(0).1;
        let mut records = Vec::new();
        for dop in [1usize, 4] {
            db.set_parallelism(dop);
            let t = Instant::now();
            let rows = db.run_plan(q1.clone()).expect("q1").rows.len();
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            println!("Q1 smoke at dop={}: {:.1}ms, {} rows", dop, wall_ms, rows);
            records.push(BenchRecord::from_last_profile(
                &db,
                &format!("Q1@dop{}", dop),
                wall_ms,
                rows,
            ));
            let prof = db.profile_last_query().expect("profiling on by default");
            assert_eq!(prof.root.rows_out() as usize, rows, "profile cardinality");
            println!("{}", prof.render());
            // Q1's group keys (returnflag × linestatus) fit the direct-array
            // aggregation domain, so the perfect path must engage — unless
            // the generic path was forced via VW_AGG_PATH.
            let generic_forced =
                std::env::var("VW_AGG_PATH").is_ok_and(|v| v.eq_ignore_ascii_case("generic"));
            if !generic_forced {
                let perfect: u64 = prof
                    .nodes()
                    .into_iter()
                    .filter(|n| n.op_name() == "Aggregate")
                    .flat_map(|n| n.extras())
                    .filter(|(k, _)| *k == "agg_path_perfect")
                    .map(|(_, v)| v)
                    .sum();
                assert!(
                    perfect >= 1,
                    "Q1 at dop={} should take the perfect-hash aggregation path",
                    dop
                );
            }
            // Unbounded runs must not spill; budgeted runs (VW_MEM_BUDGET set,
            // e.g. the low-memory CI job) are allowed to — the profile line
            // above shows how much.
            if prof.mem.limit.is_none() {
                assert_eq!(
                    prof.mem.spill_bytes, 0,
                    "Q1 must not spill without a memory budget"
                );
            }
        }
        smoke_selective(&db, sf);
        // Power composite on every CI run: all 22 queries serial, with
        // adaptivity on and then off, so BENCH_qph.json tracks the
        // adaptive-execution delta build over build.
        db.set_parallelism(1);
        let mut power = [0.0f64; 2];
        for (i, adapt) in ["on", "off"].iter().enumerate() {
            db.execute(&format!("SET adaptivity = '{}'", adapt))
                .expect("set adaptivity");
            let mut times = Vec::new();
            for (n, plan) in all_queries(&cat) {
                let t = Instant::now();
                let rows = db.run_plan(plan).expect("power query").rows.len();
                let dt = t.elapsed().as_secs_f64().max(1e-6);
                times.push(dt);
                if i == 0 {
                    records.push(BenchRecord::from_last_profile(
                        &db,
                        &format!("Q{}", n),
                        dt * 1e3,
                        rows,
                    ));
                }
            }
            power[i] = 3600.0 / geo_mean(&times);
        }
        println!(
            "power (adaptivity on): {:.0}, power (adaptivity off): {:.0} ({:+.1}% delta)",
            power[0],
            power[1],
            (power[0] / power[1] - 1.0) * 100.0
        );
        write_bench_json(
            "smoke",
            sf,
            &records,
            &[
                ("power", power[0]),
                ("power_adapt_off", power[1]),
                ("power_adapt_ratio", power[0] / power[1]),
            ],
        );
        return;
    }

    println!(
        "QphH-style harness — TPC-H at SF {} ({} throughput streams)",
        sf, streams
    );
    let (db, cat) = load_tpch(sf);
    if profile_dump {
        compression_summary(&db);
    }
    let db = std::sync::Arc::new(db);

    // ---------------------------------------------------------- power runs
    // Vectorized engine: optimized plans, serial.
    let mut vec_times = Vec::new();
    let mut records = Vec::new();
    println!("\npower run (vectorized):");
    for (n, plan) in all_queries(&cat) {
        let t = Instant::now();
        let rows = db.run_plan(plan).expect("query").rows.len();
        let dt = t.elapsed().as_secs_f64();
        vec_times.push(dt.max(1e-6));
        println!("  Q{:<2} {:>9.1}ms ({} rows)", n, dt * 1e3, rows);
        records.push(BenchRecord::from_last_profile(
            &db,
            &format!("Q{}", n),
            dt * 1e3,
            rows,
        ));
        if profile_dump {
            dump_profile(&db);
        }
    }

    // Tuple-at-a-time baseline on the same optimized plans.
    let tables = row_tables(&db);
    let mut row_times = Vec::new();
    println!("\npower run (tuple-at-a-time baseline):");
    for (n, plan) in all_queries(&cat) {
        let plan = db.optimize_plan(plan);
        let t = Instant::now();
        let mut op = vw_baselines::compile_row(&plan, &tables).expect("row compile");
        let rows = vw_baselines::collect_row_engine(op.as_mut())
            .expect("row run")
            .len();
        let dt = t.elapsed().as_secs_f64();
        row_times.push(dt.max(1e-6));
        println!("  Q{:<2} {:>9.1}ms ({} rows)", n, dt * 1e3, rows);
    }

    // Materialized baseline.
    let ctx = db.exec_context(None).unwrap();
    let mut mat_times = Vec::new();
    for (_, plan) in all_queries(&cat) {
        let plan = db.optimize_plan(plan);
        let t = Instant::now();
        let op = vw_baselines::compile_materialized(&plan, &ctx).expect("mat compile");
        let _ = vw_bench::drain(op);
        mat_times.push(t.elapsed().as_secs_f64().max(1e-6));
    }

    // ------------------------------------------------------ throughput run
    // `streams` threads each run all 22 queries (offset start order).
    let throughput = |label: &str, use_row: bool| -> f64 {
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for s in 0..streams {
            let db = db.clone();
            let cat = cat.clone();
            handles.push(std::thread::spawn(move || {
                let queries = all_queries(&cat);
                let k = queries.len();
                for i in 0..k {
                    let (_, plan) = &queries[(i + s * 7) % k];
                    if use_row {
                        let plan = db.optimize_plan(plan.clone());
                        let tables = row_tables(&db);
                        let mut op =
                            vw_baselines::compile_row(&plan, &tables).expect("row compile");
                        let _ = vw_baselines::collect_row_engine(op.as_mut()).expect("row run");
                    } else {
                        let _ = db.run_plan(plan.clone()).expect("query");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let qph = (streams * 22) as f64 * 3600.0 / elapsed;
        println!(
            "throughput run ({label}): {:.1}s → {:.0} queries/hour",
            elapsed, qph
        );
        qph
    };

    println!();
    let vec_tput = throughput("vectorized", false);
    let row_tput = throughput("tuple-at-a-time", true);

    // ------------------------------------------------------------- scores
    // Power metric: 3600 / geometric-mean-seconds (queries per hour shape).
    let vec_power = 3600.0 / geo_mean(&vec_times);
    let row_power = 3600.0 / geo_mean(&row_times);
    let mat_power = 3600.0 / geo_mean(&mat_times);
    let vec_qph = (vec_power * vec_tput).sqrt();
    let row_qph = (row_power * row_tput).sqrt();

    println!("\n===== QphH-style composite (SF {}) =====", sf);
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "engine", "power", "throughput", "composite"
    );
    println!(
        "{:<24} {:>12.0} {:>12.0} {:>12.0}",
        "vectorized (this paper)", vec_power, vec_tput, vec_qph
    );
    println!(
        "{:<24} {:>12.0} {:>12.0} {:>12.0}",
        "tuple-at-a-time", row_power, row_tput, row_qph
    );
    println!(
        "{:<24} {:>12.0} {:>12}  {:>11}",
        "full-materialization", mat_power, "-", "-"
    );
    write_bench_json(
        "power",
        sf,
        &records,
        &[
            ("vectorized_power", vec_power),
            ("vectorized_throughput", vec_tput),
            ("vectorized_composite", vec_qph),
            ("row_power", row_power),
            ("row_throughput", row_tput),
            ("row_composite", row_qph),
            ("materialized_power", mat_power),
        ],
    );
    println!(
        "\nvectorized / tuple composite ratio: {:.2}x  (paper §I-C: 251K vs 74K ≈ 3.4x)",
        vec_qph / row_qph
    );
    println!(
        "vectorized / materialized power ratio: {:.2}x  (at this tiny SF all \
         intermediates are cache-resident, so full materialization costs \
         little — the paper's MonetDB gap appears at scale; see the E3 \
         `materialization` bench at 2M rows)",
        vec_power / mat_power
    );
}
