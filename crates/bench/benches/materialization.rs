//! E3 — vectorized pipelining vs full materialization (the MonetDB
//! comparison of §I-A: "since it avoids the penalties of full
//! materialization, [Vectorwise] is also significantly faster than
//! MonetDB").
//!
//! Both engines share kernels; the materialized engine inserts a
//! materialization barrier under every operator, so its intermediates grow
//! to relation size and fall out of cache. The gap should widen as the
//! pipeline gets longer (more intermediates) and as selectivity grows
//! (bigger intermediates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::sync::Arc;
use vw_bench::drain;
use vw_common::config::EngineConfig;
use vw_common::{DataType, Field, Schema, TableId, Value};
use vw_core::compile::{ExecContext, TableProvider};
use vw_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan};
use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

const ROWS: usize = 2_000_000;
const T: TableId = TableId(1);

fn setup() -> (ExecContext, Schema) {
    let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
    let schema = Schema::new(vec![
        Field::new("k", DataType::I64),
        Field::new("a", DataType::F64),
        Field::new("b", DataType::F64),
        Field::new("c", DataType::F64),
    ]);
    let mut builder = TableBuilder::new(schema.clone(), disk);
    for i in 0..ROWS {
        builder
            .push_row(vec![
                Value::I64((i % 1000) as i64),
                Value::F64((i % 977) as f64),
                Value::F64((i % 331) as f64 * 0.5),
                Value::F64((i % 13) as f64),
            ])
            .unwrap();
    }
    let storage = builder.finish().unwrap();
    let mut tables = HashMap::new();
    tables.insert(
        T,
        TableProvider {
            storage: Arc::new(parking_lot::RwLock::new(storage)),
            pdt: Arc::new(vw_pdt::Pdt::new(ROWS as u64)),
        },
    );
    (ExecContext::new(tables, EngineConfig::default()), schema)
}

/// filter(selectivity) → chain of arithmetic projects → aggregate.
fn pipeline(schema: &Schema, sel_bound: i64, chain: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::scan("t", T, schema.clone()).filter(Expr::binary(
        BinOp::Lt,
        Expr::col(0),
        Expr::lit(Value::I64(sel_bound)),
    ));
    for _ in 0..chain {
        plan = plan.project(vec![
            (Expr::col(0), "k"),
            (Expr::binary(BinOp::Add, Expr::col(1), Expr::col(2)), "a"),
            (
                Expr::binary(BinOp::Mul, Expr::col(2), Expr::lit(Value::F64(1.01))),
                "b",
            ),
            (Expr::col(3), "c"),
        ]);
    }
    plan.aggregate(
        vec![],
        vec![AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col(1)),
            name: "s".into(),
        }],
    )
}

fn materialization(c: &mut Criterion) {
    let (ctx, schema) = setup();
    let mut g = c.benchmark_group("materialization");
    g.sample_size(10);

    // selectivity sweep at pipeline depth 3 (bound of 1000 ≈ 100%).
    for sel in [100i64, 500, 1000] {
        let plan = pipeline(&schema, sel, 3);
        g.bench_with_input(BenchmarkId::new("vectorized/sel", sel), &sel, |b, _| {
            b.iter(|| {
                let op = vw_core::compile_plan(&plan, &ctx).unwrap();
                std::hint::black_box(drain(op))
            })
        });
        g.bench_with_input(BenchmarkId::new("materialized/sel", sel), &sel, |b, _| {
            b.iter(|| {
                let op = vw_baselines::compile_materialized(&plan, &ctx).unwrap();
                std::hint::black_box(drain(op))
            })
        });
    }

    // pipeline-depth sweep at full selectivity: each extra stage is another
    // full-size intermediate for the materialized engine.
    for chain in [1usize, 3, 6] {
        let plan = pipeline(&schema, 1000, chain);
        g.bench_with_input(
            BenchmarkId::new("vectorized/depth", chain),
            &chain,
            |b, _| {
                b.iter(|| {
                    let op = vw_core::compile_plan(&plan, &ctx).unwrap();
                    std::hint::black_box(drain(op))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("materialized/depth", chain),
            &chain,
            |b, _| {
                b.iter(|| {
                    let op = vw_baselines::compile_materialized(&plan, &ctx).unwrap();
                    std::hint::black_box(drain(op))
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = materialization
}
criterion_main!(benches);
