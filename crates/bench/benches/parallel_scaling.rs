//! E4 — Volcano-style multi-core parallelization (§I-B).
//!
//! The rewriter splits eligible plans into Exchange + partial/final
//! aggregation; workers pull row-group morsels from a shared work-stealing
//! queue and share a single hash-join build. This bench sweeps the degree of
//! parallelism on Q1/Q6 (scan + aggregate) and Q14 (hash join: the shared
//! build keeps the build cost constant as dop grows instead of multiplying
//! it). On a single-core host the wall-clock curve is flat (the interesting
//! assertion — identical results with dynamically-claimed work — is covered
//! by tests); on a multi-core host it shows near-linear scaling for the
//! scan-heavy shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vw_bench::load_tpch;
use vw_tpch::queries::{q1, q14, q6};

fn parallel_scaling(c: &mut Criterion) {
    let (db, cat) = load_tpch(0.01);
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    for dop in [1usize, 2, 4, 8] {
        db.set_parallelism(dop);
        let q1p = q1(&cat);
        g.bench_with_input(BenchmarkId::new("q1/dop", dop), &dop, |b, _| {
            b.iter(|| std::hint::black_box(db.run_plan(q1p.clone()).unwrap().rows.len()))
        });
        let q6p = q6(&cat);
        g.bench_with_input(BenchmarkId::new("q6/dop", dop), &dop, |b, _| {
            b.iter(|| std::hint::black_box(db.run_plan(q6p.clone()).unwrap().rows.len()))
        });
        let q14p = q14(&cat);
        g.bench_with_input(BenchmarkId::new("q14/dop", dop), &dop, |b, _| {
            b.iter(|| std::hint::black_box(db.run_plan(q14p.clone()).unwrap().rows.len()))
        });
    }
    db.set_parallelism(1);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = parallel_scaling
}
criterion_main!(benches);
