//! E7 — Positional Delta Trees (reference [5], §I-B).
//!
//! Three claims to reproduce:
//! * updates into a PDT are far cheaper than rewriting the columnar image
//!   (the "one I/O per column plus recompression" the paper avoids),
//! * scans pay only a small merge cost even with percent-level deltas,
//! * positional merging beats value-based (key-join) merging because no key
//!   columns need to be read or hashed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vw_common::Value;
use vw_core::Database;

const ROWS: i64 = 200_000;

fn fresh_db() -> Database {
    let db = Database::new().unwrap();
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, a BIGINT NOT NULL, b VARCHAR NOT NULL)")
        .unwrap();
    db.bulk_load(
        "t",
        (0..ROWS).map(|i| {
            vec![
                Value::I64(i),
                Value::I64(i % 97),
                Value::Str(format!("r{}", i % 11)),
            ]
        }),
    )
    .unwrap();
    db
}

fn pdt_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdt_updates");
    g.sample_size(10);

    // (a) update cost: PDT batch update vs full checkpoint rewrite.
    for pct in [1u64, 10] {
        let n_upd = ROWS as u64 * pct / 1000; // 0.1% / 1.0%
        g.bench_with_input(
            BenchmarkId::new("update_batch_permille", pct),
            &pct,
            |b, _| {
                let db = fresh_db();
                let mut hi = 0i64;
                // Cycle within the first 5% of rows so repeated iterations merge
                // into existing PDT entries instead of growing it unboundedly.
                let cycle = ROWS / 20;
                b.iter(|| {
                    let lo = hi % cycle;
                    hi += n_upd as i64;
                    db.execute(&format!(
                        "UPDATE t SET a = 0 WHERE id >= {} AND id < {}",
                        lo,
                        (lo + n_upd as i64).min(cycle)
                    ))
                    .unwrap();
                })
            },
        );
    }
    g.bench_function("full_checkpoint_rewrite", |b| {
        let db = fresh_db();
        db.execute("UPDATE t SET a = 1 WHERE id = 0").unwrap();
        b.iter(|| {
            // keep a delta alive so every checkpoint rewrites the image
            db.execute("UPDATE t SET a = a + 1 WHERE id = 0").unwrap();
            std::hint::black_box(db.checkpoint("t").unwrap())
        })
    });

    // (b) scan + merge overhead at growing delta fractions.
    for permille in [0u64, 1, 10, 30] {
        let db = fresh_db();
        let n_upd = (ROWS as u64 * permille / 1000) as i64;
        if n_upd > 0 {
            db.execute(&format!("UPDATE t SET a = 0 WHERE id < {}", n_upd))
                .unwrap();
        }
        g.bench_with_input(
            BenchmarkId::new("scan_with_deltas_permille", permille),
            &permille,
            |b, _| {
                b.iter(|| {
                    let r = db.execute("SELECT SUM(a) FROM t").unwrap();
                    std::hint::black_box(r.rows.len())
                })
            },
        );
    }

    // (c) positional vs value-based merge: applying a batch of deltas by
    // RID (PDT) vs joining a delta table on the key column.
    let db = fresh_db();
    db.execute("CREATE TABLE delta (id BIGINT NOT NULL, a BIGINT NOT NULL)")
        .unwrap();
    db.bulk_load(
        "delta",
        (0..ROWS / 100).map(|i| vec![Value::I64(i * 100), Value::I64(-1)]),
    )
    .unwrap();
    g.bench_function("merge/positional_pdt", |b| {
        let dbp = fresh_db();
        dbp.execute("UPDATE t SET a = 0 WHERE id < 2000").unwrap();
        b.iter(|| {
            // merged scan through PDT
            let r = dbp.execute("SELECT SUM(a), COUNT(*) FROM t").unwrap();
            std::hint::black_box(r.rows.len())
        })
    });
    g.bench_function("merge/value_based_join", |b| {
        b.iter(|| {
            // the classic alternative: outer-join the delta by key and take
            // the patched value — pays hashing the key column of the base
            let r = db
                .execute(
                    "SELECT SUM(CASE WHEN d.a IS NOT NULL THEN d.a ELSE t.a END), COUNT(*) \
                     FROM t LEFT JOIN delta d ON t.id = d.id",
                )
                .unwrap();
            std::hint::black_box(r.rows.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = pdt_updates
}
criterion_main!(benches);
