//! E1 (per-query view): TPC-H query latencies on the three engines.
//!
//! The composite QphH-style score lives in the `qph` binary; this bench
//! gives per-query timings with criterion's statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use vw_bench::{drain, load_tpch, row_tables, run};

fn tpch_power(c: &mut Criterion) {
    let (db, cat) = load_tpch(0.01);
    let tables = row_tables(&db);
    let ctx = db.exec_context(None).unwrap();

    let mut g = c.benchmark_group("tpch_power");
    g.sample_size(10);

    // The full power run.
    g.bench_function("all22/vectorized", |b| {
        b.iter(|| {
            for (_, plan) in vw_tpch::all_queries(&cat) {
                std::hint::black_box(run(&db, &plan));
            }
        })
    });

    // Representative queries, per engine.
    for qn in [1u8, 3, 6, 9, 13] {
        let plan = vw_tpch::all_queries(&cat)
            .into_iter()
            .find(|(n, _)| *n == qn)
            .unwrap()
            .1;
        let opt = db.optimize_plan(plan);
        g.bench_function(format!("q{}/vectorized", qn), |b| {
            b.iter(|| {
                let op = vw_core::compile_plan(&opt, &ctx).unwrap();
                std::hint::black_box(drain(op))
            })
        });
        g.bench_function(format!("q{}/materialized", qn), |b| {
            b.iter(|| {
                let op = vw_baselines::compile_materialized(&opt, &ctx).unwrap();
                std::hint::black_box(drain(op))
            })
        });
        g.bench_function(format!("q{}/tuple_at_a_time", qn), |b| {
            b.iter(|| {
                let mut op = vw_baselines::compile_row(&opt, &tables).unwrap();
                std::hint::black_box(vw_baselines::collect_row_engine(op.as_mut()).unwrap().len())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = tpch_power
}
criterion_main!(benches);
