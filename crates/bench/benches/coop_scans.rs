//! E6 — Cooperative Scans vs LRU (reference [4], §I-A).
//!
//! N concurrent full-table scans with a buffer a fraction of the table:
//! under LRU each scan streams the whole table from disk; under the ABM one
//! disk pass feeds everyone. The bench measures wall time of the whole
//! multi-scan episode (policy overhead included); the deterministic virtual
//! I/O statistics — the paper's actual claim — are printed per
//! configuration for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vw_bufman::{Abm, BlockReader, LruPool};
use vw_storage::{SimDisk, SimDiskConfig};

const N_BLOCKS: usize = 128;
const BLOCK_BYTES: usize = 64 * 1024;

fn setup() -> (Arc<SimDisk>, Vec<vw_common::BlockId>) {
    let disk = Arc::new(SimDisk::new(SimDiskConfig::hdd()));
    let blocks = (0..N_BLOCKS)
        .map(|_| disk.write_block(vec![0u8; BLOCK_BYTES]))
        .collect();
    (disk, blocks)
}

/// Round-robin interleaved scans (models queries progressing together).
fn run_lru(disk: &Arc<SimDisk>, blocks: &[vw_common::BlockId], n_scans: usize) -> u64 {
    let pool = LruPool::new(disk.clone(), N_BLOCKS / 4 * BLOCK_BYTES);
    let mut cursors = vec![0usize; n_scans];
    // stagger starts
    for (s, c) in cursors.iter_mut().enumerate() {
        *c = s * (blocks.len() / n_scans.max(1));
    }
    let mut remaining = n_scans * blocks.len();
    let mut step = vec![0usize; n_scans];
    while remaining > 0 {
        for s in 0..n_scans {
            if step[s] < blocks.len() {
                let idx = (cursors[s] + step[s]) % blocks.len();
                pool.read(blocks[idx]).unwrap();
                step[s] += 1;
                remaining -= 1;
            }
        }
    }
    disk.stats().reads
}

fn run_abm(disk: &Arc<SimDisk>, blocks: &[vw_common::BlockId], n_scans: usize) -> u64 {
    let abm = Abm::new(disk.clone(), N_BLOCKS / 4 * BLOCK_BYTES);
    let mut scans: Vec<_> = (0..n_scans)
        .map(|_| abm.register_scan(blocks.to_vec()))
        .collect();
    let mut live = n_scans;
    while live > 0 {
        live = 0;
        for scan in &mut scans {
            if scan.next().unwrap().is_some() {
                live += 1;
            }
        }
    }
    disk.stats().reads
}

fn coop_scans(c: &mut Criterion) {
    // Deterministic I/O accounting for EXPERIMENTS.md.
    eprintln!(
        "\n[E6] disk reads for N concurrent scans of a {}-block table (buffer 25%):",
        N_BLOCKS
    );
    eprintln!(
        "  {:>2} scans: {:>6} (LRU) vs {:>6} (cooperative)",
        "N", "reads", "reads"
    );
    for n in [2usize, 4, 8, 16] {
        let (disk, blocks) = setup();
        disk.reset_stats();
        let lru_reads = run_lru(&disk, &blocks, n);
        let lru_ns = disk.stats().virtual_read_ns;
        disk.reset_stats();
        let abm_reads = run_abm(&disk, &blocks, n);
        let abm_ns = disk.stats().virtual_read_ns;
        eprintln!(
            "  {:>2} scans: {:>6} ({:>6.2}s) vs {:>6} ({:>6.2}s)  → {:.1}x less I/O",
            n,
            lru_reads,
            lru_ns as f64 / 1e9,
            abm_reads,
            abm_ns as f64 / 1e9,
            lru_reads as f64 / abm_reads as f64
        );
    }

    let mut g = c.benchmark_group("coop_scans");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("lru", n), &n, |b, &n| {
            let (disk, blocks) = setup();
            b.iter(|| std::hint::black_box(run_lru(&disk, &blocks, n)))
        });
        g.bench_with_input(BenchmarkId::new("abm", n), &n, |b, &n| {
            let (disk, blocks) = setup();
            b.iter(|| std::hint::black_box(run_abm(&disk, &blocks, n)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = coop_scans
}
criterion_main!(benches);
