//! E2 — the defining X100 experiment: raw processing power as a function of
//! vector size.
//!
//! Data is entirely in memory (pre-built batches), so the measurement is
//! pure execution: at vector size 1 the engine degenerates to tuple-at-a-
//! time dispatch; at huge sizes intermediates fall out of cache (the
//! MonetDB regime); ~1K is the sweet spot (§I-A). The explicit
//! tuple-at-a-time interpreter is measured alongside as the "pipelined
//! engine" reference — the paper's ">10 times faster in terms of raw
//! processing power" claim is the ratio between it and the vectorized
//! engine at the sweet spot. Criterion reports element throughput, so the
//! two workload sizes (tiny vectors are benched on fewer rows to bound
//! memory) remain directly comparable per row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vw_bench::{drain, q1_like, q6_like, q6_like_tuple_at_a_time, MemWorkload};

const SMALL_ROWS: usize = 100_000;
const LARGE_ROWS: usize = 2_000_000;

fn vector_size(c: &mut Criterion) {
    let small = MemWorkload::generate(SMALL_ROWS);
    let large = MemWorkload::generate(LARGE_ROWS);

    let mut g = c.benchmark_group("vector_size_q6");
    g.sample_size(10);
    // tiny vectors: interpretation overhead dominates
    g.throughput(Throughput::Elements(SMALL_ROWS as u64));
    for vs in [1usize, 4, 16, 64] {
        let batches = small.batches(vs);
        g.bench_with_input(BenchmarkId::from_parameter(vs), &vs, |b, _| {
            b.iter(|| {
                let op = q6_like(small.source(&batches)).unwrap();
                std::hint::black_box(drain(op))
            })
        });
    }
    // cache-resident sweet spot through full materialization
    g.throughput(Throughput::Elements(LARGE_ROWS as u64));
    for vs in [256usize, 1024, 4096, 65_536, LARGE_ROWS] {
        let batches = large.batches(vs);
        g.bench_with_input(BenchmarkId::from_parameter(vs), &vs, |b, _| {
            b.iter(|| {
                let op = q6_like(large.source(&batches)).unwrap();
                std::hint::black_box(drain(op))
            })
        });
    }
    g.bench_function("tuple_at_a_time", |b| {
        b.iter(|| std::hint::black_box(q6_like_tuple_at_a_time(&large.rows)))
    });
    g.finish();

    let mut g = c.benchmark_group("vector_size_q1");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SMALL_ROWS as u64));
    for vs in [1usize, 16] {
        let batches = small.batches(vs);
        g.bench_with_input(BenchmarkId::from_parameter(vs), &vs, |b, _| {
            b.iter(|| {
                let op = q1_like(small.source(&batches)).unwrap();
                std::hint::black_box(drain(op))
            })
        });
    }
    g.throughput(Throughput::Elements(LARGE_ROWS as u64));
    for vs in [256usize, 1024, 4096, LARGE_ROWS] {
        let batches = large.batches(vs);
        g.bench_with_input(BenchmarkId::from_parameter(vs), &vs, |b, _| {
            b.iter(|| {
                let op = q1_like(large.source(&batches)).unwrap();
                std::hint::black_box(drain(op))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = vector_size
}
criterion_main!(benches);
