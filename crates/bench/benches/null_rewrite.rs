//! E8 — NULL handling by rewriting (§I-B).
//!
//! The paper: "To avoid making all query execution operators and functions
//! NULL-aware, and therefore more complex and slower, Vectorwise internally
//! represents NULLs as two columns ... operations on NULLable inputs are
//! rewritten into equivalent operations on two 'standard' relational
//! inputs."
//!
//! Measured here:
//! * the rewritten (indicator-algebra) path vs the naive branch-per-tuple
//!   NULL-checking interpreter, at 0%/10%/50% NULL fractions;
//! * that NULL-free data pays nothing: a non-nullable column through the
//!   rewritten path matches the no-indicator fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vw_common::{DataType, Field, Schema, Value};
use vw_core::batch::Batch;
use vw_core::operators::{BatchSource, BoxedOperator, HashAggregate, VecFilter};
use vw_plan::{AggExpr, AggFunc, BinOp, Expr};

const ROWS: usize = 1_000_000;

fn workload(null_permille: u64) -> (Schema, Vec<Batch>) {
    use vw_common::rng::Xoshiro256;
    let mut r = Xoshiro256::seeded(7);
    let nullable = null_permille > 0;
    let schema = Schema::new(vec![
        if nullable {
            Field::nullable("x", DataType::I64)
        } else {
            Field::new("x", DataType::I64)
        },
        Field::new("y", DataType::I64),
    ]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|_| {
            vec![
                if r.next_below(1000) < null_permille {
                    Value::Null
                } else {
                    Value::I64(r.range_i64(0, 1000))
                },
                Value::I64(r.range_i64(0, 1000)),
            ]
        })
        .collect();
    let batches = rows
        .chunks(1024)
        .map(|c| Batch::from_rows(&schema, c).unwrap())
        .collect();
    (schema, batches)
}

/// filter(x > 500 AND y < 900) → SUM(x + y): exercises comparison, Kleene
/// AND and arithmetic over a NULLable column.
fn pipeline(schema: &Schema, batches: &[Batch], naive: bool) -> BoxedOperator {
    let source = Box::new(BatchSource::new(schema.clone(), batches.to_vec()));
    let pred = Expr::and(
        Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(500))),
        Expr::binary(BinOp::Lt, Expr::col(1), Expr::lit(Value::I64(900))),
    );
    let filter = VecFilter::new(source, pred, naive).unwrap();
    Box::new(
        HashAggregate::new(
            Box::new(filter),
            vec![],
            vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1))),
                name: "s".into(),
            }],
            vw_plan::plan::AggPhase::Single,
            1024,
            naive,
        )
        .unwrap(),
    )
}

fn null_rewrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("null_rewrite");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    for permille in [0u64, 100, 500] {
        let (schema, batches) = workload(permille);
        g.bench_with_input(
            BenchmarkId::new("rewritten_indicators", permille),
            &permille,
            |b, _| {
                b.iter(|| std::hint::black_box(vw_bench::drain(pipeline(&schema, &batches, false))))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("naive_branch_per_tuple", permille),
            &permille,
            |b, _| {
                b.iter(|| std::hint::black_box(vw_bench::drain(pipeline(&schema, &batches, true))))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = null_rewrite
}
criterion_main!(benches);
