//! E5 — lightweight compression (PFOR family, reference [2] of the paper).
//!
//! Measures (a) decompression throughput per scheme on real TPC-H column
//! shapes — the paper's requirement is that decompression stays cheap
//! relative to I/O — and (b) end-to-end scan cost compressed vs forced-
//! plain under different simulated disk bandwidths, reproducing the
//! "compression keeps the engine I/O balanced" crossover: on slow disks
//! compressed wins outright; on very fast disks it approaches parity.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vw_storage::{compress_data, decompress_data, ColumnData, CompressionScheme};
use vw_tpch::TpchGenerator;

fn columns() -> Vec<(&'static str, ColumnData)> {
    let g = TpchGenerator::new(0.02);
    let rows = g.rows("lineitem");
    let pick = |idx: usize, ty: vw_common::DataType| {
        let vals: Vec<vw_common::Value> = rows.iter().map(|r| r[idx].clone()).collect();
        vw_storage::NullableColumn::from_values(ty, &vals)
            .unwrap()
            .data
    };
    vec![
        ("orderkey_sorted", pick(0, vw_common::DataType::I64)),
        ("partkey_uniform", pick(1, vw_common::DataType::I64)),
        ("shipdate", pick(10, vw_common::DataType::Date)),
        ("shipmode_dict", pick(14, vw_common::DataType::Str)),
        ("quantity_f64", pick(4, vw_common::DataType::F64)),
    ]
}

fn compression(c: &mut Criterion) {
    let cols = columns();

    let mut g = c.benchmark_group("decompress");
    g.sample_size(20);
    for (name, col) in &cols {
        let raw = col.uncompressed_bytes();
        let (scheme, bytes) = compress_data(col);
        g.throughput(Throughput::Bytes(raw as u64));
        g.bench_function(format!("{}/{}", name, scheme.name()), |b| {
            b.iter(|| std::hint::black_box(decompress_data(&bytes).unwrap().len()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("compress");
    g.sample_size(10);
    for (name, col) in &cols {
        g.throughput(Throughput::Bytes(col.uncompressed_bytes() as u64));
        g.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(compress_data(col).1.len()))
        });
    }
    g.finish();

    // End-to-end: (simulated I/O) + decode per scheme at several bandwidths.
    // The virtual I/O seconds are deterministic; the decode is measured;
    // together they reproduce the paper's bandwidth-balance argument. The
    // bench measures decode wall time; virtual I/O time per scheme and
    // bandwidth is printed once for EXPERIMENTS.md.
    let (name, col) = &cols[2]; // shipdate: realistic 2.6x PFOR column
    let raw_bytes = col.uncompressed_bytes();
    let plain = vw_storage::compress::compress_with(col, CompressionScheme::Plain);
    let (best_scheme, best) = compress_data(col);
    eprintln!(
        "\n[E5] scan cost model for `{}` ({} raw bytes):",
        name, raw_bytes
    );
    for mbps in [100.0f64, 500.0, 2000.0, 8000.0] {
        let io_plain = plain.len() as f64 / (mbps * 1e6);
        let io_comp = best.len() as f64 / (mbps * 1e6);
        eprintln!(
            "  {:>5.0} MB/s disk: plain I/O {:>7.2}ms vs {} I/O {:>7.2}ms (+decode, measured below)",
            mbps,
            io_plain * 1e3,
            best_scheme.name(),
            io_comp * 1e3,
        );
    }
    let mut g = c.benchmark_group("scan_decode");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(raw_bytes as u64));
    g.bench_function("plain", |b| {
        b.iter(|| std::hint::black_box(decompress_data(&plain).unwrap().len()))
    });
    g.bench_function(best_scheme.name(), |b| {
        b.iter(|| std::hint::black_box(decompress_data(&best).unwrap().len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = compression
}
criterion_main!(benches);
