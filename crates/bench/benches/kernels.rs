//! E9 — primitive-kernel microbenchmarks (§I-A "micro-adaptivity" context).
//!
//! The paper's execution layer lives or dies by per-primitive throughput:
//! comparisons, arithmetic maps, and selection-vector construction are the
//! inner loops every operator is built from, and the aggregation inner loop
//! is one hash probe (or, after this PR, one array index) per lane.
//!
//! Measured here, on 1M-value columns at vector granularity:
//! * comparison kernels (`cmp_lt_f64_cv`, `cmp_le_i64_cv`), dense and under
//!   a 50% selection vector;
//! * arithmetic maps (`map_mul_f64_cc`, the Q1/Q6 `price * discount` shape);
//! * `sel_from_bool` (filter → selection vector), at several selectivities;
//! * the aggregation inner loop: FxHashMap probe per lane vs the
//!   perfect-hash direct-array accumulator (`acc[code] += x`), the tentpole
//!   of this PR.
//!
//! Entirely offline and deterministic (seeded xoshiro data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use vw_common::hash::FxHashMap;
use vw_common::rng::Xoshiro256;
use vw_core::primitives::{cmp_le_i64_cv, cmp_lt_f64_cv, map_mul_f64_cc, sel_from_bool};

const ROWS: usize = 1 << 20;
const VEC: usize = 1024;

fn f64_data(seed: u64) -> Vec<f64> {
    let mut r = Xoshiro256::seeded(seed);
    (0..ROWS)
        .map(|_| (r.next_u64() % 10_000) as f64 / 100.0)
        .collect()
}

fn i64_data(seed: u64) -> Vec<i64> {
    let mut r = Xoshiro256::seeded(seed);
    (0..ROWS).map(|_| (r.next_u64() % 50) as i64).collect()
}

/// Every other lane selected — the worst case for branch prediction.
fn half_sel() -> Vec<u32> {
    (0..VEC as u32).step_by(2).collect()
}

fn bench_cmp(c: &mut Criterion) {
    let xs = f64_data(1);
    let qty = i64_data(2);
    let sel = half_sel();
    let mut g = c.benchmark_group("cmp");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("lt_f64_cv/dense", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for chunk in xs.chunks(VEC) {
                cmp_lt_f64_cv(chunk, &50.0, None, &mut out);
            }
        })
    });
    g.bench_function("lt_f64_cv/sel50", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for chunk in xs.chunks(VEC) {
                cmp_lt_f64_cv(
                    chunk,
                    &50.0,
                    Some(&sel[..sel.len().min(chunk.len() / 2)]),
                    &mut out,
                );
            }
        })
    });
    g.bench_function("le_i64_cv/dense", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for chunk in qty.chunks(VEC) {
                cmp_le_i64_cv(chunk, &24, None, &mut out);
            }
        })
    });
    g.finish();
}

fn bench_arith(c: &mut Criterion) {
    let price = f64_data(3);
    let disc = f64_data(4);
    let sel = half_sel();
    let mut g = c.benchmark_group("arith");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("mul_f64_cc/dense", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for (p, d) in price.chunks(VEC).zip(disc.chunks(VEC)) {
                map_mul_f64_cc(p, d, None, &mut out);
            }
        })
    });
    g.bench_function("mul_f64_cc/sel50", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for (p, d) in price.chunks(VEC).zip(disc.chunks(VEC)) {
                map_mul_f64_cc(p, d, Some(&sel[..sel.len().min(p.len() / 2)]), &mut out);
            }
        })
    });
    g.finish();
}

fn bench_sel_from_bool(c: &mut Criterion) {
    let mut r = Xoshiro256::seeded(5);
    let mut g = c.benchmark_group("sel_from_bool");
    g.throughput(Throughput::Elements(ROWS as u64));
    for pct in [2u64, 50, 98] {
        let bools: Vec<bool> = (0..ROWS).map(|_| r.next_u64() % 100 < pct).collect();
        g.bench_with_input(BenchmarkId::new("pass", pct), &bools, |b, bools| {
            let mut out = Vec::new();
            b.iter(|| {
                for chunk in bools.chunks(VEC) {
                    sel_from_bool(chunk, None, None, &mut out);
                }
            })
        });
    }
    g.finish();
}

/// The aggregation inner loop, isolated: 4 groups (the Q1 shape), one
/// accumulator update per value. The generic path pays a hash + probe per
/// lane; the perfect-hash path is a bounds-checked array index.
fn bench_agg_inner(c: &mut Criterion) {
    let codes = i64_data(6); // 0..50 — fits a direct array
    let vals = f64_data(7);
    let mut g = c.benchmark_group("agg_inner");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("hash_probe", |b| {
        b.iter(|| {
            let mut map: FxHashMap<i64, f64> = FxHashMap::default();
            for (k, v) in codes.iter().zip(&vals) {
                *map.entry(*k).or_insert(0.0) += v;
            }
            map.len()
        })
    });
    g.bench_function("direct_array", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f64; 64];
            for (k, v) in codes.iter().zip(&vals) {
                acc[*k as usize] += v;
            }
            acc.len()
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_cmp(c);
    bench_arith(c);
    bench_sel_from_bool(c);
    bench_agg_inner(c);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = benches
}
criterion_main!(kernels);
