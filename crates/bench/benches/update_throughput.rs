//! E9 — update throughput under the WAL (§I-C: "Some other effort was spent
//! in making updates faster, this was especially relevant in the throughput
//! runs").
//!
//! TPC-H-refresh-shaped transactions (RF1 insert batches, RF2 delete
//! batches) committed while analytical queries keep running, with the WAL's
//! per-commit flush on and off (group-commit style), plus the cost of a
//! read-only query for reference.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vw_bench::load_tpch;
use vw_common::Value;

fn update_throughput(c: &mut Criterion) {
    let (db, cat) = load_tpch(0.005);
    use vw_sql::CatalogView;
    let (orders_id, _) = db.resolve_table("orders").unwrap();
    let base_orders = db.table_rows("orders").unwrap();

    let mut g = c.benchmark_group("update_throughput");
    g.sample_size(10);

    for (label, sync) in [("fsync_per_commit", true), ("group_commit", false)] {
        db.set_sync_on_commit(sync);
        let mut next_key = 10_000_000i64;
        g.bench_with_input(BenchmarkId::new("rf1_insert_100", label), &sync, |b, _| {
            b.iter_batched(
                || {
                    // Keep the master PDT bounded between timed runs
                    // (checkpointing is maintenance, not commit cost).
                    if db.table_rows("orders").unwrap() > base_orders + 2000 {
                        db.checkpoint("orders").unwrap();
                    }
                },
                |_| {
                    let mut t = db.begin();
                    for _ in 0..100 {
                        next_key += 1;
                        t.append(
                            orders_id,
                            vec![
                                Value::I64(next_key),
                                Value::I64(1),
                                Value::Str("O".into()),
                                Value::F64(1000.0),
                                Value::Date(9500),
                                Value::Str("1-URGENT".into()),
                                Value::Str("Clerk#000000001".into()),
                                Value::I64(0),
                                Value::Str("refresh".into()),
                            ],
                        )
                        .unwrap();
                    }
                    db.commit(t).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
        db.checkpoint("orders").unwrap();
    }
    db.set_sync_on_commit(true);

    // RF2-style deletes of previously inserted refresh orders.
    g.bench_function("rf2_delete_refresh_batch", |b| {
        b.iter_batched(
            || {
                if db.table_rows("orders").unwrap() > base_orders + 2000 {
                    db.checkpoint("orders").unwrap();
                }
                // ensure there is something to delete
                let mut t = db.begin();
                for k in 0..100 {
                    t.append(
                        orders_id,
                        vec![
                            Value::I64(30_000_000 + k),
                            Value::I64(1),
                            Value::Str("O".into()),
                            Value::F64(1.0),
                            Value::Date(9500),
                            Value::Str("5-LOW".into()),
                            Value::Str("Clerk#000000003".into()),
                            Value::I64(0),
                            Value::Str("x".into()),
                        ],
                    )
                    .unwrap();
                }
                db.commit(t).unwrap();
            },
            |_| {
                // delete the refresh rows appended beyond the base image
                let mut t = db.begin();
                let pdt = t.effective_pdt(orders_id).unwrap();
                let rows = pdt.current_rows();
                let n = (rows.saturating_sub(base_orders)).min(100);
                for _ in 0..n {
                    let last = t.effective_pdt(orders_id).unwrap().current_rows() - 1;
                    t.delete_at(orders_id, last).unwrap();
                }
                db.commit(t).unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // Queries stay fast while the PDT holds refresh deltas.
    g.bench_function("q6_during_refresh_stream", |b| {
        let q6 = vw_tpch::queries::q6(&cat);
        let mut tick = 0i64;
        b.iter_batched(
            || {
                if db.table_rows("orders").unwrap() > base_orders + 2000 {
                    db.checkpoint("orders").unwrap();
                }
            },
            |_| {
                // one small refresh commit ...
                let mut t = db.begin();
                tick += 1;
                t.append(
                    orders_id,
                    vec![
                        Value::I64(20_000_000 + tick),
                        Value::I64(1),
                        Value::Str("O".into()),
                        Value::F64(1.0),
                        Value::Date(9500),
                        Value::Str("5-LOW".into()),
                        Value::Str("Clerk#000000002".into()),
                        Value::I64(0),
                        Value::Str("x".into()),
                    ],
                )
                .unwrap();
                db.commit(t).unwrap();
                // ... interleaved with the analytical query
                std::hint::black_box(db.run_plan(q6.clone()).unwrap().rows.len())
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = update_throughput
}
criterion_main!(benches);
