//! Measures profiling overhead on TPC-H Q1/Q6: runs each query with
//! per-operator profiling off and on and reports the best-of-N ratio (the
//! paper's claim: per-vector bookkeeping amortizes to noise).
//!
//! ```sh
//! cargo run --release -p vw-bench --example profile_overhead
//! TPCH_SF=0.1 ITERS=50 cargo run --release -p vw-bench --example profile_overhead
//! ```

use std::time::Instant;
use vw_bench::load_tpch;
use vw_tpch::all_queries;

fn main() {
    let sf: f64 = std::env::var("TPCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let iters: usize = std::env::var("ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let (db, cat) = load_tpch(sf);
    let queries = all_queries(&cat);
    for (n, plan) in queries.iter().filter(|(n, _)| *n == 1 || *n == 6) {
        let mut best = [f64::MAX; 2]; // [off, on]
        for (i, on) in [(0usize, false), (1, true)] {
            db.set_profiling(on);
            for _ in 0..iters {
                let t = Instant::now();
                let _ = db.run_plan(plan.clone()).expect("query");
                best[i] = best[i].min(t.elapsed().as_secs_f64());
            }
        }
        println!(
            "Q{n}: off {:.3}ms  on {:.3}ms  overhead {:+.2}%",
            best[0] * 1e3,
            best[1] * 1e3,
            (best[1] / best[0] - 1.0) * 100.0
        );
    }
    db.set_profiling(true);
}
