//! A deterministic simulated disk.
//!
//! The paper's experiments ran on real disk arrays; on a laptop-scale
//! reproduction the interesting quantity is not wall-clock I/O time but the
//! *amount of I/O* and how bandwidth is shared. `SimDisk` stores blocks in
//! memory and charges *virtual time* per read (`latency + bytes/bandwidth`),
//! so experiments E5 (compression vs bandwidth) and E6 (cooperative scans)
//! are reproducible bit-for-bit on any machine.
//!
//! Thread-safe: the buffer manager issues reads from many scan threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use vw_common::{BlockId, Result, VwError};

/// Physical characteristics of the simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimDiskConfig {
    /// Sustained sequential bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-request latency in seconds (seek + controller).
    pub latency_sec: f64,
}

impl Default for SimDiskConfig {
    fn default() -> Self {
        // A modest SATA SSD: 500 MB/s, 100µs per request.
        SimDiskConfig {
            bandwidth_bytes_per_sec: 500.0 * 1024.0 * 1024.0,
            latency_sec: 100e-6,
        }
    }
}

impl SimDiskConfig {
    /// A spinning-disk profile (the paper-era hardware): 150 MB/s, 4ms seeks.
    pub fn hdd() -> Self {
        SimDiskConfig {
            bandwidth_bytes_per_sec: 150.0 * 1024.0 * 1024.0,
            latency_sec: 4e-3,
        }
    }

    /// Custom bandwidth in MB/s with SSD-like latency.
    pub fn with_bandwidth_mb(mb_per_sec: f64) -> Self {
        SimDiskConfig {
            bandwidth_bytes_per_sec: mb_per_sec * 1024.0 * 1024.0,
            latency_sec: 100e-6,
        }
    }
}

/// Cumulative I/O counters. Virtual time is in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Encoded bytes a scan *avoided* reading (zone-map pruned groups and
    /// blocks whose predicates were decided without ever opening them).
    pub bytes_skipped: u64,
    pub virtual_read_ns: u64,
}

impl DiskStats {
    /// Counters accumulated since `earlier` (per-query deltas for profiling).
    /// Saturating, so a reset between snapshots yields zeros, not a panic.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_skipped: self.bytes_skipped.saturating_sub(earlier.bytes_skipped),
            virtual_read_ns: self.virtual_read_ns.saturating_sub(earlier.virtual_read_ns),
        }
    }
}

/// Block ids are allocated from one process-wide counter so that a block id
/// names a block *uniquely across disks* — the decode cache and the active
/// buffer manager key their entries by `BlockId`, and with range-partitioned
/// tables spreading row groups over several `SimDisk` devices, per-disk
/// counters would alias unrelated blocks.
static NEXT_BLOCK_ID: AtomicU64 = AtomicU64::new(1);

/// The simulated block device.
///
/// A disk may be *sharded* (see [`SimDisk::shard`]): shards model the member
/// devices of one array — each has its own label and independent virtual-I/O
/// counters (so bandwidth use is attributable per device), while the block
/// map is shared with the parent so that block-id-keyed readers (the buffer
/// manager, the decode cache, spill files) resolve any block of the family.
pub struct SimDisk {
    config: SimDiskConfig,
    /// Human-readable device name, surfaced in `vw_io` (e.g. `main`,
    /// `lineitem.p2`).
    label: String,
    blocks: Arc<RwLock<HashMap<BlockId, Arc<Vec<u8>>>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    bytes_skipped: AtomicU64,
    virtual_read_ns: AtomicU64,
}

impl SimDisk {
    pub fn new(config: SimDiskConfig) -> Self {
        SimDisk::with_label(config, "main")
    }

    /// A disk with an explicit device label (one per range partition).
    pub fn with_label(config: SimDiskConfig, label: impl Into<String>) -> Self {
        SimDisk {
            config,
            label: label.into(),
            blocks: Arc::new(RwLock::new(HashMap::new())),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_skipped: AtomicU64::new(0),
            virtual_read_ns: AtomicU64::new(0),
        }
    }

    pub fn default_disk() -> Arc<SimDisk> {
        Arc::new(SimDisk::new(SimDiskConfig::default()))
    }

    pub fn config(&self) -> SimDiskConfig {
        self.config
    }

    /// The device label shown in `vw_io`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// A member device of the same array: fresh label and fresh virtual-I/O
    /// counters (its own latency/bandwidth budget), sharing this disk's
    /// block map. Range-partitioned tables place each partition's row groups
    /// on a shard so per-device I/O stays attributable, while block ids —
    /// globally unique across disks — remain resolvable through any member.
    pub fn shard(&self, label: impl Into<String>) -> Arc<SimDisk> {
        Arc::new(SimDisk {
            config: self.config,
            label: label.into(),
            blocks: Arc::clone(&self.blocks),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_skipped: AtomicU64::new(0),
            virtual_read_ns: AtomicU64::new(0),
        })
    }

    /// Store a block, returning its id. Charges write counters only
    /// (writes happen at checkpoint time, off the query path).
    pub fn write_block(&self, bytes: Vec<u8>) -> BlockId {
        let id = BlockId::new(NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed));
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.blocks.write().unwrap().insert(id, Arc::new(bytes));
        id
    }

    /// Replace the contents of an existing block (checkpoint rewrite).
    pub fn overwrite_block(&self, id: BlockId, bytes: Vec<u8>) -> Result<()> {
        let mut guard = self.blocks.write().unwrap();
        if !guard.contains_key(&id) {
            return Err(VwError::Storage(format!("overwrite of unknown {}", id)));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        guard.insert(id, Arc::new(bytes));
        Ok(())
    }

    /// Read a block, charging virtual I/O time.
    pub fn read_block(&self, id: BlockId) -> Result<Arc<Vec<u8>>> {
        let block = self
            .blocks
            .read()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or_else(|| VwError::Storage(format!("read of unknown {}", id)))?;
        let secs =
            self.config.latency_sec + block.len() as f64 / self.config.bandwidth_bytes_per_sec;
        self.virtual_read_ns
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        Ok(block)
    }

    /// Record that `bytes` of stored data were *not* read thanks to pruning
    /// or encoded-predicate short-circuits (visibility into scan savings).
    pub fn note_skipped(&self, bytes: u64) {
        self.bytes_skipped.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Drop a block (table drop / checkpoint garbage collection).
    pub fn free_block(&self, id: BlockId) {
        self.blocks.write().unwrap().remove(&id);
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_skipped: self.bytes_skipped.load(Ordering::Relaxed),
            virtual_read_ns: self.virtual_read_ns.load(Ordering::Relaxed),
        }
    }

    /// Reset counters (between benchmark phases), keeping data.
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.bytes_skipped.store(0, Ordering::Relaxed);
        self.virtual_read_ns.store(0, Ordering::Relaxed);
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.read().unwrap().len()
    }

    /// Total stored bytes.
    pub fn stored_bytes(&self) -> usize {
        self.blocks.read().unwrap().values().map(|b| b.len()).sum()
    }

    /// Expose this disk's counters in a metrics registry as polled gauges:
    /// the existing atomics are read at snapshot time, so the I/O hot path
    /// pays nothing for being observable.
    pub fn register_metrics(self: &Arc<Self>, registry: &vw_common::MetricsRegistry) {
        type PolledStat = (&'static str, fn(&DiskStats) -> u64);
        let polled: [PolledStat; 6] = [
            ("disk_reads", |s: &DiskStats| s.reads),
            ("disk_writes", |s: &DiskStats| s.writes),
            ("disk_bytes_read", |s: &DiskStats| s.bytes_read),
            ("disk_bytes_written", |s: &DiskStats| s.bytes_written),
            ("disk_bytes_skipped", |s: &DiskStats| s.bytes_skipped),
            ("disk_virtual_read_ns", |s: &DiskStats| s.virtual_read_ns),
        ];
        for (name, get) in polled {
            let disk = Arc::clone(self);
            registry.register_polled(name, "", move || get(&disk.stats()) as f64);
        }
        let disk = Arc::clone(self);
        registry.register_polled("disk_stored_bytes", "", move || disk.stored_bytes() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let disk = SimDisk::new(SimDiskConfig::default());
        let id = disk.write_block(vec![1, 2, 3]);
        let back = disk.read_block(id).unwrap();
        assert_eq!(&**back, &[1, 2, 3]);
        assert!(disk.read_block(BlockId::new(999)).is_err());
    }

    #[test]
    fn virtual_time_charges_latency_plus_bandwidth() {
        let disk = SimDisk::new(SimDiskConfig {
            bandwidth_bytes_per_sec: 1_000_000.0, // 1 MB/s
            latency_sec: 0.001,                   // 1 ms
        });
        let id = disk.write_block(vec![0u8; 500_000]); // 0.5s transfer
        disk.read_block(id).unwrap();
        let stats = disk.stats();
        let secs = stats.virtual_read_ns as f64 / 1e9;
        assert!((0.499..0.503).contains(&secs), "virtual {}s", secs);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.bytes_read, 500_000);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let disk = SimDisk::new(SimDiskConfig::default());
        let id = disk.write_block(vec![0u8; 100]);
        disk.read_block(id).unwrap();
        disk.read_block(id).unwrap();
        assert_eq!(disk.stats().reads, 2);
        assert_eq!(disk.stats().bytes_read, 200);
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
        assert_eq!(disk.block_count(), 1);
    }

    #[test]
    fn skipped_bytes_are_tracked_and_reset() {
        let disk = SimDisk::new(SimDiskConfig::default());
        disk.note_skipped(1000);
        disk.note_skipped(24);
        assert_eq!(disk.stats().bytes_skipped, 1024);
        assert_eq!(disk.stats().reads, 0);
        let earlier = disk.stats();
        disk.note_skipped(6);
        assert_eq!(disk.stats().since(&earlier).bytes_skipped, 6);
        disk.reset_stats();
        assert_eq!(disk.stats().bytes_skipped, 0);
    }

    #[test]
    fn overwrite_and_free() {
        let disk = SimDisk::new(SimDiskConfig::default());
        let id = disk.write_block(vec![1]);
        disk.overwrite_block(id, vec![2, 3]).unwrap();
        assert_eq!(&**disk.read_block(id).unwrap(), &[2, 3]);
        assert!(disk.overwrite_block(BlockId::new(77), vec![]).is_err());
        disk.free_block(id);
        assert!(disk.read_block(id).is_err());
        assert_eq!(disk.block_count(), 0);
    }

    #[test]
    fn shards_share_blocks_but_not_counters() {
        let main = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let p0 = main.shard("t.p0");
        let p1 = main.shard("t.p1");
        assert_eq!(p0.label(), "t.p0");
        let a = p0.write_block(vec![1, 2]);
        let b = p1.write_block(vec![3, 4, 5]);
        assert_ne!(a, b);
        // Any family member resolves any block (buffer-manager paths)...
        assert_eq!(&**main.read_block(a).unwrap(), &[1, 2]);
        assert_eq!(&**p0.read_block(b).unwrap(), &[3, 4, 5]);
        // ...but counters stay per-device.
        assert_eq!(p0.stats().writes, 1);
        assert_eq!(p0.stats().bytes_written, 2);
        assert_eq!(p1.stats().bytes_written, 3);
        assert_eq!(main.stats().writes, 0);
        assert_eq!(main.stats().reads, 1);
        assert_eq!(p0.stats().reads, 1);
        p1.free_block(a);
        assert!(main.read_block(a).is_err());
    }

    #[test]
    fn concurrent_reads() {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let id = disk.write_block(vec![7u8; 1024]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = disk.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    assert_eq!(d.read_block(id).unwrap().len(), 1024);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(disk.stats().reads, 400);
    }
}
