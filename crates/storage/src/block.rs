//! Serialized column blocks and their MinMax ("zone map") metadata.
//!
//! A column block is the unit of storage I/O: one column's values for one row
//! group, compressed, preceded by its NULL indicator. MinMax statistics are
//! kept *outside* the block (in the table catalog) so scans can prune blocks
//! without reading them — Vectorwise's MinMax indexes (§I-A, [3]).

use crate::column::{ColumnData, NullableColumn};
use crate::compress::{compress_data, decompress_data, CompressionScheme};
use std::cmp::Ordering;
use vw_common::{BitVec, BlockId, Result, Value, VwError};

/// Min/max statistics over the *non-null* values of a block.
#[derive(Debug, Clone, PartialEq)]
pub enum MinMax {
    /// No stats (all-null block, empty block, or untracked type).
    None,
    Int {
        min: i64,
        max: i64,
    },
    Float {
        min: f64,
        max: f64,
    },
    Str {
        min: String,
        max: String,
    },
}

/// Comparison operators a zone map understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl MinMax {
    /// Compute stats from a column chunk, skipping NULL positions.
    pub fn from_column(col: &NullableColumn) -> MinMax {
        let n = col.len();
        let non_null = (0..n).filter(|&i| !col.is_null(i));
        match &col.data {
            ColumnData::I32(v) => int_minmax(non_null.map(|i| v[i] as i64)),
            ColumnData::I64(v) => int_minmax(non_null.map(|i| v[i])),
            ColumnData::F64(v) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut any = false;
                for i in non_null {
                    let x = v[i];
                    if x.is_nan() {
                        // NaN poisons ordering; give up on stats for the block.
                        return MinMax::None;
                    }
                    min = min.min(x);
                    max = max.max(x);
                    any = true;
                }
                if any {
                    MinMax::Float { min, max }
                } else {
                    MinMax::None
                }
            }
            ColumnData::Str(v) => {
                let mut min: Option<&str> = None;
                let mut max: Option<&str> = None;
                for i in non_null {
                    let s = v.get(i);
                    if min.is_none() || s < min.unwrap() {
                        min = Some(s);
                    }
                    if max.is_none() || s > max.unwrap() {
                        max = Some(s);
                    }
                }
                match (min, max) {
                    (Some(a), Some(b)) => MinMax::Str {
                        min: a.to_string(),
                        max: b.to_string(),
                    },
                    _ => MinMax::None,
                }
            }
            // Booleans as ints 0/1.
            ColumnData::Bool(v) => int_minmax(non_null.map(|i| v[i] as i64)),
        }
    }

    /// Can a block with these stats possibly contain a value satisfying
    /// `value <op> bound`? `false` means the whole block is prunable.
    pub fn may_match(&self, op: PruneOp, bound: &Value) -> bool {
        let (cmp_min, cmp_max) = match (self, bound) {
            (MinMax::None, _) => return true,
            (MinMax::Int { min, max }, b) => match b.as_i64() {
                Some(bv) => (min.cmp(&bv), max.cmp(&bv)),
                None => match b.as_f64() {
                    Some(bf) => (cmp_f(*min as f64, bf), cmp_f(*max as f64, bf)),
                    None => return true,
                },
            },
            (MinMax::Float { min, max }, b) => match b.as_f64() {
                Some(bf) => (cmp_f(*min, bf), cmp_f(*max, bf)),
                None => return true,
            },
            (MinMax::Str { min, max }, Value::Str(s)) => {
                (min.as_str().cmp(s.as_str()), max.as_str().cmp(s.as_str()))
            }
            _ => return true,
        };
        match op {
            PruneOp::Eq => cmp_min != Ordering::Greater && cmp_max != Ordering::Less,
            PruneOp::Lt => cmp_min == Ordering::Less,
            PruneOp::Le => cmp_min != Ordering::Greater,
            PruneOp::Gt => cmp_max == Ordering::Greater,
            PruneOp::Ge => cmp_max != Ordering::Less,
        }
    }
}

fn cmp_f(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

fn int_minmax(it: impl Iterator<Item = i64>) -> MinMax {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut any = false;
    for v in it {
        min = min.min(v);
        max = max.max(v);
        any = true;
    }
    if any {
        MinMax::Int { min, max }
    } else {
        MinMax::None
    }
}

/// Catalog entry for one stored column block.
#[derive(Debug, Clone)]
pub struct ColumnBlock {
    /// Where the encoded bytes live on the simulated disk.
    pub block_id: BlockId,
    /// Values in this block.
    pub n_values: usize,
    /// Compression scheme chosen for the value payload.
    pub scheme: CompressionScheme,
    /// Zone map over non-null values.
    pub minmax: MinMax,
    /// Whether the payload carries a NULL indicator.
    pub has_nulls: bool,
    /// Encoded size in bytes (compression-ratio accounting).
    pub encoded_bytes: usize,
    /// Uncompressed size of the values (compression-ratio accounting).
    pub raw_bytes: usize,
}

/// Encode a column chunk (values + indicator) into a self-describing payload.
pub fn encode_block(col: &NullableColumn) -> (Vec<u8>, CompressionScheme) {
    let mut out = Vec::new();
    match &col.nulls {
        Some(bits) if bits.any() => {
            out.push(1);
            out.extend_from_slice(&bits.to_bytes());
        }
        _ => out.push(0),
    }
    let (scheme, payload) = compress_data(&col.data);
    out.extend_from_slice(&payload);
    (out, scheme)
}

/// Decode a payload produced by [`encode_block`].
pub fn decode_block(bytes: &[u8]) -> Result<NullableColumn> {
    if bytes.is_empty() {
        return Err(VwError::Storage("empty block".into()));
    }
    let (nulls, off) = if bytes[0] == 1 {
        let (bits, used) = BitVec::from_bytes(&bytes[1..])
            .ok_or_else(|| VwError::Storage("corrupt null indicator".into()))?;
        (Some(bits), 1 + used)
    } else {
        (None, 1)
    };
    let data = decompress_data(&bytes[off..])?;
    if let Some(n) = &nulls {
        if n.len() != data.len() {
            return Err(VwError::Storage("indicator/data length mismatch".into()));
        }
    }
    Ok(NullableColumn::new(data, nulls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::StrColumn;
    use vw_common::DataType;

    #[test]
    fn minmax_int_and_pruning() {
        let col = NullableColumn::not_null(ColumnData::I64(vec![10, 20, 30]));
        let mm = MinMax::from_column(&col);
        assert_eq!(mm, MinMax::Int { min: 10, max: 30 });
        assert!(mm.may_match(PruneOp::Eq, &Value::I64(20)));
        assert!(!mm.may_match(PruneOp::Eq, &Value::I64(5)));
        assert!(!mm.may_match(PruneOp::Eq, &Value::I64(31)));
        assert!(mm.may_match(PruneOp::Lt, &Value::I64(11)));
        assert!(!mm.may_match(PruneOp::Lt, &Value::I64(10)));
        assert!(mm.may_match(PruneOp::Le, &Value::I64(10)));
        assert!(mm.may_match(PruneOp::Gt, &Value::I64(29)));
        assert!(!mm.may_match(PruneOp::Gt, &Value::I64(30)));
        assert!(mm.may_match(PruneOp::Ge, &Value::I64(30)));
        assert!(!mm.may_match(PruneOp::Ge, &Value::I64(31)));
        // cross-type: float bound against int stats
        assert!(mm.may_match(PruneOp::Gt, &Value::F64(29.5)));
        assert!(!mm.may_match(PruneOp::Gt, &Value::F64(30.5)));
    }

    #[test]
    fn minmax_skips_nulls() {
        let vals = vec![Value::Null, Value::I64(5), Value::Null, Value::I64(7)];
        let col = NullableColumn::from_values(DataType::I64, &vals).unwrap();
        assert_eq!(MinMax::from_column(&col), MinMax::Int { min: 5, max: 7 });
        let all_null =
            NullableColumn::from_values(DataType::I64, &[Value::Null, Value::Null]).unwrap();
        assert_eq!(MinMax::from_column(&all_null), MinMax::None);
        assert!(MinMax::None.may_match(PruneOp::Eq, &Value::I64(1)));
    }

    #[test]
    fn minmax_strings() {
        let col = NullableColumn::not_null(ColumnData::Str(StrColumn::from_iter([
            "delta", "alpha", "mike",
        ])));
        let mm = MinMax::from_column(&col);
        assert_eq!(
            mm,
            MinMax::Str {
                min: "alpha".into(),
                max: "mike".into()
            }
        );
        assert!(mm.may_match(PruneOp::Eq, &Value::Str("delta".into())));
        assert!(!mm.may_match(PruneOp::Eq, &Value::Str("zulu".into())));
        // unknown bound type → conservative keep
        assert!(mm.may_match(PruneOp::Eq, &Value::I64(1)));
    }

    #[test]
    fn minmax_float_nan_gives_up() {
        let col = NullableColumn::not_null(ColumnData::F64(vec![1.0, f64::NAN]));
        assert_eq!(MinMax::from_column(&col), MinMax::None);
        let col = NullableColumn::not_null(ColumnData::F64(vec![1.0, 2.0]));
        assert_eq!(
            MinMax::from_column(&col),
            MinMax::Float { min: 1.0, max: 2.0 }
        );
    }

    #[test]
    fn block_roundtrip_with_and_without_nulls() {
        let vals = vec![Value::I64(1), Value::Null, Value::I64(3)];
        let col = NullableColumn::from_values(DataType::I64, &vals).unwrap();
        let (bytes, _) = encode_block(&col);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back, col);

        let col2 = NullableColumn::not_null(ColumnData::I64(vec![4, 5, 6]));
        let (bytes2, _) = encode_block(&col2);
        let back2 = decode_block(&bytes2).unwrap();
        assert_eq!(back2, col2);
        assert!(back2.nulls.is_none());
    }

    #[test]
    fn decode_corrupt_block_errors() {
        assert!(decode_block(&[]).is_err());
        let col = NullableColumn::not_null(ColumnData::I64(vec![1]));
        let (bytes, _) = encode_block(&col);
        assert!(decode_block(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = 1; // claims nulls present, but payload is not a bitvec
        assert!(decode_block(&bad).is_err());
    }
}
