//! Uncompressed in-memory column representation.
//!
//! [`ColumnData`] is the *physical* shape of a column chunk: a dense typed
//! array. The logical type lives in the schema; logical `Date` maps onto
//! physical `I32`, which is how date columns get integer kernels and
//! PFOR-DELTA compression for free.
//!
//! NULLs follow the paper's two-column representation (§I-B): a value column
//! holding a "safe" value at NULL positions plus a separate indicator bitmap,
//! so kernels never branch on NULL.

use vw_common::{BitVec, DataType, Value, VwError};

/// Variable-length string column: concatenated bytes plus offsets.
/// `offsets.len() == n + 1`; string `i` is `bytes[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StrColumn {
    pub offsets: Vec<u32>,
    pub bytes: Vec<u8>,
}

impl StrColumn {
    pub fn new() -> Self {
        StrColumn {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    pub fn with_capacity(n: usize, byte_cap: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        StrColumn {
            offsets,
            bytes: Vec::with_capacity(byte_cap),
        }
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let s = self.offsets[i] as usize;
        let e = self.offsets[i + 1] as usize;
        // Storage only ever holds valid UTF-8 (built via `push`).
        std::str::from_utf8(&self.bytes[s..e]).expect("corrupt string column")
    }

    #[inline]
    pub fn get_bytes(&self, i: usize) -> &[u8] {
        let s = self.offsets[i] as usize;
        let e = self.offsets[i + 1] as usize;
        &self.bytes[s..e]
    }

    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len() as u32);
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Build from an iterator of string slices.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<'a>(it: impl IntoIterator<Item = &'a str>) -> Self {
        let mut c = StrColumn::new();
        for s in it {
            c.push(s);
        }
        c
    }
}

/// A dense, typed, uncompressed column chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(StrColumn),
}

impl ColumnData {
    /// The physical representation used for a logical type.
    pub fn physical_type(ty: DataType) -> DataType {
        match ty {
            DataType::Date => DataType::I32,
            other => other,
        }
    }

    /// An empty column of the physical representation of `ty`.
    pub fn empty(ty: DataType) -> Self {
        match Self::physical_type(ty) {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::I32 => ColumnData::I32(Vec::new()),
            DataType::I64 => ColumnData::I64(Vec::new()),
            DataType::F64 => ColumnData::F64(Vec::new()),
            DataType::Str => ColumnData::Str(StrColumn::new()),
            DataType::Date => unreachable!("date maps to i32"),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The "safe" placeholder stored at NULL positions (paper §I-B): any
    /// in-domain value works because the indicator column masks it out.
    pub fn push_safe_null(&mut self) {
        match self {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::I32(v) => v.push(0),
            ColumnData::I64(v) => v.push(0),
            ColumnData::F64(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(""),
        }
    }

    /// Append a non-null `Value`; errors on a type mismatch.
    pub fn push_value(&mut self, value: &Value) -> Result<(), VwError> {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(*b),
            (ColumnData::I32(v), Value::I32(x)) => v.push(*x),
            (ColumnData::I32(v), Value::Date(x)) => v.push(*x),
            (ColumnData::I64(v), Value::I64(x)) => v.push(*x),
            (ColumnData::I64(v), Value::I32(x)) => v.push(*x as i64),
            (ColumnData::F64(v), Value::F64(x)) => v.push(*x),
            (ColumnData::F64(v), Value::I32(x)) => v.push(*x as f64),
            (ColumnData::F64(v), Value::I64(x)) => v.push(*x as f64),
            (ColumnData::Str(v), Value::Str(s)) => v.push(s),
            (me, v) => {
                return Err(VwError::Storage(format!(
                    "cannot append {:?} to {} column",
                    v,
                    me.type_name()
                )))
            }
        }
        Ok(())
    }

    /// Read position `i` back as a `Value` with logical type `ty`.
    pub fn get_value(&self, i: usize, ty: DataType) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::I32(v) => {
                if ty == DataType::Date {
                    Value::Date(v[i])
                } else {
                    Value::I32(v[i])
                }
            }
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Str(v) => Value::Str(v.get(i).to_string()),
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Bool(_) => "bool",
            ColumnData::I32(_) => "i32",
            ColumnData::I64(_) => "i64",
            ColumnData::F64(_) => "f64",
            ColumnData::Str(_) => "str",
        }
    }

    /// Copy positions `[from, to)` into a new column (PAX group slicing).
    pub fn slice(&self, from: usize, to: usize) -> ColumnData {
        match self {
            ColumnData::Bool(v) => ColumnData::Bool(v[from..to].to_vec()),
            ColumnData::I32(v) => ColumnData::I32(v[from..to].to_vec()),
            ColumnData::I64(v) => ColumnData::I64(v[from..to].to_vec()),
            ColumnData::F64(v) => ColumnData::F64(v[from..to].to_vec()),
            ColumnData::Str(v) => {
                let mut out = StrColumn::new();
                for i in from..to {
                    out.push(v.get(i));
                }
                ColumnData::Str(out)
            }
        }
    }

    /// Heap bytes this chunk occupies uncompressed (for compression ratios).
    pub fn uncompressed_bytes(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::I32(v) => v.len() * 4,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::F64(v) => v.len() * 8,
            ColumnData::Str(v) => v.bytes.len() + v.offsets.len() * 4,
        }
    }
}

/// A column chunk plus its optional NULL indicator — the unit the rest of the
/// system passes around.
#[derive(Debug, Clone, PartialEq)]
pub struct NullableColumn {
    pub data: ColumnData,
    /// One bit per value; `true` = NULL. Absent means "no NULLs".
    pub nulls: Option<BitVec>,
}

impl NullableColumn {
    pub fn not_null(data: ColumnData) -> Self {
        NullableColumn { data, nulls: None }
    }

    pub fn new(data: ColumnData, nulls: Option<BitVec>) -> Self {
        if let Some(n) = &nulls {
            assert_eq!(n.len(), data.len(), "indicator length mismatch");
        }
        NullableColumn { data, nulls }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n.get(i))
    }

    pub fn null_count(&self) -> usize {
        self.nulls.as_ref().map_or(0, |n| n.count_ones())
    }

    /// Read position `i` as a `Value` with logical type `ty` (NULL-aware).
    pub fn get_value(&self, i: usize, ty: DataType) -> Value {
        if self.is_null(i) {
            Value::Null
        } else {
            self.data.get_value(i, ty)
        }
    }

    /// Drop the indicator if it is all-false (normalization after merges).
    pub fn normalize(mut self) -> Self {
        if let Some(n) = &self.nulls {
            if !n.any() {
                self.nulls = None;
            }
        }
        self
    }

    /// Build from `Value`s (bulk-load path). `ty` is the logical type.
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<Self, VwError> {
        let mut data = ColumnData::empty(ty);
        let mut nulls = BitVec::new();
        let mut any_null = false;
        for v in values {
            if v.is_null() {
                data.push_safe_null();
                nulls.push(true);
                any_null = true;
            } else {
                data.push_value(v)?;
                nulls.push(false);
            }
        }
        Ok(NullableColumn {
            data,
            nulls: if any_null { Some(nulls) } else { None },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_column_roundtrip() {
        let mut c = StrColumn::new();
        c.push("hello");
        c.push("");
        c.push("wörld");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), "hello");
        assert_eq!(c.get(1), "");
        assert_eq!(c.get(2), "wörld");
        assert_eq!(c.iter().collect::<Vec<_>>(), vec!["hello", "", "wörld"]);
        assert_eq!(c.get_bytes(2), "wörld".as_bytes());
    }

    #[test]
    fn date_maps_to_i32() {
        let mut c = ColumnData::empty(DataType::Date);
        assert_eq!(c.type_name(), "i32");
        c.push_value(&Value::Date(9000)).unwrap();
        assert_eq!(c.get_value(0, DataType::Date), Value::Date(9000));
        assert_eq!(c.get_value(0, DataType::I32), Value::I32(9000));
    }

    #[test]
    fn push_value_type_checks() {
        let mut c = ColumnData::empty(DataType::I64);
        c.push_value(&Value::I64(5)).unwrap();
        c.push_value(&Value::I32(6)).unwrap(); // implicit widen
        assert!(c.push_value(&Value::Str("x".into())).is_err());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_value(1, DataType::I64), Value::I64(6));
    }

    #[test]
    fn nullable_from_values() {
        let vals = vec![Value::I64(1), Value::Null, Value::I64(3)];
        let c = NullableColumn::from_values(DataType::I64, &vals).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get_value(1, DataType::I64), Value::Null);
        assert_eq!(c.get_value(2, DataType::I64), Value::I64(3));
        // safe value stored under the NULL
        assert_eq!(c.data.get_value(1, DataType::I64), Value::I64(0));
    }

    #[test]
    fn from_values_no_nulls_has_no_indicator() {
        let vals = vec![Value::F64(1.5), Value::F64(2.5)];
        let c = NullableColumn::from_values(DataType::F64, &vals).unwrap();
        assert!(c.nulls.is_none());
    }

    #[test]
    fn normalize_drops_empty_indicator() {
        let data = ColumnData::I32(vec![1, 2]);
        let c = NullableColumn::new(data, Some(BitVec::filled(2, false))).normalize();
        assert!(c.nulls.is_none());
        let data = ColumnData::I32(vec![1, 2]);
        let mut bits = BitVec::filled(2, false);
        bits.set(0, true);
        let c = NullableColumn::new(data, Some(bits)).normalize();
        assert!(c.nulls.is_some());
    }

    #[test]
    fn slicing() {
        let c = ColumnData::Str(StrColumn::from_iter(["a", "bb", "ccc", "dddd"]));
        let s = c.slice(1, 3);
        match s {
            ColumnData::Str(sc) => {
                assert_eq!(sc.iter().collect::<Vec<_>>(), vec!["bb", "ccc"]);
            }
            _ => panic!(),
        }
        let c = ColumnData::I64(vec![10, 20, 30]);
        assert_eq!(c.slice(0, 2), ColumnData::I64(vec![10, 20]));
    }

    #[test]
    fn uncompressed_sizes() {
        assert_eq!(ColumnData::I32(vec![0; 10]).uncompressed_bytes(), 40);
        assert_eq!(ColumnData::F64(vec![0.0; 10]).uncompressed_bytes(), 80);
        let s = ColumnData::Str(StrColumn::from_iter(["ab", "c"]));
        assert_eq!(s.uncompressed_bytes(), 3 + 3 * 4);
    }
}
