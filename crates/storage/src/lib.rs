//! `vw-storage` — columnar storage for vectorwise-rs.
//!
//! The paper (§I-A) describes Vectorwise storage as a column store with
//! hybrid PAX/DSM layout, lightweight compression (PFOR and friends, [2])
//! chosen per block, and MinMax metadata for scan pruning. This crate builds
//! all of that:
//!
//! * [`column`] — uncompressed in-memory column representation (the form the
//!   execution engine consumes),
//! * [`compress`] — PFOR, PFOR-DELTA, PDICT, RLE and plain codecs with a
//!   cost-based per-block scheme chooser,
//! * [`block`] — self-describing serialized column blocks with MinMax stats,
//! * [`cursor`] — lazy per-block cursors: vector-granular decode and
//!   predicate evaluation directly on the encoded data,
//! * [`simdisk`] — a deterministic simulated disk that charges virtual I/O
//!   time (substitute for the paper's real disk arrays; see DESIGN.md),
//! * [`table`] — PAX-grouped table storage: row groups of column blocks,
//!   bulk load, per-group reads, zone-map pruning.

pub mod block;
pub mod column;
pub mod compress;
pub mod cursor;
pub mod simdisk;
pub mod spill;
pub mod table;

pub use block::{ColumnBlock, MinMax, PruneOp};
pub use column::{ColumnData, NullableColumn, StrColumn};
pub use compress::{compress_data, decompress_data, CompressionScheme};
pub use cursor::{BlockCursor, Pred, PredOp};
pub use simdisk::{DiskStats, SimDisk, SimDiskConfig};
pub use spill::{SpillCol, SpillFile, SpilledCol};
pub use table::{concat_columns, read_all_columns, RowGroup, TableBuilder, TableStorage};
