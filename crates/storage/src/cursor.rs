//! Lazy block cursors: vector-granular decode and predicate evaluation on
//! encoded data.
//!
//! The eager path (`decode_block`) decompresses a whole 64K-value block
//! before the first predicate runs. A [`BlockCursor`] instead parses the
//! block header once and then decodes one ~1K-row vector slice at a time
//! (`decode_slice`), so a selective scan never materializes vectors it is
//! about to discard. [`BlockCursor::eval_pred`] goes further and evaluates
//! simple predicates directly on the encoded form:
//!
//! - **PFOR**: the literal is translated into delta space once
//!   (`lit - base`); packed deltas are compared as unsigned ints without
//!   reconstructing values, and the rare exceptions are patched afterwards.
//! - **RLE**: one comparison per run, emitting selection ranges in O(runs).
//! - **PDICT**: string equality/IN/range predicates are rewritten into
//!   dictionary-code space once per block (a bitmap over codes); each value
//!   then costs a bit-packed code load and one bitmap probe.
//!
//! [`Pred::decide`] additionally lets callers skip a block (or drop a
//! predicate) when the catalog MinMax already decides it.

use crate::block::{MinMax, PruneOp};
use crate::column::{ColumnData, NullableColumn, StrColumn};
use crate::compress::bitpack::{packed_len, unpack_range};
use crate::compress::{CompressionScheme, PHYS_BOOL, PHYS_F64, PHYS_I32, PHYS_I64, PHYS_STR};
use std::cmp::Ordering;
use std::sync::Arc;
use vw_common::{BitVec, Result, Value, VwError};

fn err(msg: &str) -> VwError {
    VwError::Storage(format!("corrupt block: {}", msg))
}

fn type_err(col: &str) -> VwError {
    VwError::Storage(format!("predicate value type mismatch on {} column", col))
}

/// Comparison operator of a pushed-down predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl PredOp {
    /// Does `ord = value.cmp(literal)` satisfy this operator?
    #[inline]
    fn matches_ord(self, ord: Ordering) -> bool {
        match self {
            PredOp::Eq => ord == Ordering::Equal,
            PredOp::Ne => ord != Ordering::Equal,
            PredOp::Lt => ord == Ordering::Less,
            PredOp::Le => ord != Ordering::Greater,
            PredOp::Gt => ord == Ordering::Greater,
            PredOp::Ge => ord != Ordering::Less,
        }
    }

    /// IEEE float comparison (NaN never matches except through `Ne`),
    /// mirroring the vectorized comparison kernels.
    #[inline]
    fn matches_f64(self, a: f64, b: f64) -> bool {
        match self {
            PredOp::Eq => a == b,
            PredOp::Ne => a != b,
            PredOp::Lt => a < b,
            PredOp::Le => a <= b,
            PredOp::Gt => a > b,
            PredOp::Ge => a >= b,
        }
    }
}

/// A predicate simple enough to push into the scan and evaluate inside the
/// codec cursor: `col <op> literal`, or a string IN-list.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    Cmp { op: PredOp, value: Value },
    InStr { values: Vec<String>, negated: bool },
}

impl Pred {
    /// Decide the predicate for a whole block from its zone map, if possible.
    ///
    /// `Some(false)`: no row can match — skip the block without reading it.
    /// `Some(true)`: every row matches (only claimed when the block has no
    /// NULLs, since NULL rows never match) — the predicate can be dropped.
    /// `None`: must be evaluated row by row.
    pub fn decide(&self, mm: &MinMax, has_nulls: bool) -> Option<bool> {
        match self {
            Pred::Cmp { op, value } => {
                let may = |p: PruneOp| mm.may_match(p, value);
                let all_false = match op {
                    PredOp::Eq => !may(PruneOp::Eq),
                    PredOp::Lt => !may(PruneOp::Lt),
                    PredOp::Le => !may(PruneOp::Le),
                    PredOp::Gt => !may(PruneOp::Gt),
                    PredOp::Ge => !may(PruneOp::Ge),
                    // all values equal the literal <=> none below and none above
                    PredOp::Ne => !may(PruneOp::Lt) && !may(PruneOp::Gt),
                };
                if all_false {
                    return Some(false);
                }
                if !has_nulls {
                    let all_true = match op {
                        PredOp::Eq => !may(PruneOp::Lt) && !may(PruneOp::Gt),
                        PredOp::Ne => !may(PruneOp::Eq),
                        PredOp::Lt => !may(PruneOp::Ge),
                        PredOp::Le => !may(PruneOp::Gt),
                        PredOp::Gt => !may(PruneOp::Le),
                        PredOp::Ge => !may(PruneOp::Lt),
                    };
                    if all_true {
                        return Some(true);
                    }
                }
                None
            }
            Pred::InStr { values, negated } => {
                if !*negated
                    && values
                        .iter()
                        .all(|s| !mm.may_match(PruneOp::Eq, &Value::Str(s.clone())))
                {
                    return Some(false);
                }
                None
            }
        }
    }
}

/// Parsed PFOR frame: everything needed to decode any sub-range.
struct Frame {
    base: i64,
    width: u32,
    /// Absolute `[start, end)` of the packed section within the block bytes.
    packed: (usize, usize),
    exc_pos: Vec<u32>,
    exc_val: Vec<i64>,
}

struct DictState {
    dict: Arc<StrColumn>,
    /// Absolute offset of the packed codes within the block bytes.
    codes_start: usize,
    width: u32,
    /// Per-predicate bitmap over dictionary codes, built once per block.
    pred_sets: Vec<(Pred, Vec<bool>)>,
}

enum State {
    Bool(BitVec),
    PlainInt {
        width: usize,
    },
    PlainF64,
    PlainStr {
        /// Absolute offset of the string bytes / the offsets array.
        str_start: usize,
        offs_start: usize,
    },
    Rle {
        vals: Vec<[u8; 8]>,
        /// Cumulative run starts; `starts.len() == vals.len() + 1`.
        starts: Vec<usize>,
    },
    Pfor(Frame),
    PforDelta {
        frame: Frame,
        /// Prefix-sum resume point: `acc` is the running value through
        /// delta `pos - 1`. `ck` checkpoints the start of the last slice so
        /// an `eval_pred` immediately followed by `decode_slice` of the same
        /// vector does not re-walk the prefix.
        pos: usize,
        acc: i64,
        ck: Option<(usize, i64)>,
    },
    Pdict(DictState),
}

/// A positioned decoder over one encoded column block.
pub struct BlockCursor {
    bytes: Arc<Vec<u8>>,
    n: usize,
    phys: u8,
    scheme: CompressionScheme,
    body: usize,
    nulls: Option<BitVec>,
    state: State,
}

impl std::fmt::Debug for BlockCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCursor")
            .field("n", &self.n)
            .field("scheme", &self.scheme)
            .field("phys", &self.phys)
            .field("has_nulls", &self.nulls.is_some())
            .finish()
    }
}

impl BlockCursor {
    /// Parse the block framing and codec header without decoding values.
    /// Accepts exactly the payloads produced by `encode_block`.
    pub fn new(bytes: Arc<Vec<u8>>) -> Result<BlockCursor> {
        if bytes.is_empty() {
            return Err(VwError::Storage("empty block".into()));
        }
        let (nulls, off) = if bytes[0] == 1 {
            let (bits, used) = BitVec::from_bytes(&bytes[1..])
                .ok_or_else(|| VwError::Storage("corrupt null indicator".into()))?;
            (Some(bits), 1 + used)
        } else {
            (None, 1)
        };
        if bytes.len() < off + 6 {
            return Err(err("short header"));
        }
        let phys = bytes[off];
        let scheme = CompressionScheme::from_u8(bytes[off + 1]).ok_or_else(|| err("bad scheme"))?;
        let n = u32::from_le_bytes(bytes[off + 2..off + 6].try_into().unwrap()) as usize;
        if let Some(b) = &nulls {
            if b.len() != n {
                return Err(VwError::Storage("indicator/data length mismatch".into()));
            }
        }
        let body = off + 6;
        let state = parse_state(&bytes, body, phys, scheme, n)?;
        Ok(BlockCursor {
            bytes,
            n,
            phys,
            scheme,
            body,
            nulls,
            state,
        })
    }

    /// Values in the block.
    pub fn n(&self) -> usize {
        self.n
    }

    pub fn scheme(&self) -> CompressionScheme {
        self.scheme
    }

    pub fn has_nulls(&self) -> bool {
        self.nulls.is_some()
    }

    /// Decode values `[from, to)` into a column chunk with its indicator.
    pub fn decode_slice(&mut self, from: usize, to: usize) -> Result<NullableColumn> {
        if from > to || to > self.n {
            return Err(err("slice out of range"));
        }
        let bytes: &[u8] = &self.bytes;
        let phys = self.phys;
        let data = match &mut self.state {
            State::Bool(bits) => ColumnData::Bool((from..to).map(|i| bits.get(i)).collect()),
            State::PlainInt { width } => {
                let w = *width;
                let start = self.body + from * w;
                let mut wide = Vec::with_capacity(to - from);
                for i in 0..(to - from) {
                    let mut buf = [0u8; 8];
                    buf[..w].copy_from_slice(&bytes[start + i * w..start + (i + 1) * w]);
                    let mut v = i64::from_le_bytes(buf);
                    if w == 4 {
                        // sign-extend 4-byte values
                        v = (v as i32) as i64;
                    }
                    wide.push(v);
                }
                int_data(phys, wide)?
            }
            State::PlainF64 => {
                let start = self.body + from * 8;
                ColumnData::F64(
                    (0..to - from)
                        .map(|i| {
                            f64::from_le_bytes(
                                bytes[start + i * 8..start + i * 8 + 8].try_into().unwrap(),
                            )
                        })
                        .collect(),
                )
            }
            State::PlainStr {
                str_start,
                offs_start,
            } => {
                let (ss, os) = (*str_start, *offs_start);
                let off_at = |i: usize| {
                    u32::from_le_bytes(bytes[os + i * 4..os + i * 4 + 4].try_into().unwrap())
                        as usize
                };
                let base = off_at(from);
                let mut offsets = Vec::with_capacity(to - from + 1);
                for i in from..=to {
                    offsets.push((off_at(i) - base) as u32);
                }
                let end = off_at(to);
                ColumnData::Str(StrColumn {
                    offsets,
                    bytes: bytes[ss + base..ss + end].to_vec(),
                })
            }
            State::Rle { vals, starts } => {
                let raw = rle_slice(vals, starts, from, to);
                match phys {
                    PHYS_F64 => {
                        ColumnData::F64(raw.iter().map(|b| f64::from_le_bytes(*b)).collect())
                    }
                    _ => int_data(phys, raw.iter().map(|b| i64::from_le_bytes(*b)).collect())?,
                }
            }
            State::Pfor(f) => int_data(phys, frame_values(f, bytes, from, to))?,
            State::PforDelta {
                frame,
                pos,
                acc,
                ck,
            } => int_data(phys, delta_values(frame, bytes, pos, acc, ck, from, to))?,
            State::Pdict(d) => {
                let codes = unpack_range(
                    &bytes[d.codes_start..d.codes_start + packed_len(self.n, d.width)],
                    from,
                    to,
                    d.width,
                );
                let mut out = StrColumn::with_capacity(to - from, 0);
                for c in codes {
                    let c = c as usize;
                    if c >= d.dict.len() {
                        return Err(err("pdict code"));
                    }
                    out.push(d.dict.get(c));
                }
                ColumnData::Str(out)
            }
        };
        let nulls = self
            .nulls
            .as_ref()
            .map(|b| (from..to).map(|i| b.get(i)).collect::<BitVec>());
        Ok(NullableColumn::new(data, nulls).normalize())
    }

    /// Evaluate a predicate over values `[from, to)` directly on the encoded
    /// data where the codec allows it, decoding internally otherwise.
    /// Returns matching positions relative to `from`, ascending, with NULL
    /// positions excluded (SQL: NULL never satisfies a comparison).
    pub fn eval_pred(&mut self, pred: &Pred, from: usize, to: usize) -> Result<Vec<u32>> {
        if from > to || to > self.n {
            return Err(err("slice out of range"));
        }
        let phys = self.phys;
        // An integer column compared against a float literal (`quantity <
        // 24.0`) is rewritten into integer space, so the encoded fast paths
        // below apply and the fallback compares ints instead of converting
        // every value to f64.
        let norm;
        let pred = match (phys, pred) {
            (PHYS_I32 | PHYS_I64, Pred::Cmp { op, value }) => match value {
                Value::F64(l) => match int_space_pred(*op, *l) {
                    IntSpace::Pred(p) => {
                        norm = p;
                        &norm
                    }
                    IntSpace::Empty => return Ok(Vec::new()),
                    IntSpace::All => {
                        let all = (0..(to - from) as u32).collect();
                        return Ok(filter_nulls(&self.nulls, from, all));
                    }
                    IntSpace::Keep => pred,
                },
                _ => pred,
            },
            _ => pred,
        };
        enum Fast {
            Pfor,
            Rle,
            Pdict,
            PlainF64,
            No,
        }
        let fast = match (&self.state, pred) {
            (State::Pfor(_), Pred::Cmp { value, .. })
                if (phys == PHYS_I32 || phys == PHYS_I64) && value.as_i64().is_some() =>
            {
                Fast::Pfor
            }
            (State::Rle { .. }, Pred::Cmp { .. }) => Fast::Rle,
            (State::Pdict(_), _) => Fast::Pdict,
            (State::PlainF64, Pred::Cmp { value, .. }) if value.as_f64().is_some() => {
                Fast::PlainF64
            }
            _ => Fast::No,
        };
        let raw = match fast {
            Fast::Pfor => {
                let State::Pfor(f) = &self.state else {
                    unreachable!()
                };
                let Pred::Cmp { op, value } = pred else {
                    unreachable!()
                };
                pfor_eval(f, &self.bytes, *op, value.as_i64().unwrap(), from, to)
            }
            Fast::Rle => {
                let State::Rle { vals, starts } = &self.state else {
                    unreachable!()
                };
                let Pred::Cmp { op, value } = pred else {
                    unreachable!()
                };
                rle_eval(vals, starts, phys, *op, value, from, to)?
            }
            Fast::Pdict => {
                let bytes = Arc::clone(&self.bytes);
                let n = self.n;
                let State::Pdict(d) = &mut self.state else {
                    unreachable!()
                };
                pdict_eval(d, &bytes, n, pred, from, to)?
            }
            Fast::PlainF64 => {
                let Pred::Cmp { op, value } = pred else {
                    unreachable!()
                };
                plain_f64_eval(
                    &self.bytes,
                    self.body,
                    *op,
                    value.as_f64().unwrap(),
                    from,
                    to,
                )
            }
            Fast::No => self.eval_generic(pred, from, to)?,
        };
        Ok(filter_nulls(&self.nulls, from, raw))
    }

    /// For PDICT blocks: the per-block dictionary plus the unpacked codes for
    /// values `[from, to)` — the raw material for dictionary-aware consumers
    /// (the fused aggregation path groups by code without materializing
    /// strings). Returns `None` for any other encoding, or if a code is out
    /// of the dictionary's range (the caller then decodes normally and gets
    /// a proper corruption error).
    pub fn dict_codes(&self, from: usize, to: usize) -> Option<(Vec<u32>, Arc<StrColumn>)> {
        if from > to || to > self.n {
            return None;
        }
        let State::Pdict(d) = &self.state else {
            return None;
        };
        let raw = unpack_range(
            &self.bytes[d.codes_start..d.codes_start + packed_len(self.n, d.width)],
            from,
            to,
            d.width,
        );
        if raw.iter().any(|&c| c as usize >= d.dict.len()) {
            return None;
        }
        Some((raw.iter().map(|&c| c as u32).collect(), Arc::clone(&d.dict)))
    }

    /// NULL indicator for values `[from, to)`, widened to byte-per-value;
    /// `None` when the block has no NULLs.
    pub fn nulls_slice(&self, from: usize, to: usize) -> Option<Vec<bool>> {
        self.nulls
            .as_ref()
            .map(|b| (from..to).map(|i| b.get(i)).collect())
    }

    /// Fallback: decode the slice and compare value by value. Still
    /// vector-granular — PFOR-DELTA keeps its resume checkpoint so the
    /// materializing `decode_slice` that usually follows is cheap.
    fn eval_generic(&mut self, pred: &Pred, from: usize, to: usize) -> Result<Vec<u32>> {
        let col = self.decode_slice(from, to)?;
        let mut sel = Vec::new();
        for i in 0..col.len() {
            if col.is_null(i) {
                continue;
            }
            if value_matches(&col.data, i, pred)? {
                sel.push(i as u32);
            }
        }
        Ok(sel)
    }
}

fn parse_state(
    bytes: &[u8],
    body: usize,
    phys: u8,
    scheme: CompressionScheme,
    n: usize,
) -> Result<State> {
    use CompressionScheme as S;
    let b = &bytes[body..];
    match (phys, scheme) {
        (PHYS_BOOL, S::Plain) => {
            let (bits, _) = BitVec::from_bytes(b).ok_or_else(|| err("bitmap"))?;
            if bits.len() != n {
                return Err(err("bitmap length"));
            }
            Ok(State::Bool(bits))
        }
        (PHYS_I32 | PHYS_I64, S::Plain) => {
            let width = if phys == PHYS_I32 { 4 } else { 8 };
            if b.len() < n * width {
                return Err(err("plain ints"));
            }
            Ok(State::PlainInt { width })
        }
        (PHYS_I32 | PHYS_I64 | PHYS_F64, S::Rle) => parse_rle(b, n),
        (PHYS_I32 | PHYS_I64, S::Pfor) => Ok(State::Pfor(parse_frame(b, body, n)?)),
        (PHYS_I32 | PHYS_I64, S::PforDelta) => Ok(State::PforDelta {
            frame: parse_frame(b, body, n)?,
            pos: 0,
            acc: 0,
            ck: None,
        }),
        (PHYS_F64, S::Plain) => {
            if b.len() < n * 8 {
                return Err(err("plain f64"));
            }
            Ok(State::PlainF64)
        }
        (PHYS_STR, S::Pdict) => parse_dict(b, body, n),
        (PHYS_STR, S::Plain) => parse_plain_str(b, body, n),
        _ => Err(err("bad scheme for physical type")),
    }
}

fn parse_frame(b: &[u8], body: usize, n: usize) -> Result<Frame> {
    if b.len() < 13 {
        return Err(err("pfor header"));
    }
    let base = i64::from_le_bytes(b[0..8].try_into().unwrap());
    let width = b[8] as u32;
    if width > 64 {
        return Err(err("pfor width"));
    }
    let n_exc = u32::from_le_bytes(b[9..13].try_into().unwrap()) as usize;
    let plen = packed_len(n, width);
    if b.len() < 13 + plen + n_exc * 12 {
        return Err(err("pfor body"));
    }
    let pos_start = 13 + plen;
    let val_start = pos_start + n_exc * 4;
    let mut exc_pos = Vec::with_capacity(n_exc);
    let mut exc_val = Vec::with_capacity(n_exc);
    let mut prev: Option<u32> = None;
    for i in 0..n_exc {
        let p = u32::from_le_bytes(
            b[pos_start + i * 4..pos_start + i * 4 + 4]
                .try_into()
                .unwrap(),
        );
        // The encoder emits positions strictly ascending; range slicing
        // relies on it, so reject anything else as corrupt.
        if p as usize >= n || prev.is_some_and(|q| q >= p) {
            return Err(err("pfor exceptions"));
        }
        prev = Some(p);
        exc_pos.push(p);
        exc_val.push(i64::from_le_bytes(
            b[val_start + i * 8..val_start + i * 8 + 8]
                .try_into()
                .unwrap(),
        ));
    }
    Ok(Frame {
        base,
        width,
        packed: (body + 13, body + 13 + plen),
        exc_pos,
        exc_val,
    })
}

fn parse_rle(b: &[u8], n: usize) -> Result<State> {
    if b.len() < 4 {
        return Err(err("rle header"));
    }
    let n_runs = u32::from_le_bytes(b[0..4].try_into().unwrap()) as usize;
    if b.len() < 4 + n_runs * 12 {
        return Err(err("rle body"));
    }
    let mut vals = Vec::with_capacity(n_runs);
    let mut starts = Vec::with_capacity(n_runs + 1);
    starts.push(0usize);
    let mut total = 0usize;
    for i in 0..n_runs {
        let s = 4 + i * 12;
        vals.push(b[s..s + 8].try_into().unwrap());
        total += u32::from_le_bytes(b[s + 8..s + 12].try_into().unwrap()) as usize;
        starts.push(total);
    }
    if total != n {
        return Err(err("rle length"));
    }
    Ok(State::Rle { vals, starts })
}

fn parse_dict(b: &[u8], body: usize, n: usize) -> Result<State> {
    if b.len() < 8 {
        return Err(err("pdict header"));
    }
    let n_dict = u32::from_le_bytes(b[0..4].try_into().unwrap()) as usize;
    let dict_bytes_len = u32::from_le_bytes(b[4..8].try_into().unwrap()) as usize;
    let mut off = 8;
    if b.len() < off + dict_bytes_len + (n_dict + 1) * 4 + 1 {
        return Err(err("pdict body"));
    }
    let dict_bytes = &b[off..off + dict_bytes_len];
    off += dict_bytes_len;
    let mut offsets = Vec::with_capacity(n_dict + 1);
    for i in 0..=n_dict {
        offsets
            .push(u32::from_le_bytes(b[off + i * 4..off + i * 4 + 4].try_into().unwrap()) as usize);
    }
    off += (n_dict + 1) * 4;
    let width = b[off] as u32;
    off += 1;
    if width > 32 || b.len() < off + packed_len(n, width) {
        return Err(err("pdict codes"));
    }
    let mut dict = StrColumn::with_capacity(n_dict, dict_bytes_len);
    for c in 0..n_dict {
        if offsets[c] > offsets[c + 1] || offsets[c + 1] > dict_bytes.len() {
            return Err(err("pdict offsets"));
        }
        dict.push(
            std::str::from_utf8(&dict_bytes[offsets[c]..offsets[c + 1]])
                .map_err(|_| err("pdict utf8"))?,
        );
    }
    Ok(State::Pdict(DictState {
        dict: Arc::new(dict),
        codes_start: body + off,
        width,
        pred_sets: Vec::new(),
    }))
}

fn parse_plain_str(b: &[u8], body: usize, n: usize) -> Result<State> {
    if b.len() < 4 {
        return Err(err("plain str header"));
    }
    let nbytes = u32::from_le_bytes(b[0..4].try_into().unwrap()) as usize;
    let need = 4 + nbytes + (n + 1) * 4;
    if b.len() < need {
        return Err(err("plain str body"));
    }
    let obase = 4 + nbytes;
    let mut prev = 0u32;
    for i in 0..=n {
        let o = u32::from_le_bytes(b[obase + i * 4..obase + i * 4 + 4].try_into().unwrap());
        if o < prev || o as usize > nbytes {
            return Err(err("str offsets"));
        }
        prev = o;
    }
    std::str::from_utf8(&b[4..4 + nbytes]).map_err(|_| err("utf8"))?;
    Ok(State::PlainStr {
        str_start: body + 4,
        offs_start: body + 4 + nbytes,
    })
}

/// Widened i64 values back to their physical column type.
fn int_data(phys: u8, wide: Vec<i64>) -> Result<ColumnData> {
    if phys == PHYS_I32 {
        let narrow: Option<Vec<i32>> = wide.iter().map(|&v| i32::try_from(v).ok()).collect();
        Ok(ColumnData::I32(narrow.ok_or_else(|| err("i32 overflow"))?))
    } else {
        Ok(ColumnData::I64(wide))
    }
}

fn rle_slice(vals: &[[u8; 8]], starts: &[usize], from: usize, to: usize) -> Vec<[u8; 8]> {
    let mut out = Vec::with_capacity(to - from);
    if from == to {
        return out;
    }
    let mut r = starts.partition_point(|&s| s <= from) - 1;
    while r < vals.len() && starts[r] < to {
        let lo = starts[r].max(from);
        let hi = starts[r + 1].min(to);
        for _ in lo..hi {
            out.push(vals[r]);
        }
        r += 1;
    }
    out
}

/// Decode frame values `[from, to)`: unpack the delta range, add the base,
/// patch exceptions.
fn frame_values(f: &Frame, bytes: &[u8], from: usize, to: usize) -> Vec<i64> {
    let deltas = unpack_range(&bytes[f.packed.0..f.packed.1], from, to, f.width);
    let mut vals: Vec<i64> = deltas
        .iter()
        .map(|&d| (f.base as i128 + d as i128) as i64)
        .collect();
    let lo = f.exc_pos.partition_point(|&p| (p as usize) < from);
    let hi = f.exc_pos.partition_point(|&p| (p as usize) < to);
    for k in lo..hi {
        vals[f.exc_pos[k] as usize - from] = f.exc_val[k];
    }
    vals
}

/// Decode PFOR-DELTA values `[from, to)`, resuming the prefix sum from the
/// cursor position (or its checkpoint) when possible.
fn delta_values(
    frame: &Frame,
    bytes: &[u8],
    pos: &mut usize,
    acc: &mut i64,
    ck: &mut Option<(usize, i64)>,
    from: usize,
    to: usize,
) -> Vec<i64> {
    if from == to {
        return Vec::new();
    }
    if from < *pos {
        match *ck {
            Some((ci, ca)) if ci <= from => {
                *pos = ci;
                *acc = ca;
            }
            _ => {
                *pos = 0;
                *acc = 0;
            }
        }
    }
    let deltas = frame_values(frame, bytes, *pos, to);
    let mut out = Vec::with_capacity(to - from);
    for (k, &d) in deltas.iter().enumerate() {
        let i = *pos + k;
        if i == from {
            *ck = Some((from, *acc));
        }
        *acc = acc.wrapping_add(d);
        if i >= from {
            out.push(*acc);
        }
    }
    *pos = to;
    out
}

/// PFOR predicate in delta space: translate the literal once, compare packed
/// deltas as unsigned ints, patch exceptions with a real i64 compare.
fn pfor_eval(f: &Frame, bytes: &[u8], op: PredOp, lit: i64, from: usize, to: usize) -> Vec<u32> {
    let n = to - from;
    let t = lit as i128 - f.base as i128;
    let limit: i128 = if f.width == 64 {
        u64::MAX as i128
    } else {
        (1i128 << f.width) - 1
    };
    let mut mask: Vec<bool>;
    if !(0..=limit).contains(&t) {
        // The literal is outside the packed domain, so every non-exception
        // value compares the same way — no unpack needed at all.
        let all = match op {
            PredOp::Eq => false,
            PredOp::Ne => true,
            PredOp::Lt | PredOp::Le => t > limit,
            PredOp::Gt | PredOp::Ge => t < 0,
        };
        mask = vec![all; n];
    } else {
        let tu = t as u64;
        let deltas = unpack_range(&bytes[f.packed.0..f.packed.1], from, to, f.width);
        mask = deltas.iter().map(|&d| op.matches_ord(d.cmp(&tu))).collect();
    }
    let lo = f.exc_pos.partition_point(|&p| (p as usize) < from);
    let hi = f.exc_pos.partition_point(|&p| (p as usize) < to);
    for k in lo..hi {
        mask[f.exc_pos[k] as usize - from] = op.matches_ord(f.exc_val[k].cmp(&lit));
    }
    mask.iter()
        .enumerate()
        .filter_map(|(i, &m)| m.then_some(i as u32))
        .collect()
}

/// RLE predicate: one comparison per run, O(runs) selection output.
fn rle_eval(
    vals: &[[u8; 8]],
    starts: &[usize],
    phys: u8,
    op: PredOp,
    value: &Value,
    from: usize,
    to: usize,
) -> Result<Vec<u32>> {
    let mut sel = Vec::new();
    if from == to {
        return Ok(sel);
    }
    let mut r = starts.partition_point(|&s| s <= from) - 1;
    while r < vals.len() && starts[r] < to {
        let lo = starts[r].max(from);
        let hi = starts[r + 1].min(to);
        if lo < hi {
            let m = match phys {
                PHYS_F64 => {
                    let b = value.as_f64().ok_or_else(|| type_err("f64"))?;
                    op.matches_f64(f64::from_le_bytes(vals[r]), b)
                }
                PHYS_I32 | PHYS_I64 => {
                    let v = i64::from_le_bytes(vals[r]);
                    match value.as_i64() {
                        Some(l) => op.matches_ord(v.cmp(&l)),
                        None => {
                            let b = value.as_f64().ok_or_else(|| type_err("int"))?;
                            op.matches_f64(v as f64, b)
                        }
                    }
                }
                _ => return Err(err("rle physical type")),
            };
            if m {
                sel.extend((lo - from) as u32..(hi - from) as u32);
            }
        }
        r += 1;
    }
    Ok(sel)
}

/// PDICT predicate: rewrite into code space once per (block, predicate),
/// then probe the bitmap per bit-packed code.
fn pdict_eval(
    d: &mut DictState,
    bytes: &[u8],
    n: usize,
    pred: &Pred,
    from: usize,
    to: usize,
) -> Result<Vec<u32>> {
    if !d.pred_sets.iter().any(|(p, _)| p == pred) {
        let set = build_code_set(&d.dict, pred)?;
        d.pred_sets.push((pred.clone(), set));
    }
    let set = &d.pred_sets.iter().find(|(p, _)| p == pred).unwrap().1;
    let codes = unpack_range(
        &bytes[d.codes_start..d.codes_start + packed_len(n, d.width)],
        from,
        to,
        d.width,
    );
    let mut sel = Vec::new();
    for (k, &c) in codes.iter().enumerate() {
        match set.get(c as usize).copied() {
            Some(true) => sel.push(k as u32),
            Some(false) => {}
            None => return Err(err("pdict code")),
        }
    }
    Ok(sel)
}

fn build_code_set(dict: &StrColumn, pred: &Pred) -> Result<Vec<bool>> {
    let mut set = Vec::with_capacity(dict.len());
    for i in 0..dict.len() {
        let s = dict.get(i);
        set.push(match pred {
            Pred::Cmp { op, value } => {
                let l = value.as_str().ok_or_else(|| type_err("str"))?;
                op.matches_ord(s.cmp(l))
            }
            Pred::InStr { values, negated } => values.iter().any(|x| x == s) != *negated,
        });
    }
    Ok(set)
}

/// Result of rewriting an int-column-vs-float-literal comparison into pure
/// integer space.
enum IntSpace {
    /// Equivalent integer predicate.
    Pred(Pred),
    /// No integer can match (e.g. `x = 24.5`).
    Empty,
    /// Every non-NULL integer matches (e.g. `x != 24.5`).
    All,
    /// Literal out of exact-i64 territory — keep the float comparison.
    Keep,
}

fn int_space_pred(op: PredOp, l: f64) -> IntSpace {
    // Outside ±2^53 the floor/±1 arithmetic below loses exactness; those
    // literals are vanishingly rare in predicates, so just fall back.
    if !l.is_finite() || l.abs() >= 9.0e15 {
        return IntSpace::Keep;
    }
    let fl = l.floor();
    let integral = fl == l;
    let ip = |op, k: f64| {
        IntSpace::Pred(Pred::Cmp {
            op,
            value: Value::I64(k as i64),
        })
    };
    match op {
        PredOp::Lt => ip(PredOp::Le, if integral { l - 1.0 } else { fl }),
        PredOp::Le => ip(PredOp::Le, fl),
        PredOp::Gt => ip(PredOp::Ge, if integral { l + 1.0 } else { l.ceil() }),
        PredOp::Ge => ip(PredOp::Ge, l.ceil()),
        PredOp::Eq if integral => ip(PredOp::Eq, l),
        PredOp::Eq => IntSpace::Empty,
        PredOp::Ne if integral => ip(PredOp::Ne, l),
        PredOp::Ne => IntSpace::All,
    }
}

/// Compare a plain (uncompressed) f64 body against a literal without
/// materializing the slice: branchless cursor-advance over the raw bytes.
fn plain_f64_eval(
    bytes: &[u8],
    body: usize,
    op: PredOp,
    lit: f64,
    from: usize,
    to: usize,
) -> Vec<u32> {
    let n = to - from;
    let start = body + from * 8;
    let mut out = vec![0u32; n];
    let mut k = 0usize;
    for i in 0..n {
        let v = f64::from_le_bytes(bytes[start + i * 8..start + i * 8 + 8].try_into().unwrap());
        out[k] = i as u32;
        k += op.matches_f64(v, lit) as usize;
    }
    out.truncate(k);
    out
}

fn value_matches(data: &ColumnData, i: usize, pred: &Pred) -> Result<bool> {
    match (data, pred) {
        (ColumnData::I32(v), p) => int_matches(v[i] as i64, p),
        (ColumnData::I64(v), p) => int_matches(v[i], p),
        (ColumnData::F64(v), Pred::Cmp { op, value }) => {
            let b = value.as_f64().ok_or_else(|| type_err("f64"))?;
            Ok(op.matches_f64(v[i], b))
        }
        (ColumnData::Str(s), Pred::Cmp { op, value }) => {
            let l = value.as_str().ok_or_else(|| type_err("str"))?;
            Ok(op.matches_ord(s.get(i).cmp(l)))
        }
        (ColumnData::Str(s), Pred::InStr { values, negated }) => {
            let x = s.get(i);
            Ok(values.iter().any(|v| v == x) != *negated)
        }
        _ => Err(type_err(data.type_name())),
    }
}

fn int_matches(v: i64, pred: &Pred) -> Result<bool> {
    let Pred::Cmp { op, value } = pred else {
        return Err(type_err("int"));
    };
    match value.as_i64() {
        Some(l) => Ok(op.matches_ord(v.cmp(&l))),
        None => {
            let b = value.as_f64().ok_or_else(|| type_err("int"))?;
            Ok(op.matches_f64(v as f64, b))
        }
    }
}

fn filter_nulls(nulls: &Option<BitVec>, from: usize, sel: Vec<u32>) -> Vec<u32> {
    match nulls {
        None => sel,
        Some(b) => sel
            .into_iter()
            .filter(|&i| !b.get(from + i as usize))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{decode_block, encode_block};
    use crate::compress::compress_with;
    use vw_common::rng::Xoshiro256;
    use vw_common::DataType;

    fn cursor_of(col: &NullableColumn) -> (BlockCursor, CompressionScheme) {
        let (bytes, scheme) = encode_block(col);
        (BlockCursor::new(Arc::new(bytes)).unwrap(), scheme)
    }

    /// Wrap a forced-scheme payload in the no-nulls block framing.
    fn forced_block(col: &ColumnData, scheme: CompressionScheme) -> Vec<u8> {
        let mut out = vec![0u8];
        out.extend_from_slice(&compress_with(col, scheme));
        out
    }

    fn expected_slice(col: &NullableColumn, from: usize, to: usize) -> NullableColumn {
        let data = col.data.slice(from, to);
        let nulls = col
            .nulls
            .as_ref()
            .map(|b| (from..to).map(|i| b.get(i)).collect::<BitVec>());
        NullableColumn::new(data, nulls).normalize()
    }

    fn check_slices(col: &NullableColumn, cur: &mut BlockCursor) {
        let n = col.len();
        let step = (n / 7).max(1);
        let mut from = 0;
        while from < n {
            let to = (from + step).min(n);
            assert_eq!(
                cur.decode_slice(from, to).unwrap(),
                expected_slice(col, from, to)
            );
            from = to;
        }
        // out-of-order and overlapping accesses
        for (a, b) in [(0, n), (n / 2, n), (0, n / 2), (n / 3, 2 * n / 3), (n, n)] {
            assert_eq!(cur.decode_slice(a, b).unwrap(), expected_slice(col, a, b));
        }
    }

    fn naive_sel(col: &NullableColumn, pred: &Pred, from: usize, to: usize) -> Vec<u32> {
        (from..to)
            .filter(|&i| !col.is_null(i) && value_matches(&col.data, i, pred).unwrap())
            .map(|i| (i - from) as u32)
            .collect()
    }

    fn check_preds(col: &NullableColumn, cur: &mut BlockCursor, preds: &[Pred]) {
        let n = col.len();
        for pred in preds {
            for (a, b) in [(0, n), (n / 3, 2 * n / 3), (n / 2, n / 2 + 1), (0, 1)] {
                let (a, b) = (a.min(n), b.min(n).max(a.min(n)));
                assert_eq!(
                    cur.eval_pred(pred, a, b).unwrap(),
                    naive_sel(col, pred, a, b),
                    "pred {:?} range {}..{}",
                    pred,
                    a,
                    b
                );
            }
        }
    }

    fn int_preds(lit: i64) -> Vec<Pred> {
        [
            PredOp::Eq,
            PredOp::Ne,
            PredOp::Lt,
            PredOp::Le,
            PredOp::Gt,
            PredOp::Ge,
        ]
        .iter()
        .map(|&op| Pred::Cmp {
            op,
            value: Value::I64(lit),
        })
        .collect()
    }

    #[test]
    fn pfor_delta_slices_and_preds() {
        let col =
            NullableColumn::not_null(ColumnData::I64((0..4000).map(|i| 100 + i * 3).collect()));
        let (mut cur, scheme) = cursor_of(&col);
        assert_eq!(scheme, CompressionScheme::PforDelta);
        check_slices(&col, &mut cur);
        check_preds(&col, &mut cur, &int_preds(100 + 1999 * 3));
        // checkpoint path: eval then decode of the same vector, repeatedly
        for from in [1024usize, 0, 2048, 2048, 512] {
            let to = (from + 1024).min(col.len());
            let sel = cur.eval_pred(&int_preds(6000)[2], from, to).unwrap();
            let naive = naive_sel(&col, &int_preds(6000)[2], from, to);
            assert_eq!(sel, naive);
            assert_eq!(
                cur.decode_slice(from, to).unwrap(),
                expected_slice(&col, from, to)
            );
        }
    }

    #[test]
    fn pfor_slices_and_code_space_preds() {
        let mut r = Xoshiro256::seeded(11);
        let values: Vec<i64> = (0..3000)
            .map(|_| {
                if r.chance(0.02) {
                    r.range_i64(i64::MIN / 2, i64::MAX / 2)
                } else {
                    r.range_i64(500, 900)
                }
            })
            .collect();
        let col = NullableColumn::not_null(ColumnData::I64(values));
        let bytes = forced_block(&col.data, CompressionScheme::Pfor);
        assert_eq!(decode_block(&bytes).unwrap(), col);
        let mut cur = BlockCursor::new(Arc::new(bytes)).unwrap();
        assert_eq!(cur.scheme(), CompressionScheme::Pfor);
        check_slices(&col, &mut cur);
        // literals inside, below, and above the packed domain
        for lit in [700, 499, 901, i64::MIN, i64::MAX, 500, 900] {
            check_preds(&col, &mut cur, &int_preds(lit));
        }
    }

    #[test]
    fn pfor_all_exception_block() {
        // Hand-built frame: width 0, every value an exception — the extreme
        // end of the patching path.
        let n = 200usize;
        let vals: Vec<i64> = (0..n as i64).map(|i| i * 1_000_003 - 7).collect();
        let mut blk = vec![0u8, PHYS_I64, 2]; // no nulls, i64, scheme=Pfor
        blk.extend_from_slice(&(n as u32).to_le_bytes());
        blk.extend_from_slice(&0i64.to_le_bytes()); // base
        blk.push(0); // width
        blk.extend_from_slice(&(n as u32).to_le_bytes()); // n_exc
        for i in 0..n as u32 {
            blk.extend_from_slice(&i.to_le_bytes());
        }
        for v in &vals {
            blk.extend_from_slice(&v.to_le_bytes());
        }
        let col = NullableColumn::not_null(ColumnData::I64(vals));
        assert_eq!(decode_block(&blk).unwrap(), col);
        let mut cur = BlockCursor::new(Arc::new(blk)).unwrap();
        check_slices(&col, &mut cur);
        check_preds(&col, &mut cur, &int_preds(100 * 1_000_003 - 7));
    }

    #[test]
    fn rle_single_run_and_run_length_one() {
        // single run covering the whole block
        let col = NullableColumn::not_null(ColumnData::I64(vec![42; 513]));
        let bytes = forced_block(&col.data, CompressionScheme::Rle);
        let mut cur = BlockCursor::new(Arc::new(bytes)).unwrap();
        assert_eq!(cur.scheme(), CompressionScheme::Rle);
        check_slices(&col, &mut cur);
        check_preds(&col, &mut cur, &int_preds(42));
        check_preds(&col, &mut cur, &int_preds(41));
        // every run has length 1
        let col = NullableColumn::not_null(ColumnData::I64((0..97).map(|i| i * 11).collect()));
        let bytes = forced_block(&col.data, CompressionScheme::Rle);
        let mut cur = BlockCursor::new(Arc::new(bytes)).unwrap();
        check_slices(&col, &mut cur);
        check_preds(&col, &mut cur, &int_preds(44));
    }

    #[test]
    fn rle_f64_preds() {
        let vals: Vec<f64> = (0..900).map(|i| (i / 100) as f64 * 0.05).collect();
        let col = NullableColumn::not_null(ColumnData::F64(vals));
        let (mut cur, scheme) = cursor_of(&col);
        assert_eq!(scheme, CompressionScheme::Rle);
        check_slices(&col, &mut cur);
        let preds: Vec<Pred> = [PredOp::Eq, PredOp::Lt, PredOp::Ge]
            .iter()
            .map(|&op| Pred::Cmp {
                op,
                value: Value::F64(0.15),
            })
            .collect();
        check_preds(&col, &mut cur, &preds);
    }

    #[test]
    fn pdict_code_space_preds() {
        let domain = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"];
        let col = NullableColumn::not_null(ColumnData::Str(StrColumn::from_iter(
            (0..2000).map(|i| domain[(i * 7) % domain.len()]),
        )));
        let (mut cur, scheme) = cursor_of(&col);
        assert_eq!(scheme, CompressionScheme::Pdict);
        check_slices(&col, &mut cur);
        let mut preds: Vec<Pred> = [PredOp::Eq, PredOp::Ne, PredOp::Lt, PredOp::Ge]
            .iter()
            .map(|&op| Pred::Cmp {
                op,
                value: Value::Str("RAIL".into()),
            })
            .collect();
        preds.push(Pred::InStr {
            values: vec!["AIR".into(), "MAIL".into()],
            negated: false,
        });
        preds.push(Pred::InStr {
            values: vec!["AIR".into(), "NOPE".into()],
            negated: true,
        });
        check_preds(&col, &mut cur, &preds);
        // code-set cache: one entry per distinct predicate
        let State::Pdict(d) = &cur.state else {
            panic!()
        };
        assert_eq!(d.pred_sets.len(), preds.len());
    }

    #[test]
    fn pdict_code_width_at_dict_size_boundaries() {
        for (n_dict, expect_width) in [(1usize, 0u32), (255, 8), (256, 8), (65536, 16)] {
            let reps = if n_dict >= 65536 { 2 } else { 40 };
            let strings: Vec<String> = (0..n_dict)
                .flat_map(|d| std::iter::repeat_n(format!("val{:05}", d), reps))
                .collect();
            let col = StrColumn::from_iter(strings.iter().map(|s| s.as_str()));
            let ncol = NullableColumn::not_null(ColumnData::Str(col));
            let (mut cur, scheme) = cursor_of(&ncol);
            assert_eq!(scheme, CompressionScheme::Pdict, "dict size {}", n_dict);
            let State::Pdict(d) = &cur.state else {
                panic!()
            };
            assert_eq!(d.width, expect_width, "dict size {}", n_dict);
            assert_eq!(d.dict.len(), n_dict);
            let n = ncol.len();
            assert_eq!(
                cur.decode_slice(n - 3, n).unwrap(),
                expected_slice(&ncol, n - 3, n)
            );
            let pred = Pred::Cmp {
                op: PredOp::Eq,
                value: Value::Str("val00000".into()),
            };
            let hi = (reps + 1).min(n);
            assert_eq!(
                cur.eval_pred(&pred, 0, hi).unwrap(),
                naive_sel(&ncol, &pred, 0, hi)
            );
        }
    }

    #[test]
    fn plain_str_and_bool_and_i32() {
        let uniq: Vec<String> = (0..300)
            .map(|i| format!("unique-{}-{}", i, i * 31))
            .collect();
        let col = NullableColumn::not_null(ColumnData::Str(StrColumn::from_iter(
            uniq.iter().map(|s| s.as_str()),
        )));
        let (mut cur, scheme) = cursor_of(&col);
        assert_eq!(scheme, CompressionScheme::Plain);
        check_slices(&col, &mut cur);
        let pred = Pred::Cmp {
            op: PredOp::Gt,
            value: Value::Str("unique-2".into()),
        };
        check_preds(&col, &mut cur, &[pred]);

        let col = NullableColumn::not_null(ColumnData::Bool((0..77).map(|i| i % 3 == 0).collect()));
        let (mut cur, _) = cursor_of(&col);
        check_slices(&col, &mut cur);

        let col = NullableColumn::not_null(ColumnData::I32(vec![-5, 0, 7, i32::MIN, i32::MAX]));
        let bytes = forced_block(&col.data, CompressionScheme::Plain);
        let mut cur = BlockCursor::new(Arc::new(bytes)).unwrap();
        check_slices(&col, &mut cur);
        check_preds(&col, &mut cur, &int_preds(0));
    }

    #[test]
    fn nulls_are_excluded_and_sliced() {
        let vals: Vec<Value> = (0..500)
            .map(|i| {
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::I64((i % 13) as i64)
                }
            })
            .collect();
        let col = NullableColumn::from_values(DataType::I64, &vals).unwrap();
        let (mut cur, _) = cursor_of(&col);
        assert!(cur.has_nulls());
        check_slices(&col, &mut cur);
        check_preds(&col, &mut cur, &int_preds(6));
    }

    #[test]
    fn f64_plain_preds_including_int_literal() {
        let col = NullableColumn::not_null(ColumnData::F64(
            (0..400).map(|i| i as f64 * 0.25 - 20.0).collect(),
        ));
        let (mut cur, scheme) = cursor_of(&col);
        assert_eq!(scheme, CompressionScheme::Plain);
        check_slices(&col, &mut cur);
        let preds: Vec<Pred> = vec![
            Pred::Cmp {
                op: PredOp::Lt,
                value: Value::F64(5.25),
            },
            Pred::Cmp {
                op: PredOp::Ge,
                value: Value::I64(3),
            },
        ];
        check_preds(&col, &mut cur, &preds);
    }

    #[test]
    fn empty_block_and_bad_ranges() {
        let col = NullableColumn::not_null(ColumnData::I64(vec![]));
        let (mut cur, _) = cursor_of(&col);
        assert_eq!(cur.n(), 0);
        assert_eq!(cur.decode_slice(0, 0).unwrap().len(), 0);
        assert!(cur.decode_slice(0, 1).is_err());
        let col = NullableColumn::not_null(ColumnData::I64(vec![1, 2, 3]));
        let (mut cur, _) = cursor_of(&col);
        assert!(cur.decode_slice(2, 1).is_err());
        assert!(cur.eval_pred(&int_preds(1)[0], 0, 4).is_err());
    }

    #[test]
    fn corrupt_blocks_error_not_panic() {
        let col = NullableColumn::not_null(ColumnData::I64((0..100).collect()));
        let (bytes, _) = encode_block(&col);
        assert!(BlockCursor::new(Arc::new(bytes[..bytes.len() - 1].to_vec())).is_err());
        assert!(BlockCursor::new(Arc::new(vec![])).is_err());
        let mut bad = bytes.clone();
        bad[2] = 99; // scheme byte (after the 1-byte null flag)
        assert!(BlockCursor::new(Arc::new(bad)).is_err());
    }

    #[test]
    fn decide_from_zone_maps() {
        let mm = MinMax::Int { min: 10, max: 30 };
        let eq = |v: i64| Pred::Cmp {
            op: PredOp::Eq,
            value: Value::I64(v),
        };
        assert_eq!(eq(5).decide(&mm, false), Some(false));
        assert_eq!(eq(20).decide(&mm, false), None);
        let ge10 = Pred::Cmp {
            op: PredOp::Ge,
            value: Value::I64(10),
        };
        assert_eq!(ge10.decide(&mm, false), Some(true));
        assert_eq!(ge10.decide(&mm, true), None); // nulls block the all-true claim
        let lt10 = Pred::Cmp {
            op: PredOp::Lt,
            value: Value::I64(10),
        };
        assert_eq!(lt10.decide(&mm, false), Some(false));
        let constant = MinMax::Int { min: 7, max: 7 };
        assert_eq!(eq(7).decide(&constant, false), Some(true));
        assert_eq!(eq(7).decide(&constant, true), None);
        let ne7 = Pred::Cmp {
            op: PredOp::Ne,
            value: Value::I64(7),
        };
        assert_eq!(ne7.decide(&constant, false), Some(false));
        let smm = MinMax::Str {
            min: "b".into(),
            max: "d".into(),
        };
        let instr = Pred::InStr {
            values: vec!["x".into(), "a".into()],
            negated: false,
        };
        assert_eq!(instr.decide(&smm, false), Some(false));
        let instr_hit = Pred::InStr {
            values: vec!["c".into()],
            negated: false,
        };
        assert_eq!(instr_hit.decide(&smm, false), None);
        assert_eq!(eq(1).decide(&MinMax::None, false), None);
    }
}
