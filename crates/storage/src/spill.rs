//! Spill files: temporary on-"disk" storage for operator state that exceeds
//! the execution-memory budget.
//!
//! A [`SpillFile`] is an append-only sequence of *chunks*; each chunk is one
//! dense columnar batch serialized into a single [`SimDisk`] block, so spill
//! I/O flows through the same virtual-disk accounting as table scans and
//! shows up in `DiskStats` / `EXPLAIN ANALYZE` for free. Chunks can be read
//! back in any order (grace-join probes read partition-at-a-time; external
//! sort merges runs front-to-back) through `&self`, so a spilled structure
//! can be shared across Exchange workers.
//!
//! The encoding is a plain little-endian columnar dump — spill data is
//! written once and read once, so codec work (PDICT/RLE/PFOR) would cost
//! more than the bandwidth it saves at SimDisk's modelled 500 MB/s:
//!
//! ```text
//! chunk := u32 n_rows, u32 n_cols, col*
//! col   := u8 type_tag, u8 has_nulls, [null bits: ceil(n_rows/8)],
//!          values (Bool: packed bits; I32/I64/F64: fixed LE;
//!                  Str: per row u32 len + bytes)
//! ```
//!
//! Dropping a `SpillFile` frees its blocks.

use std::sync::Arc;

use vw_common::{Result, VwError};

use crate::column::{ColumnData, StrColumn};
use crate::simdisk::SimDisk;
use vw_common::BlockId;

/// Borrowed view of one column to spill: dense data plus an optional
/// validity vector (`false` = NULL), both of the chunk's row count.
pub struct SpillCol<'a> {
    pub data: &'a ColumnData,
    pub nulls: Option<&'a [bool]>,
}

/// One decoded column read back from a spill chunk.
pub type SpilledCol = (ColumnData, Option<Vec<bool>>);

/// An append-only spill file backed by SimDisk blocks (one per chunk).
pub struct SpillFile {
    disk: Arc<SimDisk>,
    chunks: Vec<BlockId>,
    bytes: u64,
    rows: u64,
}

impl SpillFile {
    pub fn new(disk: Arc<SimDisk>) -> Self {
        SpillFile {
            disk,
            chunks: Vec::new(),
            bytes: 0,
            rows: 0,
        }
    }

    /// Serialize one dense chunk and append it; returns its encoded size.
    pub fn append_chunk(&mut self, cols: &[SpillCol], rows: usize) -> Result<u64> {
        let buf = encode_chunk(cols, rows)?;
        let len = buf.len() as u64;
        self.chunks.push(self.disk.write_block(buf));
        self.bytes += len;
        self.rows += rows as u64;
        Ok(len)
    }

    /// Read chunk `i` back; returns the columns and the chunk's row count.
    pub fn read_chunk(&self, i: usize) -> Result<(Vec<SpilledCol>, usize)> {
        let block = self.disk.read_block(self.chunks[i])?;
        decode_chunk(&block)
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total encoded bytes written.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total rows across all chunks.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        for id in self.chunks.drain(..) {
            self.disk.free_block(id);
        }
    }
}

const TAG_BOOL: u8 = 0;
const TAG_I32: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_STR: u8 = 4;

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_bits(buf: &mut Vec<u8>, bits: impl ExactSizeIterator<Item = bool>) {
    let n = bits.len();
    let start = buf.len();
    buf.resize(start + n.div_ceil(8), 0);
    for (i, b) in bits.enumerate() {
        if b {
            buf[start + i / 8] |= 1 << (i % 8);
        }
    }
}

fn encode_chunk(cols: &[SpillCol], rows: usize) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(
        64 + cols
            .iter()
            .map(|c| c.data.uncompressed_bytes())
            .sum::<usize>(),
    );
    push_u32(&mut buf, rows as u32);
    push_u32(&mut buf, cols.len() as u32);
    for col in cols {
        debug_assert_eq!(col.data.len(), rows, "spill chunks must be dense");
        let (tag, _) = tag_of(col.data);
        buf.push(tag);
        match col.nulls {
            Some(nulls) => {
                debug_assert_eq!(nulls.len(), rows);
                buf.push(1);
                push_bits(&mut buf, nulls.iter().copied());
            }
            None => buf.push(0),
        }
        match col.data {
            ColumnData::Bool(v) => push_bits(&mut buf, v.iter().copied()),
            ColumnData::I32(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::I64(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::F64(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Str(s) => {
                for i in 0..s.len() {
                    let b = s.get_bytes(i);
                    push_u32(&mut buf, b.len() as u32);
                    buf.extend_from_slice(b);
                }
            }
        }
    }
    Ok(buf)
}

fn tag_of(data: &ColumnData) -> (u8, &'static str) {
    match data {
        ColumnData::Bool(_) => (TAG_BOOL, "bool"),
        ColumnData::I32(_) => (TAG_I32, "i32"),
        ColumnData::I64(_) => (TAG_I64, "i64"),
        ColumnData::F64(_) => (TAG_F64, "f64"),
        ColumnData::Str(_) => (TAG_STR, "str"),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(VwError::Exec("truncated spill chunk".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn bits(&mut self, n: usize) -> Result<Vec<bool>> {
        let raw = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect())
    }
}

fn decode_chunk(buf: &[u8]) -> Result<(Vec<SpilledCol>, usize)> {
    let mut r = Reader { buf, pos: 0 };
    let rows = r.u32()? as usize;
    let ncols = r.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let tag = r.u8()?;
        let has_nulls = r.u8()? != 0;
        let nulls = if has_nulls { Some(r.bits(rows)?) } else { None };
        let data = match tag {
            TAG_BOOL => ColumnData::Bool(r.bits(rows)?),
            TAG_I32 => {
                let raw = r.take(rows * 4)?;
                ColumnData::I32(
                    raw.chunks_exact(4)
                        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            TAG_I64 => {
                let raw = r.take(rows * 8)?;
                ColumnData::I64(
                    raw.chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            TAG_F64 => {
                let raw = r.take(rows * 8)?;
                ColumnData::F64(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            TAG_STR => {
                let mut s = StrColumn::new();
                for _ in 0..rows {
                    let len = r.u32()? as usize;
                    let raw = r.take(len)?;
                    s.push(
                        std::str::from_utf8(raw)
                            .map_err(|_| VwError::Exec("corrupt spill string".into()))?,
                    );
                }
                ColumnData::Str(s)
            }
            other => {
                return Err(VwError::Exec(format!("bad spill column tag {other}")));
            }
        };
        cols.push((data, nulls));
    }
    Ok((cols, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simdisk::SimDiskConfig;

    fn disk() -> Arc<SimDisk> {
        Arc::new(SimDisk::new(SimDiskConfig::default()))
    }

    #[test]
    fn roundtrip_all_types() {
        let d = disk();
        let mut f = SpillFile::new(d.clone());
        let bools = ColumnData::Bool(vec![true, false, true]);
        let i32s = ColumnData::I32(vec![-1, 0, i32::MAX]);
        let i64s = ColumnData::I64(vec![i64::MIN, 7, i64::MAX]);
        let f64s = ColumnData::F64(vec![0.5, -0.0, f64::NAN]);
        let strs = ColumnData::Str(StrColumn::from_iter(["", "héllo", "x"]));
        let nulls = vec![true, false, true];
        let cols = [
            SpillCol {
                data: &bools,
                nulls: None,
            },
            SpillCol {
                data: &i32s,
                nulls: Some(&nulls),
            },
            SpillCol {
                data: &i64s,
                nulls: None,
            },
            SpillCol {
                data: &f64s,
                nulls: Some(&nulls),
            },
            SpillCol {
                data: &strs,
                nulls: None,
            },
        ];
        let written = f.append_chunk(&cols, 3).unwrap();
        assert!(written > 0);
        assert_eq!(f.bytes(), written);
        assert_eq!(f.rows(), 3);
        assert_eq!(f.chunk_count(), 1);

        let (back, rows) = f.read_chunk(0).unwrap();
        assert_eq!(rows, 3);
        assert_eq!(back.len(), 5);
        assert_eq!(back[0].0, bools);
        assert_eq!(back[1].0, i32s);
        assert_eq!(back[1].1.as_deref(), Some(&nulls[..]));
        assert_eq!(back[2].0, i64s);
        match (&back[3].0, &f64s) {
            (ColumnData::F64(a), ColumnData::F64(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bit-exact f64 roundtrip");
                }
            }
            _ => unreachable!(),
        }
        match &back[4].0 {
            ColumnData::Str(s) => {
                assert_eq!(s.iter().collect::<Vec<_>>(), vec!["", "héllo", "x"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn multiple_chunks_random_access() {
        let d = disk();
        let mut f = SpillFile::new(d.clone());
        for k in 0..5i64 {
            let col = ColumnData::I64(vec![k, k + 10]);
            f.append_chunk(
                &[SpillCol {
                    data: &col,
                    nulls: None,
                }],
                2,
            )
            .unwrap();
        }
        assert_eq!(f.chunk_count(), 5);
        assert_eq!(f.rows(), 10);
        // Read out of order.
        for k in [3usize, 0, 4, 1, 2] {
            let (cols, rows) = f.read_chunk(k).unwrap();
            assert_eq!(rows, 2);
            assert_eq!(cols[0].0, ColumnData::I64(vec![k as i64, k as i64 + 10]));
        }
    }

    #[test]
    fn spill_io_hits_disk_stats_and_drop_frees() {
        let d = disk();
        let before = d.stats();
        let blocks_before = d.block_count();
        {
            let mut f = SpillFile::new(d.clone());
            let col = ColumnData::I64((0..100).collect());
            f.append_chunk(
                &[SpillCol {
                    data: &col,
                    nulls: None,
                }],
                100,
            )
            .unwrap();
            let _ = f.read_chunk(0).unwrap();
            let mid = d.stats().since(&before);
            assert_eq!(mid.writes, 1);
            assert_eq!(mid.reads, 1);
            assert!(mid.bytes_written >= 800);
        }
        assert_eq!(d.block_count(), blocks_before, "drop frees spill blocks");
    }

    #[test]
    fn zero_column_chunk() {
        // Aggregates with no group keys never spill zero-column rows, but the
        // codec should still hold up.
        let d = disk();
        let mut f = SpillFile::new(d);
        f.append_chunk(&[], 7).unwrap();
        let (cols, rows) = f.read_chunk(0).unwrap();
        assert!(cols.is_empty());
        assert_eq!(rows, 7);
    }
}
