//! PFOR and PFOR-DELTA — Patched Frame-Of-Reference compression.
//!
//! The scheme from "Super-Scalar RAM-CPU Cache Compression" (Zukowski et al.,
//! ICDE 2006 — reference [2] of the Vectorwise paper): subtract a per-block
//! base from every value, bit-pack the differences at a width chosen so that
//! the vast majority fit, and *patch* the rare values that don't ("exceptions")
//! from a separate list after the branch-free unpack loop. PFOR-DELTA applies
//! the same idea to consecutive differences, which crushes sorted or
//! near-sorted columns (dates, surrogate keys).
//!
//! The frame base is chosen from low-percentile candidates, not the raw
//! minimum, so a few extreme negative outliers become exceptions instead of
//! blowing up the packed width for the whole block.
//!
//! Wire layout (after the generic block header):
//! ```text
//! [base:    i64 LE]          frame of reference (or delta base, for DELTA)
//! [width:   u8]              packed bit width
//! [n_exc:   u32 LE]          exception count
//! [packed:  ceil(n*width/8)] bit-packed (value - base), 0 at exception slots
//! [exc_pos: n_exc * u32 LE]
//! [exc_val: n_exc * i64 LE]  original values
//! ```

use super::bitpack::{bits_needed, pack, packed_len, unpack};

/// Cost in bytes of one exception entry (position + value).
const EXC_COST: usize = 4 + 8;

/// Effective bit width of `v` relative to `base`; `None` when `v < base`
/// (always an exception — wrapping could alias a small delta).
#[inline]
fn delta_of(v: i64, base: i64) -> Option<u64> {
    if v < base {
        None
    } else {
        Some((v as i128 - base as i128) as u64)
    }
}

/// Best packed width and its total cost for the deltas of `values` vs `base`.
fn best_width_cost(values: &[i64], base: i64) -> (u32, usize) {
    // hist[w] = values needing exactly w bits; hist[65] = below-base values
    // that are exceptions at every width.
    let mut hist = [0usize; 66];
    for &v in values {
        match delta_of(v, base) {
            Some(d) => hist[bits_needed(d) as usize] += 1,
            None => hist[65] += 1,
        }
    }
    let mut best_w = 64;
    let mut best_cost = usize::MAX;
    let mut exceptions = hist[65];
    for w in (0..=64u32).rev() {
        let cost = packed_len(values.len(), w) + exceptions * EXC_COST;
        if cost < best_cost {
            best_cost = cost;
            best_w = w;
        }
        exceptions += hist[w as usize];
    }
    (best_w, best_cost)
}

/// Pick the frame-of-reference base: evaluate the exact cost of the global
/// minimum and of a few low percentiles (from a sample) and keep the best.
fn choose_base(values: &[i64]) -> i64 {
    if values.is_empty() {
        return 0;
    }
    let mut sample: Vec<i64> = if values.len() <= 1024 {
        values.to_vec()
    } else {
        values
            .iter()
            .step_by(values.len() / 1024)
            .copied()
            .collect()
    };
    sample.sort_unstable();
    let pct = |p: usize| sample[(sample.len() - 1) * p / 100];
    let mut candidates = [sample[0], pct(1), pct(5), pct(25), pct(50)];
    candidates.sort_unstable();
    let mut best_base = candidates[0];
    let mut best_cost = usize::MAX;
    let mut prev = None;
    for &b in &candidates {
        if prev == Some(b) {
            continue;
        }
        prev = Some(b);
        let (_, cost) = best_width_cost(values, b);
        if cost < best_cost {
            best_cost = cost;
            best_base = b;
        }
    }
    best_base
}

fn encode_frame(values: &[i64], out: &mut Vec<u8>) {
    let base = choose_base(values);
    let (width, _) = best_width_cost(values, base);
    let limit: u64 = if width == 64 {
        u64::MAX
    } else if width == 0 {
        0
    } else {
        (1u64 << width) - 1
    };
    let mut exc_pos: Vec<u32> = Vec::new();
    let mut exc_val: Vec<i64> = Vec::new();
    let packed_input: Vec<u64> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| match delta_of(v, base) {
            Some(d) if d <= limit => d,
            _ => {
                exc_pos.push(i as u32);
                exc_val.push(v);
                0
            }
        })
        .collect();
    out.extend_from_slice(&base.to_le_bytes());
    out.push(width as u8);
    out.extend_from_slice(&(exc_pos.len() as u32).to_le_bytes());
    out.extend_from_slice(&pack(&packed_input, width));
    for p in &exc_pos {
        out.extend_from_slice(&p.to_le_bytes());
    }
    for v in &exc_val {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_frame(bytes: &[u8], n: usize) -> Option<Vec<i64>> {
    if bytes.len() < 13 {
        return None;
    }
    let base = i64::from_le_bytes(bytes[0..8].try_into().ok()?);
    let width = bytes[8] as u32;
    if width > 64 {
        return None;
    }
    let n_exc = u32::from_le_bytes(bytes[9..13].try_into().ok()?) as usize;
    let plen = packed_len(n, width);
    let need = 13 + plen + n_exc * EXC_COST;
    if bytes.len() < need {
        return None;
    }
    let deltas = unpack(&bytes[13..13 + plen], n, width);
    let mut values: Vec<i64> = deltas
        .iter()
        .map(|&d| (base as i128 + d as i128) as i64)
        .collect();
    let pos_start = 13 + plen;
    let val_start = pos_start + n_exc * 4;
    for i in 0..n_exc {
        let p = u32::from_le_bytes(
            bytes[pos_start + i * 4..pos_start + i * 4 + 4]
                .try_into()
                .ok()?,
        ) as usize;
        let v = i64::from_le_bytes(
            bytes[val_start + i * 8..val_start + i * 8 + 8]
                .try_into()
                .ok()?,
        );
        if p >= n {
            return None;
        }
        values[p] = v;
    }
    Some(values)
}

/// Encode with plain PFOR.
pub fn pfor_encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(values, &mut out);
    out
}

/// Decode plain PFOR. `n` is the value count from the block header.
pub fn pfor_decode(bytes: &[u8], n: usize) -> Option<Vec<i64>> {
    decode_frame(bytes, n)
}

/// Encode with PFOR-DELTA: PFOR over consecutive differences.
///
/// Differences use wrapping arithmetic so the transform is bijective even at
/// the i64 domain edges (the PFOR layer patches any wrapped difference as an
/// exception if it does not pack well).
pub fn pfor_delta_encode(values: &[i64]) -> Vec<u8> {
    let mut deltas = Vec::with_capacity(values.len());
    let mut prev = 0i64;
    for &v in values {
        deltas.push(v.wrapping_sub(prev));
        prev = v;
    }
    let mut out = Vec::new();
    encode_frame(&deltas, &mut out);
    out
}

/// Decode PFOR-DELTA.
pub fn pfor_delta_decode(bytes: &[u8], n: usize) -> Option<Vec<i64>> {
    let deltas = decode_frame(bytes, n)?;
    let mut out = Vec::with_capacity(n);
    let mut acc = 0i64;
    for d in deltas {
        acc = acc.wrapping_add(d);
        out.push(acc);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::rng::Xoshiro256;

    #[test]
    fn roundtrip_uniform_small_range() {
        let mut r = Xoshiro256::seeded(1);
        let values: Vec<i64> = (0..5000).map(|_| r.range_i64(1000, 1255)).collect();
        let enc = pfor_encode(&values);
        // 256-value range => 8-bit packing ≈ n bytes, far below 8n.
        assert!(enc.len() < values.len() * 2, "enc {} bytes", enc.len());
        assert_eq!(pfor_decode(&enc, values.len()).unwrap(), values);
    }

    #[test]
    fn exceptions_are_patched() {
        let mut r = Xoshiro256::seeded(2);
        // 99% small, 1% huge outliers (both signs) — the PFOR sweet spot.
        let values: Vec<i64> = (0..10_000)
            .map(|_| {
                if r.chance(0.01) {
                    r.range_i64(i64::MIN / 2, i64::MAX / 2)
                } else {
                    r.range_i64(0, 100)
                }
            })
            .collect();
        let enc = pfor_encode(&values);
        // ~7 bits/value + ~100 exceptions * 12B ≈ 10 KB, far below plain 80 KB.
        assert!(enc.len() < values.len() * 2, "enc {} bytes", enc.len());
        assert_eq!(pfor_decode(&enc, values.len()).unwrap(), values);
    }

    #[test]
    fn negative_outliers_do_not_ruin_the_frame() {
        // All values in [0,100] except one i64::MIN: base must stay near 0
        // and the outlier becomes a below-base exception.
        let mut values: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        values[500] = i64::MIN;
        let enc = pfor_encode(&values);
        assert!(enc.len() < 1200, "enc {} bytes", enc.len());
        assert_eq!(pfor_decode(&enc, values.len()).unwrap(), values);
    }

    #[test]
    fn delta_crushes_sorted_data() {
        let values: Vec<i64> = (0..10_000i64).map(|i| 1_000_000 + i * 3).collect();
        let plain = pfor_encode(&values);
        let delta = pfor_delta_encode(&values);
        assert_eq!(pfor_delta_decode(&delta, values.len()).unwrap(), values);
        assert!(
            delta.len() * 4 < plain.len(),
            "delta {} vs pfor {}",
            delta.len(),
            plain.len()
        );
    }

    #[test]
    fn extremes_roundtrip() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX];
        assert_eq!(
            pfor_decode(&pfor_encode(&values), values.len()).unwrap(),
            values
        );
        assert_eq!(
            pfor_delta_decode(&pfor_delta_encode(&values), values.len()).unwrap(),
            values
        );
    }

    #[test]
    fn adversarial_alias_case() {
        // base likely i64::MAX-ish candidates vs i64::MIN values: the wrapped
        // delta would alias to 1 if below-base values were not forced to be
        // exceptions.
        let values = vec![i64::MAX, i64::MIN, i64::MAX, i64::MIN];
        assert_eq!(
            pfor_decode(&pfor_encode(&values), values.len()).unwrap(),
            values
        );
    }

    #[test]
    fn constant_column_is_tiny() {
        let values = vec![42i64; 10_000];
        let enc = pfor_encode(&values);
        // width 0: header only.
        assert!(enc.len() <= 16, "enc {} bytes", enc.len());
        assert_eq!(pfor_decode(&enc, values.len()).unwrap(), values);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(
            pfor_decode(&pfor_encode(&[]), 0).unwrap(),
            Vec::<i64>::new()
        );
        assert_eq!(pfor_decode(&pfor_encode(&[7]), 1).unwrap(), vec![7]);
        assert_eq!(
            pfor_delta_decode(&pfor_delta_encode(&[-7]), 1).unwrap(),
            vec![-7]
        );
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let enc = pfor_encode(&[1, 2, 3, 1000]);
        assert!(pfor_decode(&enc[..enc.len() - 1], 4).is_none());
        assert!(pfor_decode(&[], 4).is_none());
    }

    #[test]
    fn width_chooser_balances_exceptions() {
        // All values need 10 bits except 1% needing 60: best width must be
        // 10 (not 60), paying the exceptions.
        let mut values: Vec<i64> = vec![1023; 1000];
        for i in 0..10 {
            values[i * 100] = 1 << 59;
        }
        let (w, _) = best_width_cost(&values, 0);
        assert_eq!(w, 10, "chose {}", w);
    }

    #[test]
    fn random_roundtrip_stress() {
        let mut r = Xoshiro256::seeded(9);
        for trial in 0..20 {
            let n = (r.next_below(500) + 1) as usize;
            let values: Vec<i64> = (0..n)
                .map(|_| match r.next_below(4) {
                    0 => r.next_u64() as i64,
                    1 => r.range_i64(-100, 100),
                    2 => r.range_i64(i64::MIN, i64::MIN + 1000),
                    _ => r.range_i64(i64::MAX - 1000, i64::MAX),
                })
                .collect();
            assert_eq!(
                pfor_decode(&pfor_encode(&values), n).unwrap(),
                values,
                "pfor trial {}",
                trial
            );
            assert_eq!(
                pfor_delta_decode(&pfor_delta_encode(&values), n).unwrap(),
                values,
                "delta trial {}",
                trial
            );
        }
    }
}
