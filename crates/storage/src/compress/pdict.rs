//! PDICT — dictionary compression for string columns.
//!
//! From the same compression family as PFOR [2]: distinct strings go into a
//! per-block dictionary and each value becomes a bit-packed code. TPC-H is
//! full of tiny-domain strings (flags, modes, priorities) where this is a
//! 10-50x win; high-cardinality comment columns fall back to plain.
//!
//! Wire layout:
//! ```text
//! [n_dict:   u32 LE]
//! [dict_bytes_len: u32 LE][dict bytes][dict offsets: (n_dict+1) * u32 LE]
//! [width: u8][packed codes]
//! ```

use super::bitpack::{bits_needed, pack, packed_len, unpack};
use crate::column::StrColumn;
use std::collections::HashMap;

/// Encode a string column with a per-block dictionary.
/// Returns `None` when the dictionary would not be smaller than plain
/// (the caller then keeps plain encoding).
pub fn pdict_encode(col: &StrColumn) -> Option<Vec<u8>> {
    let n = col.len();
    let mut dict_index: HashMap<&str, u32> = HashMap::new();
    let mut dict: Vec<&str> = Vec::new();
    let mut codes: Vec<u64> = Vec::with_capacity(n);
    for s in col.iter() {
        let next = dict.len() as u32;
        let code = *dict_index.entry(s).or_insert_with(|| {
            dict.push(s);
            next
        });
        codes.push(code as u64);
    }
    let width = bits_needed(dict.len().saturating_sub(1) as u64);
    let dict_bytes: usize = dict.iter().map(|s| s.len()).sum();
    let encoded_size = 4 + 4 + dict_bytes + (dict.len() + 1) * 4 + 1 + packed_len(n, width);
    let plain_size = col.bytes.len() + col.offsets.len() * 4;
    if encoded_size >= plain_size {
        return None;
    }
    let mut out = Vec::with_capacity(encoded_size);
    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    out.extend_from_slice(&(dict_bytes as u32).to_le_bytes());
    let mut offsets: Vec<u32> = Vec::with_capacity(dict.len() + 1);
    offsets.push(0);
    for s in &dict {
        out.extend_from_slice(s.as_bytes());
        offsets.push(*offsets.last().unwrap() + s.len() as u32);
    }
    for o in &offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.push(width as u8);
    out.extend_from_slice(&pack(&codes, width));
    Some(out)
}

/// Decode a PDICT block of `n` values.
pub fn pdict_decode(bytes: &[u8], n: usize) -> Option<StrColumn> {
    if bytes.len() < 8 {
        return None;
    }
    let n_dict = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let dict_bytes_len = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
    let mut off = 8;
    if bytes.len() < off + dict_bytes_len + (n_dict + 1) * 4 + 1 {
        return None;
    }
    let dict_bytes = &bytes[off..off + dict_bytes_len];
    off += dict_bytes_len;
    let mut offsets = Vec::with_capacity(n_dict + 1);
    for i in 0..=n_dict {
        offsets.push(
            u32::from_le_bytes(bytes[off + i * 4..off + i * 4 + 4].try_into().ok()?) as usize,
        );
    }
    off += (n_dict + 1) * 4;
    let width = bytes[off] as u32;
    off += 1;
    if width > 32 || bytes.len() < off + packed_len(n, width) {
        return None;
    }
    let codes = unpack(&bytes[off..], n, width);
    // Validate the dictionary once; code expansion is then a bounds check
    // and a byte copy per value.
    let mut dict: Vec<&str> = Vec::with_capacity(n_dict);
    for c in 0..n_dict {
        if offsets[c] > offsets[c + 1] || offsets[c + 1] > dict_bytes.len() {
            return None;
        }
        dict.push(std::str::from_utf8(&dict_bytes[offsets[c]..offsets[c + 1]]).ok()?);
    }
    let mut out = StrColumn::with_capacity(n, dict_bytes_len * 2);
    for c in codes {
        out.push(dict.get(c as usize)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_card_column(n: usize) -> StrColumn {
        let domain = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"];
        StrColumn::from_iter((0..n).map(|i| domain[(i * 7 + i / 3) % domain.len()]))
    }

    #[test]
    fn roundtrip_low_cardinality() {
        let col = low_card_column(5000);
        let enc = pdict_encode(&col).expect("should compress");
        let plain = col.bytes.len() + col.offsets.len() * 4;
        assert!(
            enc.len() * 4 < plain,
            "enc {} vs plain {}",
            enc.len(),
            plain
        );
        let back = pdict_decode(&enc, col.len()).unwrap();
        assert_eq!(back, col);
    }

    #[test]
    fn high_cardinality_declines() {
        let col = StrColumn::from_iter(
            (0..1000)
                .map(|i| format!("unique-string-number-{}", i))
                .collect::<Vec<_>>()
                .iter()
                .map(|s| s.as_str()),
        );
        assert!(pdict_encode(&col).is_none());
    }

    #[test]
    fn single_distinct_value_width_zero() {
        let col = StrColumn::from_iter(std::iter::repeat_n("N", 1000));
        let enc = pdict_encode(&col).unwrap();
        assert!(enc.len() < 32, "enc {}", enc.len());
        assert_eq!(pdict_decode(&enc, 1000).unwrap(), col);
    }

    #[test]
    fn empty_strings_and_unicode() {
        let col = StrColumn::from_iter(["", "ü", "", "ü", "", "ü", "", "ü", "", "ü"]);
        let enc = pdict_encode(&col).unwrap();
        assert_eq!(pdict_decode(&enc, col.len()).unwrap(), col);
    }

    #[test]
    fn truncated_fails() {
        let col = low_card_column(100);
        let enc = pdict_encode(&col).unwrap();
        assert!(pdict_decode(&enc[..enc.len() - 1], 100).is_none());
        assert!(pdict_decode(&[], 100).is_none());
        // wrong n: more codes than packed data holds may still decode if
        // packed_len allows, but must never panic
        let _ = pdict_decode(&enc, 99);
    }
}
