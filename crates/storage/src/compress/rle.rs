//! Run-length encoding for integer and float columns.
//!
//! Wins on low-cardinality clustered data (flags, status codes, and the
//! all-constant columns TPC-H is full of). Floats are run-compared by bit
//! pattern so NaNs round-trip exactly.
//!
//! Wire layout: `[n_runs: u32 LE] ([value: 8 bytes LE][run_len: u32 LE])*`

/// Encode i64 runs.
pub fn rle_encode_i64(values: &[i64]) -> Vec<u8> {
    encode_raw(values.iter().map(|v| v.to_le_bytes()))
}

/// Decode i64 runs; `n` is the expected value count.
pub fn rle_decode_i64(bytes: &[u8], n: usize) -> Option<Vec<i64>> {
    decode_raw(bytes, n).map(|raw| raw.into_iter().map(i64::from_le_bytes).collect())
}

/// Encode f64 runs (bit-pattern equality).
pub fn rle_encode_f64(values: &[f64]) -> Vec<u8> {
    encode_raw(values.iter().map(|v| v.to_le_bytes()))
}

/// Decode f64 runs.
pub fn rle_decode_f64(bytes: &[u8], n: usize) -> Option<Vec<f64>> {
    decode_raw(bytes, n).map(|raw| raw.into_iter().map(f64::from_le_bytes).collect())
}

fn encode_raw(values: impl Iterator<Item = [u8; 8]>) -> Vec<u8> {
    let mut runs: Vec<([u8; 8], u32)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((last, count)) if *last == v => *count += 1,
            _ => runs.push((v, 1)),
        }
    }
    let mut out = Vec::with_capacity(4 + runs.len() * 12);
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for (v, count) in runs {
        out.extend_from_slice(&v);
        out.extend_from_slice(&count.to_le_bytes());
    }
    out
}

fn decode_raw(bytes: &[u8], n: usize) -> Option<Vec<[u8; 8]>> {
    if bytes.len() < 4 {
        return None;
    }
    let n_runs = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    if bytes.len() < 4 + n_runs * 12 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n_runs {
        let s = 4 + i * 12;
        let v: [u8; 8] = bytes[s..s + 8].try_into().ok()?;
        let count = u32::from_le_bytes(bytes[s + 8..s + 12].try_into().ok()?) as usize;
        for _ in 0..count {
            out.push(v);
        }
    }
    if out.len() != n {
        return None;
    }
    Some(out)
}

/// Encoded size without materializing (for the scheme chooser).
pub fn rle_size_i64(values: &[i64]) -> usize {
    let mut runs = 0usize;
    let mut last: Option<i64> = None;
    for &v in values {
        if last != Some(v) {
            runs += 1;
            last = Some(v);
        }
    }
    4 + runs * 12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_runs() {
        let values = vec![5i64, 5, 5, 7, 7, 5, 9, 9, 9, 9];
        let enc = rle_encode_i64(&values);
        assert_eq!(rle_decode_i64(&enc, values.len()).unwrap(), values);
        assert_eq!(rle_size_i64(&values), enc.len());
    }

    #[test]
    fn constant_column() {
        let values = vec![1i64; 100_000];
        let enc = rle_encode_i64(&values);
        assert_eq!(enc.len(), 16); // header + one run
        assert_eq!(rle_decode_i64(&enc, values.len()).unwrap(), values);
    }

    #[test]
    fn no_runs_worst_case() {
        let values: Vec<i64> = (0..100).collect();
        let enc = rle_encode_i64(&values);
        assert_eq!(enc.len(), 4 + 100 * 12);
        assert_eq!(rle_decode_i64(&enc, 100).unwrap(), values);
    }

    #[test]
    fn f64_including_nan() {
        let values = vec![1.5f64, 1.5, f64::NAN, f64::NAN, -0.0, 0.0];
        let enc = rle_encode_f64(&values);
        let back = rle_decode_f64(&enc, values.len()).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // NaN == NaN by bits, -0.0 != 0.0 by bits: 4 runs.
        assert_eq!(enc.len(), 4 + 4 * 12);
    }

    #[test]
    fn count_mismatch_rejected() {
        let enc = rle_encode_i64(&[1, 1, 2]);
        assert!(rle_decode_i64(&enc, 4).is_none());
        assert!(rle_decode_i64(&enc, 2).is_none());
        assert!(rle_decode_i64(&enc[..enc.len() - 1], 3).is_none());
    }

    #[test]
    fn empty() {
        let enc = rle_encode_i64(&[]);
        assert_eq!(rle_decode_i64(&enc, 0).unwrap(), Vec::<i64>::new());
    }
}
