//! Fixed-width bit packing: the physical layer under PFOR and PDICT.
//!
//! Values are packed LSB-first into a little-endian byte stream. Width 0 is
//! legal (all values are zero — common after frame-of-reference) and encodes
//! to zero bytes.

/// Number of bytes `n` values of `width` bits occupy.
pub fn packed_len(n: usize, width: u32) -> usize {
    (n * width as usize).div_ceil(8)
}

/// Minimum width able to represent `v`.
#[inline]
pub fn bits_needed(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Pack `values` (each must fit in `width` bits) into bytes.
pub fn pack(values: &[u64], width: u32) -> Vec<u8> {
    assert!(width <= 64);
    let mut out = vec![0u8; packed_len(values.len(), width)];
    if width == 0 {
        return out;
    }
    let mut bitpos = 0usize;
    for &v in values {
        debug_assert!(width == 64 || v < (1u64 << width), "value exceeds width");
        let byte = bitpos / 8;
        let shift = (bitpos % 8) as u32;
        // Write up to 64+7 bits as a u128 across at most 9 bytes.
        let chunk = (v as u128) << shift;
        let nbytes = (shift + width).div_ceil(8) as usize;
        for i in 0..nbytes {
            out[byte + i] |= (chunk >> (8 * i)) as u8;
        }
        bitpos += width as usize;
    }
    out
}

/// Unpack `n` values of `width` bits from `bytes`.
///
/// Streams through the input with one 64-bit load per 8 bytes, keeping a
/// 128-bit residue buffer — ~10x faster than per-value byte gathering, which
/// matters because decompression sits on every scan's critical path (§I-A:
/// decompression must be nearly free relative to I/O).
pub fn unpack(bytes: &[u8], n: usize, width: u32) -> Vec<u64> {
    assert!(width <= 64);
    if width == 0 {
        return vec![0; n];
    }
    assert!(bytes.len() >= packed_len(n, width), "truncated packed data");
    let mask: u128 = if width == 64 {
        u64::MAX as u128
    } else {
        (1u128 << width) - 1
    };
    let mut out = Vec::with_capacity(n);
    let mut buf: u128 = 0;
    let mut bits: u32 = 0;
    let mut pos = 0usize;
    for _ in 0..n {
        while bits < width {
            if pos + 8 <= bytes.len() {
                let w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
                buf |= (w as u128) << bits;
                bits += 64;
                pos += 8;
            } else if pos < bytes.len() {
                buf |= (bytes[pos] as u128) << bits;
                bits += 8;
                pos += 1;
            } else {
                // trailing padding bits are zero by construction
                bits = width;
            }
        }
        out.push((buf & mask) as u64);
        buf >>= width;
        bits -= width;
    }
    out
}

/// Unpack values `from..to` of `width` bits from `bytes` without touching
/// the preceding packed data: the lazy-scan cursors use this to decode one
/// ~1K-value vector slice out of a 64K-value block.
pub fn unpack_range(bytes: &[u8], from: usize, to: usize, width: u32) -> Vec<u64> {
    assert!(width <= 64);
    assert!(from <= to);
    let n = to - from;
    if width == 0 {
        return vec![0; n];
    }
    assert!(
        bytes.len() >= packed_len(to, width),
        "truncated packed data"
    );
    let start_bit = from * width as usize;
    let mut pos = start_bit / 8;
    let skip = (start_bit % 8) as u32;
    let mask: u128 = if width == 64 {
        u64::MAX as u128
    } else {
        (1u128 << width) - 1
    };
    let mut out = Vec::with_capacity(n);
    // Prime the residue with the partial leading byte, pre-shifted so the
    // first value's low bit sits at bit 0.
    let mut buf: u128 = 0;
    let mut bits: u32 = 0;
    if skip > 0 {
        buf = (bytes[pos] >> skip) as u128;
        bits = 8 - skip;
        pos += 1;
    }
    for _ in 0..n {
        while bits < width {
            if pos + 8 <= bytes.len() {
                let w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
                buf |= (w as u128) << bits;
                bits += 64;
                pos += 8;
            } else if pos < bytes.len() {
                buf |= (bytes[pos] as u128) << bits;
                bits += 8;
                pos += 1;
            } else {
                bits = width;
            }
        }
        out.push((buf & mask) as u64);
        buf >>= width;
        bits -= width;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        for width in 0..=64u32 {
            let max = if width == 64 {
                u64::MAX
            } else if width == 0 {
                0
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..100u64)
                .map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)) & max)
                .collect();
            let packed = pack(&values, width);
            assert_eq!(packed.len(), packed_len(values.len(), width));
            let back = unpack(&packed, values.len(), width);
            assert_eq!(back, values, "width {}", width);
        }
    }

    #[test]
    fn width_zero_is_free() {
        let packed = pack(&[0, 0, 0], 0);
        assert!(packed.is_empty());
        assert_eq!(unpack(&[], 3, 0), vec![0, 0, 0]);
    }

    #[test]
    fn odd_counts_and_boundaries() {
        // 3-bit values crossing byte boundaries.
        let values: Vec<u64> = vec![7, 0, 5, 2, 1, 6, 3, 4, 7, 7, 0];
        let packed = pack(&values, 3);
        assert_eq!(packed.len(), (11usize * 3).div_ceil(8));
        assert_eq!(unpack(&packed, 11, 3), values);
    }

    #[test]
    fn bits_needed_cases() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn empty_input() {
        assert!(pack(&[], 13).is_empty());
        assert!(unpack(&[], 0, 13).is_empty());
    }

    #[test]
    fn unpack_range_matches_unpack_at_all_widths() {
        for width in 0..=64u32 {
            let max = if width == 64 {
                u64::MAX
            } else if width == 0 {
                0
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..137u64)
                .map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(11)) & max)
                .collect();
            let packed = pack(&values, width);
            // Odd offsets exercise every partial-leading-byte skip.
            for (from, to) in [(0, 137), (1, 137), (7, 100), (63, 64), (99, 99), (136, 137)] {
                assert_eq!(
                    unpack_range(&packed, from, to, width),
                    &values[from..to],
                    "width {} range {}..{}",
                    width,
                    from,
                    to
                );
            }
        }
    }

    #[test]
    fn unpack_range_every_offset_width_3() {
        let values: Vec<u64> = (0..50).map(|i| i % 8).collect();
        let packed = pack(&values, 3);
        for from in 0..values.len() {
            for to in from..=values.len() {
                assert_eq!(
                    unpack_range(&packed, from, to, 3),
                    &values[from..to],
                    "{}..{}",
                    from,
                    to
                );
            }
        }
    }
}
