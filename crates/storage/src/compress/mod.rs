//! Per-block lightweight compression with a cost-based scheme chooser.
//!
//! §I-A of the paper: the X100 engine became so fast that storage had to keep
//! up, leading to the PFOR compression family [2]. Decompression must be
//! nearly free relative to I/O, so every codec here is a branch-light linear
//! pass. Each block independently picks the cheapest scheme for its data —
//! real Vectorwise does the same, which is why a sorted date column ends up
//! PFOR-DELTA while the `l_comment` column stays plain.

pub mod bitpack;
pub mod pdict;
pub mod pfor;
pub mod rle;

use crate::column::{ColumnData, StrColumn};
use vw_common::{Result, VwError};

/// Identifies how a block payload is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionScheme {
    /// Raw little-endian values.
    Plain,
    /// Run-length encoding.
    Rle,
    /// Patched frame-of-reference.
    Pfor,
    /// PFOR over consecutive deltas.
    PforDelta,
    /// Per-block string dictionary with bit-packed codes.
    Pdict,
}

impl CompressionScheme {
    fn to_u8(self) -> u8 {
        match self {
            CompressionScheme::Plain => 0,
            CompressionScheme::Rle => 1,
            CompressionScheme::Pfor => 2,
            CompressionScheme::PforDelta => 3,
            CompressionScheme::Pdict => 4,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => CompressionScheme::Plain,
            1 => CompressionScheme::Rle,
            2 => CompressionScheme::Pfor,
            3 => CompressionScheme::PforDelta,
            4 => CompressionScheme::Pdict,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            CompressionScheme::Plain => "PLAIN",
            CompressionScheme::Rle => "RLE",
            CompressionScheme::Pfor => "PFOR",
            CompressionScheme::PforDelta => "PFOR-DELTA",
            CompressionScheme::Pdict => "PDICT",
        }
    }
}

// Physical type tags in the block header (shared with the lazy cursor).
pub(crate) const PHYS_BOOL: u8 = 0;
pub(crate) const PHYS_I32: u8 = 1;
pub(crate) const PHYS_I64: u8 = 2;
pub(crate) const PHYS_F64: u8 = 3;
pub(crate) const PHYS_STR: u8 = 4;

fn header(phys: u8, scheme: CompressionScheme, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.push(phys);
    out.push(scheme.to_u8());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out
}

fn plain_encode_i64_like(values: &[i64], width: usize, out: &mut Vec<u8>) {
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes()[..width]);
    }
}

/// Compress a column chunk, choosing the cheapest scheme by trial.
/// Returns the chosen scheme and the full self-describing payload.
pub fn compress_data(col: &ColumnData) -> (CompressionScheme, Vec<u8>) {
    match col {
        ColumnData::Bool(v) => {
            // Bit-packed bitmap; no scheme competition worth having.
            let bits: vw_common::BitVec = v.iter().copied().collect();
            let mut out = header(PHYS_BOOL, CompressionScheme::Plain, v.len());
            out.extend_from_slice(&bits.to_bytes());
            (CompressionScheme::Plain, out)
        }
        ColumnData::I32(v) => {
            let wide: Vec<i64> = v.iter().map(|&x| x as i64).collect();
            compress_ints(PHYS_I32, &wide, 4)
        }
        ColumnData::I64(v) => compress_ints(PHYS_I64, v, 8),
        ColumnData::F64(v) => {
            let rle = rle::rle_encode_f64(v);
            if rle.len() < v.len() * 8 {
                let mut out = header(PHYS_F64, CompressionScheme::Rle, v.len());
                out.extend_from_slice(&rle);
                (CompressionScheme::Rle, out)
            } else {
                let mut out = header(PHYS_F64, CompressionScheme::Plain, v.len());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                (CompressionScheme::Plain, out)
            }
        }
        ColumnData::Str(s) => match pdict::pdict_encode(s) {
            Some(enc) => {
                let mut out = header(PHYS_STR, CompressionScheme::Pdict, s.len());
                out.extend_from_slice(&enc);
                (CompressionScheme::Pdict, out)
            }
            None => {
                let mut out = header(PHYS_STR, CompressionScheme::Plain, s.len());
                out.extend_from_slice(&(s.bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&s.bytes);
                for o in &s.offsets {
                    out.extend_from_slice(&o.to_le_bytes());
                }
                (CompressionScheme::Plain, out)
            }
        },
    }
}

/// Force a specific scheme (benchmark ablations). Falls back to `Plain` if
/// the scheme does not apply to the column's physical type.
pub fn compress_with(col: &ColumnData, scheme: CompressionScheme) -> Vec<u8> {
    match (col, scheme) {
        (ColumnData::I32(v), s) => {
            let wide: Vec<i64> = v.iter().map(|&x| x as i64).collect();
            encode_ints_as(PHYS_I32, &wide, 4, s)
        }
        (ColumnData::I64(v), s) => encode_ints_as(PHYS_I64, v, 8, s),
        _ => compress_data(col).1,
    }
}

fn encode_ints_as(phys: u8, values: &[i64], width: usize, scheme: CompressionScheme) -> Vec<u8> {
    let scheme = match scheme {
        CompressionScheme::Pdict => CompressionScheme::Plain,
        s => s,
    };
    let mut out = header(phys, scheme, values.len());
    match scheme {
        CompressionScheme::Plain => plain_encode_i64_like(values, width, &mut out),
        CompressionScheme::Rle => out.extend_from_slice(&rle::rle_encode_i64(values)),
        CompressionScheme::Pfor => out.extend_from_slice(&pfor::pfor_encode(values)),
        CompressionScheme::PforDelta => out.extend_from_slice(&pfor::pfor_delta_encode(values)),
        CompressionScheme::Pdict => unreachable!(),
    }
    out
}

fn compress_ints(phys: u8, values: &[i64], plain_width: usize) -> (CompressionScheme, Vec<u8>) {
    let plain_size = values.len() * plain_width;
    let pfor = pfor::pfor_encode(values);
    let pfor_delta = pfor::pfor_delta_encode(values);
    let rle_size = rle::rle_size_i64(values);

    let mut best = (CompressionScheme::Plain, plain_size);
    if pfor.len() < best.1 {
        best = (CompressionScheme::Pfor, pfor.len());
    }
    if pfor_delta.len() < best.1 {
        best = (CompressionScheme::PforDelta, pfor_delta.len());
    }
    if rle_size < best.1 {
        best = (CompressionScheme::Rle, rle_size);
    }

    let mut out = header(phys, best.0, values.len());
    match best.0 {
        CompressionScheme::Plain => plain_encode_i64_like(values, plain_width, &mut out),
        CompressionScheme::Pfor => out.extend_from_slice(&pfor),
        CompressionScheme::PforDelta => out.extend_from_slice(&pfor_delta),
        CompressionScheme::Rle => out.extend_from_slice(&rle::rle_encode_i64(values)),
        CompressionScheme::Pdict => unreachable!(),
    }
    (best.0, out)
}

fn err(msg: &str) -> VwError {
    VwError::Storage(format!("corrupt block: {}", msg))
}

/// Decompress a payload produced by [`compress_data`] / [`compress_with`].
pub fn decompress_data(bytes: &[u8]) -> Result<ColumnData> {
    if bytes.len() < 6 {
        return Err(err("short header"));
    }
    let phys = bytes[0];
    let scheme = CompressionScheme::from_u8(bytes[1]).ok_or_else(|| err("bad scheme"))?;
    let n = u32::from_le_bytes(bytes[2..6].try_into().unwrap()) as usize;
    let body = &bytes[6..];
    match phys {
        PHYS_BOOL => {
            let (bits, _) = vw_common::BitVec::from_bytes(body).ok_or_else(|| err("bitmap"))?;
            if bits.len() != n {
                return Err(err("bitmap length"));
            }
            Ok(ColumnData::Bool(bits.iter().collect()))
        }
        PHYS_I32 | PHYS_I64 => {
            let width = if phys == PHYS_I32 { 4 } else { 8 };
            let wide: Vec<i64> = match scheme {
                CompressionScheme::Plain => {
                    if body.len() < n * width {
                        return Err(err("plain ints"));
                    }
                    (0..n)
                        .map(|i| {
                            let mut buf = [0u8; 8];
                            buf[..width].copy_from_slice(&body[i * width..(i + 1) * width]);
                            let mut v = i64::from_le_bytes(buf);
                            // sign-extend 4-byte values
                            if width == 4 {
                                v = (v as i32) as i64;
                            }
                            v
                        })
                        .collect()
                }
                CompressionScheme::Rle => {
                    rle::rle_decode_i64(body, n).ok_or_else(|| err("rle ints"))?
                }
                CompressionScheme::Pfor => pfor::pfor_decode(body, n).ok_or_else(|| err("pfor"))?,
                CompressionScheme::PforDelta => {
                    pfor::pfor_delta_decode(body, n).ok_or_else(|| err("pfor-delta"))?
                }
                CompressionScheme::Pdict => return Err(err("pdict on ints")),
            };
            if phys == PHYS_I32 {
                let narrow: Option<Vec<i32>> =
                    wide.iter().map(|&v| i32::try_from(v).ok()).collect();
                Ok(ColumnData::I32(narrow.ok_or_else(|| err("i32 overflow"))?))
            } else {
                Ok(ColumnData::I64(wide))
            }
        }
        PHYS_F64 => {
            let vals = match scheme {
                CompressionScheme::Plain => {
                    if body.len() < n * 8 {
                        return Err(err("plain f64"));
                    }
                    (0..n)
                        .map(|i| f64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().unwrap()))
                        .collect()
                }
                CompressionScheme::Rle => {
                    rle::rle_decode_f64(body, n).ok_or_else(|| err("rle f64"))?
                }
                _ => return Err(err("bad f64 scheme")),
            };
            Ok(ColumnData::F64(vals))
        }
        PHYS_STR => match scheme {
            CompressionScheme::Pdict => Ok(ColumnData::Str(
                pdict::pdict_decode(body, n).ok_or_else(|| err("pdict"))?,
            )),
            CompressionScheme::Plain => {
                if body.len() < 4 {
                    return Err(err("plain str header"));
                }
                let nbytes = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
                let need = 4 + nbytes + (n + 1) * 4;
                if body.len() < need {
                    return Err(err("plain str body"));
                }
                let bytes_part = body[4..4 + nbytes].to_vec();
                let mut offsets = Vec::with_capacity(n + 1);
                let obase = 4 + nbytes;
                for i in 0..=n {
                    offsets.push(u32::from_le_bytes(
                        body[obase + i * 4..obase + i * 4 + 4].try_into().unwrap(),
                    ));
                }
                // Validate offsets are monotone and in range.
                let mut prev = 0u32;
                for &o in &offsets {
                    if o < prev || o as usize > bytes_part.len() {
                        return Err(err("str offsets"));
                    }
                    prev = o;
                }
                let col = StrColumn {
                    offsets,
                    bytes: bytes_part,
                };
                std::str::from_utf8(&col.bytes).map_err(|_| err("utf8"))?;
                Ok(ColumnData::Str(col))
            }
            _ => Err(err("bad str scheme")),
        },
        _ => Err(err("bad physical type")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::rng::Xoshiro256;

    fn roundtrip(col: &ColumnData) -> CompressionScheme {
        let (scheme, bytes) = compress_data(col);
        let back = decompress_data(&bytes).unwrap();
        assert_eq!(&back, col);
        scheme
    }

    #[test]
    fn ints_choose_sensible_schemes() {
        // sorted keys → PFOR-DELTA
        let keys = ColumnData::I64((0..10_000).collect());
        assert_eq!(roundtrip(&keys), CompressionScheme::PforDelta);
        // small range uniform → PFOR
        let mut r = Xoshiro256::seeded(3);
        let qty = ColumnData::I64((0..10_000).map(|_| r.range_i64(1, 50)).collect());
        assert_eq!(roundtrip(&qty), CompressionScheme::Pfor);
        // constant → RLE or width-0 PFOR, either way tiny and exact
        let c = ColumnData::I64(vec![9; 10_000]);
        let (_, bytes) = compress_data(&c);
        assert!(bytes.len() < 64);
        assert_eq!(decompress_data(&bytes).unwrap(), c);
        // adversarial full-range randoms → no scheme loses to plain badly
        let rnd = ColumnData::I64((0..1000).map(|_| r.next_u64() as i64).collect());
        let (_, bytes) = compress_data(&rnd);
        assert!(bytes.len() <= 1000 * 8 + 64);
        assert_eq!(decompress_data(&bytes).unwrap(), rnd);
    }

    #[test]
    fn i32_roundtrip_with_sign() {
        let col = ColumnData::I32(vec![-5, 0, 7, i32::MIN, i32::MAX]);
        roundtrip(&col);
        // plain-forced path as well
        let bytes = compress_with(&col, CompressionScheme::Plain);
        assert_eq!(decompress_data(&bytes).unwrap(), col);
    }

    #[test]
    fn dates_compress_with_delta() {
        // near-sorted dates (TPC-H shipdate pattern)
        let mut r = Xoshiro256::seeded(4);
        let col = ColumnData::I32(
            (0..50_000)
                .map(|i| 8000 + (i / 20) + r.range_i64(0, 3) as i32)
                .collect(),
        );
        let (scheme, bytes) = compress_data(&col);
        assert!(matches!(
            scheme,
            CompressionScheme::Pfor | CompressionScheme::PforDelta
        ));
        assert!(
            bytes.len() * 4 < 50_000 * 4,
            "ratio too low: {}",
            bytes.len()
        );
        assert_eq!(decompress_data(&bytes).unwrap(), col);
    }

    #[test]
    fn strings_low_and_high_cardinality() {
        let flags = ColumnData::Str(crate::column::StrColumn::from_iter((0..5000).map(|i| {
            if i % 2 == 0 {
                "A"
            } else {
                "R"
            }
        })));
        assert_eq!(roundtrip(&flags), CompressionScheme::Pdict);
        let uniq: Vec<String> = (0..500)
            .map(|i| format!("comment text {}", i * 37))
            .collect();
        let comments = ColumnData::Str(crate::column::StrColumn::from_iter(
            uniq.iter().map(|s| s.as_str()),
        ));
        assert_eq!(roundtrip(&comments), CompressionScheme::Plain);
    }

    #[test]
    fn bools_and_floats() {
        let b = ColumnData::Bool((0..777).map(|i| i % 3 == 0).collect());
        roundtrip(&b);
        let f = ColumnData::F64((0..500).map(|i| i as f64 * 0.25).collect());
        assert_eq!(roundtrip(&f), CompressionScheme::Plain);
        let fc = ColumnData::F64(vec![1.5; 10_000]);
        assert_eq!(roundtrip(&fc), CompressionScheme::Rle);
    }

    #[test]
    fn forced_schemes_roundtrip() {
        let col = ColumnData::I64(vec![100, 101, 102, 103, 5000, 104]);
        for s in [
            CompressionScheme::Plain,
            CompressionScheme::Rle,
            CompressionScheme::Pfor,
            CompressionScheme::PforDelta,
        ] {
            let bytes = compress_with(&col, s);
            assert_eq!(decompress_data(&bytes).unwrap(), col, "scheme {:?}", s);
        }
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let (_, bytes) = compress_data(&ColumnData::I64(vec![1, 2, 3]));
        assert!(decompress_data(&bytes[..3]).is_err());
        assert!(decompress_data(&[]).is_err());
        let mut bad = bytes.clone();
        bad[1] = 99; // invalid scheme
        assert!(decompress_data(&bad).is_err());
        let mut bad2 = bytes.clone();
        bad2[0] = 42; // invalid phys type
        assert!(decompress_data(&bad2).is_err());
    }

    #[test]
    fn empty_columns() {
        roundtrip(&ColumnData::I64(vec![]));
        roundtrip(&ColumnData::Str(crate::column::StrColumn::new()));
        roundtrip(&ColumnData::Bool(vec![]));
        roundtrip(&ColumnData::F64(vec![]));
    }
}
