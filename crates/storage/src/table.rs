//! PAX-grouped table storage.
//!
//! A table is a sequence of *row groups*; within a group every column is
//! stored as its own compressed block, and the blocks of one group describe
//! the same row range — the hybrid PAX/DSM layout of §I-A [3]: column-wise
//! I/O and compression, row-group-wise locality so a scan needing k columns
//! touches k co-located blocks per group.
//!
//! `TableStorage` is the *stable* image of a table: immutable between
//! checkpoints. All updates go through PDTs (`vw-pdt`) layered on top by the
//! transaction system; a checkpoint rebuilds the stable image via
//! [`TableStorage::rebuild_from_chunks`].

use crate::block::{decode_block, encode_block, ColumnBlock, MinMax, PruneOp};
use crate::column::{ColumnData, NullableColumn};
use crate::cursor::BlockCursor;
use crate::simdisk::SimDisk;
use std::cmp::Ordering;
use std::sync::Arc;
use vw_common::config::BLOCK_VALUES;
use vw_common::{BlockId, Result, Schema, TableLayout, Value, VwError};

/// One row group: per-column blocks covering the same row range.
#[derive(Debug, Clone)]
pub struct RowGroup {
    /// Rows in this group.
    pub n_rows: usize,
    /// First row's position within the table (stable coordinates).
    pub start_row: u64,
    /// One entry per schema column.
    pub columns: Vec<ColumnBlock>,
}

/// The immutable stable image of one table.
///
/// When the table declares a [`TableLayout`], the stable image *maintains*
/// it: every rebuild (bulk load finish, checkpoint) re-sorts rows on the
/// declared order and re-buckets them into range partitions, each partition's
/// row groups living on its own [`SimDisk`] shard. Between rebuilds, updates
/// accumulate in PDTs and may locally violate the order — the planner only
/// trusts the declared order while the master PDT is empty.
pub struct TableStorage {
    schema: Schema,
    /// Table name, used only to contextualize error messages.
    name: String,
    disk: Arc<SimDisk>,
    rows_per_group: usize,
    row_groups: Vec<RowGroup>,
    n_rows: u64,
    layout: TableLayout,
    /// One disk shard per range partition; empty when unpartitioned (all
    /// groups live on `disk`).
    part_disks: Vec<Arc<SimDisk>>,
    /// Contiguous group-index range `[start, end)` of each partition.
    /// Recomputed at every rebuild; empty when unpartitioned.
    part_extents: Vec<(usize, usize)>,
    /// Exclusive upper bound of each partition's key range (`None` =
    /// unbounded). Partition `p` holds rows with
    /// `bounds[p-1] <= key < bounds[p]`; NULL keys land in partition 0.
    part_bounds: Vec<Option<Value>>,
}

impl TableStorage {
    /// An empty table with the default group size.
    pub fn new(schema: Schema, disk: Arc<SimDisk>) -> Self {
        Self::with_group_size(schema, disk, BLOCK_VALUES)
    }

    /// An empty table with an explicit rows-per-group (tests, benches).
    pub fn with_group_size(schema: Schema, disk: Arc<SimDisk>, rows_per_group: usize) -> Self {
        assert!(rows_per_group > 0);
        TableStorage {
            schema,
            name: String::new(),
            disk,
            rows_per_group,
            row_groups: Vec::new(),
            n_rows: 0,
            layout: TableLayout::default(),
            part_disks: Vec::new(),
            part_extents: Vec::new(),
            part_bounds: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Set the table name used in error context (survives rebuilds).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    pub fn layout(&self) -> &TableLayout {
        &self.layout
    }

    /// Declare the physical design. Creates one disk shard per range
    /// partition and, if the table already holds rows, reorganizes the
    /// stable image in place.
    pub fn set_layout(&mut self, layout: TableLayout) -> Result<()> {
        for s in &layout.order {
            if s.col >= self.schema.len() {
                return Err(VwError::Storage(format!(
                    "ORDER BY column {} out of range for '{}'",
                    s.col, self.name
                )));
            }
        }
        if let Some(p) = &layout.partition {
            if p.col >= self.schema.len() {
                return Err(VwError::Storage(format!(
                    "PARTITION BY column {} out of range for '{}'",
                    p.col, self.name
                )));
            }
            if p.partitions == 0 {
                return Err(VwError::Storage("PARTITIONS must be >= 1".into()));
            }
        }
        self.layout = layout;
        let nparts = self.layout.partition_count();
        self.part_disks = if nparts > 1 {
            let base = if self.name.is_empty() {
                "table"
            } else {
                &self.name
            };
            (0..nparts)
                .map(|p| self.disk.shard(format!("{}.p{}", base, p)))
                .collect()
        } else {
            Vec::new()
        };
        self.part_extents.clear();
        self.part_bounds.clear();
        if self.n_rows > 0 {
            let cols = read_all_columns(self)?;
            self.rebuild_from_chunks(&[cols])?;
        }
        Ok(())
    }

    /// Number of range partitions (1 when unpartitioned).
    pub fn partition_count(&self) -> usize {
        if self.part_disks.is_empty() {
            1
        } else {
            self.part_disks.len()
        }
    }

    /// The partition column, when range-partitioned.
    pub fn partition_col(&self) -> Option<usize> {
        if self.part_disks.is_empty() {
            None
        } else {
            self.layout.partition.as_ref().map(|p| p.col)
        }
    }

    /// Group-index range `[start, end)` of partition `p`.
    pub fn partition_extent(&self, p: usize) -> (usize, usize) {
        if self.part_disks.is_empty() {
            (0, self.row_groups.len())
        } else {
            self.part_extents.get(p).copied().unwrap_or((0, 0))
        }
    }

    /// The device holding partition `p`'s row groups.
    pub fn partition_disk(&self, p: usize) -> &Arc<SimDisk> {
        self.part_disks.get(p).unwrap_or(&self.disk)
    }

    /// All partition shards (empty when unpartitioned).
    pub fn partition_disks(&self) -> &[Arc<SimDisk>] {
        &self.part_disks
    }

    /// The partition a row group belongs to (0 when unpartitioned).
    pub fn partition_of_group(&self, g: usize) -> usize {
        self.part_extents
            .iter()
            .position(|&(s, e)| g >= s && g < e)
            .unwrap_or(0)
    }

    fn disk_for_group(&self, g: usize) -> &Arc<SimDisk> {
        if self.part_disks.is_empty() {
            &self.disk
        } else {
            &self.part_disks[self.partition_of_group(g)]
        }
    }

    /// Whether partition `p` can contain rows satisfying
    /// `partition_col <op> bound`, judged from its range bounds alone.
    /// Conservative: `true` unless the whole key range is excluded. An
    /// empty partition never matches.
    pub fn partition_may_match(&self, p: usize, op: PruneOp, bound: &Value) -> bool {
        let (s, e) = self.partition_extent(p);
        if s == e {
            return false;
        }
        if self.part_disks.is_empty() {
            return true;
        }
        let lower = if p == 0 {
            &None
        } else {
            self.part_bounds.get(p - 1).unwrap_or(&None)
        };
        let upper = self.part_bounds.get(p).unwrap_or(&None);
        // Keys in partition p satisfy lower <= key < upper.
        let above_lower = |v: &Value| lower.as_ref().is_none_or(|l| v.total_cmp(l).is_ge());
        let below_upper = |v: &Value| upper.as_ref().is_none_or(|u| v.total_cmp(u).is_lt());
        match op {
            PruneOp::Eq => above_lower(bound) && below_upper(bound),
            // Some key < bound possible iff the partition starts below it.
            PruneOp::Lt => lower.as_ref().is_none_or(|l| l.total_cmp(bound).is_lt()),
            PruneOp::Le => lower.as_ref().is_none_or(|l| l.total_cmp(bound).is_le()),
            // Some key >= bound possible iff bound is below the upper bound.
            PruneOp::Gt | PruneOp::Ge => below_upper(bound),
        }
    }

    /// An empty table with this table's schema, devices and layout —
    /// the starting point for a reload that must preserve physical design.
    pub fn fresh_like(&self) -> TableStorage {
        TableStorage {
            schema: self.schema.clone(),
            name: self.name.clone(),
            disk: self.disk.clone(),
            rows_per_group: self.rows_per_group,
            row_groups: Vec::new(),
            n_rows: 0,
            layout: self.layout.clone(),
            part_disks: self.part_disks.clone(),
            part_extents: Vec::new(),
            part_bounds: Vec::new(),
        }
    }

    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    pub fn group_count(&self) -> usize {
        self.row_groups.len()
    }

    pub fn group(&self, g: usize) -> &RowGroup {
        &self.row_groups[g]
    }

    pub fn groups(&self) -> &[RowGroup] {
        &self.row_groups
    }

    pub fn rows_per_group(&self) -> usize {
        self.rows_per_group
    }

    /// Total encoded bytes across all blocks (compression accounting).
    pub fn encoded_bytes(&self) -> usize {
        self.row_groups
            .iter()
            .flat_map(|g| g.columns.iter())
            .map(|c| c.encoded_bytes)
            .sum()
    }

    /// Total uncompressed bytes the stored values would occupy.
    pub fn raw_bytes(&self) -> usize {
        self.row_groups
            .iter()
            .flat_map(|g| g.columns.iter())
            .map(|c| c.raw_bytes)
            .sum()
    }

    /// Attach (table, column, row-group) coordinates to a codec error.
    fn block_context(&self, group: usize, col: usize, e: VwError) -> VwError {
        let col_name = self
            .schema
            .fields()
            .get(col)
            .map(|f| f.name.as_str())
            .unwrap_or("?");
        VwError::Storage(format!(
            "table '{}', column '{}', row-group {}: {}",
            self.name, col_name, group, e
        ))
    }

    /// Append one chunk of columns as row groups, splitting at the group
    /// size. All columns must have identical, non-zero length.
    pub fn append_chunk(&mut self, columns: &[NullableColumn]) -> Result<()> {
        self.append_chunk_on(columns, self.disk.clone())
    }

    /// Append a chunk whose blocks go to `disk` (a partition shard).
    fn append_chunk_on(&mut self, columns: &[NullableColumn], disk: Arc<SimDisk>) -> Result<()> {
        if columns.len() != self.schema.len() {
            return Err(VwError::Storage(format!(
                "chunk has {} columns, table has {}",
                columns.len(),
                self.schema.len()
            )));
        }
        let n = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != n) {
            return Err(VwError::Storage("ragged chunk".into()));
        }
        let mut from = 0;
        while from < n {
            let to = (from + self.rows_per_group).min(n);
            let mut blocks = Vec::with_capacity(columns.len());
            for col in columns {
                let piece = NullableColumn::new(
                    col.data.slice(from, to),
                    col.nulls
                        .as_ref()
                        .map(|b| (from..to).map(|i| b.get(i)).collect()),
                )
                .normalize();
                let minmax = MinMax::from_column(&piece);
                let raw_bytes = piece.data.uncompressed_bytes();
                let (bytes, scheme) = encode_block(&piece);
                let encoded_bytes = bytes.len();
                let block_id = disk.write_block(bytes);
                blocks.push(ColumnBlock {
                    block_id,
                    n_values: to - from,
                    scheme,
                    minmax,
                    has_nulls: piece.nulls.is_some(),
                    encoded_bytes,
                    raw_bytes,
                });
            }
            self.row_groups.push(RowGroup {
                n_rows: to - from,
                start_row: self.n_rows,
                columns: blocks,
            });
            self.n_rows += (to - from) as u64;
            from = to;
        }
        Ok(())
    }

    /// The column block metadata at `(group, col)`, bounds-checked.
    fn block_at(&self, group: usize, col: usize) -> Result<&ColumnBlock> {
        let g = self
            .row_groups
            .get(group)
            .ok_or_else(|| VwError::Storage(format!("no row group {}", group)))?;
        g.columns
            .get(col)
            .ok_or_else(|| VwError::Storage(format!("no column {}", col)))
    }

    /// Block id of one column of one row group. Cooperative scans use this
    /// to register a scan's block set with the buffer manager and to fetch
    /// blocks through it instead of straight off the disk.
    pub fn column_block_id(&self, group: usize, col: usize) -> Result<BlockId> {
        Ok(self.block_at(group, col)?.block_id)
    }

    /// Read and decode one column of one row group from its disk.
    pub fn read_column(&self, group: usize, col: usize) -> Result<NullableColumn> {
        let id = self.block_at(group, col)?.block_id;
        let bytes = self.disk_for_group(group).read_block(id)?;
        self.decode_column_from(group, col, &bytes)
    }

    /// Decode a column block whose encoded bytes were fetched externally
    /// (e.g. through the buffer manager's demand-fetch path).
    pub fn decode_column_from(
        &self,
        group: usize,
        col: usize,
        bytes: &[u8],
    ) -> Result<NullableColumn> {
        let decoded = decode_block(bytes).map_err(|e| self.block_context(group, col, e))?;
        if decoded.len() != self.row_groups[group].n_rows {
            return Err(self.block_context(
                group,
                col,
                VwError::Storage("block row-count mismatch".into()),
            ));
        }
        Ok(decoded)
    }

    /// Read one column block and open a lazy [`BlockCursor`] over it instead
    /// of decoding eagerly. The compressed-execution scan path uses this to
    /// decode vector slices on demand and evaluate predicates on the encoded
    /// form.
    pub fn read_column_cursor(&self, group: usize, col: usize) -> Result<BlockCursor> {
        let id = self.block_at(group, col)?.block_id;
        let bytes = self.disk_for_group(group).read_block(id)?;
        self.column_cursor_from(group, col, bytes)
    }

    /// Open a lazy [`BlockCursor`] over externally-fetched block bytes.
    pub fn column_cursor_from(
        &self,
        group: usize,
        col: usize,
        bytes: Arc<Vec<u8>>,
    ) -> Result<BlockCursor> {
        let cursor = BlockCursor::new(bytes).map_err(|e| self.block_context(group, col, e))?;
        if cursor.n() != self.row_groups[group].n_rows {
            return Err(self.block_context(
                group,
                col,
                VwError::Storage("block row-count mismatch".into()),
            ));
        }
        Ok(cursor)
    }

    /// Row groups whose zone map may satisfy `col <op> bound`.
    pub fn groups_matching(&self, col: usize, op: PruneOp, bound: &Value) -> Vec<usize> {
        self.row_groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.columns[col].minmax.may_match(op, bound))
            .map(|(i, _)| i)
            .collect()
    }

    /// Read a full row by stable position (point lookups in tests/examples;
    /// deliberately slow — the engine never uses it).
    pub fn read_row(&self, row: u64) -> Result<Vec<Value>> {
        let g = self
            .row_groups
            .iter()
            .position(|g| row >= g.start_row && row < g.start_row + g.n_rows as u64)
            .ok_or_else(|| VwError::Storage(format!("row {} out of range", row)))?;
        let off = (row - self.row_groups[g].start_row) as usize;
        let mut out = Vec::with_capacity(self.schema.len());
        for c in 0..self.schema.len() {
            let col = self.read_column(g, c)?;
            out.push(col.get_value(off, self.schema.field(c).ty));
        }
        Ok(out)
    }

    /// Replace the whole stable image with new chunks (checkpoint, bulk
    /// load). Old blocks are freed from their disks. When the table declares
    /// a [`TableLayout`], the new image is reorganized to honour it: rows
    /// are stably sorted on the declared order and bucketed into range
    /// partitions whose bounds are recomputed as equal-count quantiles of
    /// the partition key.
    pub fn rebuild_from_chunks(&mut self, chunks: &[Vec<NullableColumn>]) -> Result<()> {
        let old: Vec<(BlockId, Arc<SimDisk>)> = (0..self.row_groups.len())
            .flat_map(|g| {
                let d = self.disk_for_group(g).clone();
                self.row_groups[g]
                    .columns
                    .iter()
                    .map(move |c| (c.block_id, d.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        self.row_groups.clear();
        self.n_rows = 0;
        self.part_extents.clear();
        self.part_bounds.clear();
        let total: usize = chunks
            .iter()
            .map(|c| c.first().map_or(0, |col| col.len()))
            .sum();
        if self.layout.is_trivial() || total == 0 {
            for chunk in chunks {
                self.append_chunk(chunk)?;
            }
        } else {
            let cols: Vec<NullableColumn> = if chunks.len() == 1 {
                chunks[0].clone()
            } else {
                (0..self.schema.len())
                    .map(|c| {
                        let parts: Vec<NullableColumn> =
                            chunks.iter().map(|ch| ch[c].clone()).collect();
                        concat_columns(self.schema.field(c).ty, &parts)
                    })
                    .collect::<Result<_>>()?
            };
            self.reorganize(cols)?;
        }
        for (id, d) in old {
            d.free_block(id);
        }
        Ok(())
    }

    /// Rewrite full-table columns in declared order, bucketed by range
    /// partition. Stable throughout: ties keep their input order, and
    /// bucketing keeps each bucket's rows in sorted order, so reorganizing
    /// already-conforming data is the identity permutation.
    fn reorganize(&mut self, cols: Vec<NullableColumn>) -> Result<()> {
        let n = cols.first().map_or(0, |c| c.len());
        let value_at =
            |c: usize, i: usize| -> Value { cols[c].get_value(i, self.schema.field(c).ty) };

        // 1. Stable sort on the declared order.
        let mut idx: Vec<usize> = (0..n).collect();
        if !self.layout.order.is_empty() {
            let keys: Vec<Vec<Value>> = self
                .layout
                .order
                .iter()
                .map(|s| (0..n).map(|i| value_at(s.col, i)).collect())
                .collect();
            idx.sort_by(|&a, &b| {
                for (s, kv) in self.layout.order.iter().zip(&keys) {
                    let (x, y) = (&kv[a], &kv[b]);
                    // NULL placement is absolute (NULLS FIRST/LAST), not
                    // relative to the sort direction.
                    let ord = match (x.is_null(), y.is_null()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => {
                            if s.nulls_first {
                                Ordering::Less
                            } else {
                                Ordering::Greater
                            }
                        }
                        (false, true) => {
                            if s.nulls_first {
                                Ordering::Greater
                            } else {
                                Ordering::Less
                            }
                        }
                        (false, false) => {
                            let o = x.total_cmp(y);
                            if s.asc {
                                o
                            } else {
                                o.reverse()
                            }
                        }
                    };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }

        // 2. Bucket rows into range partitions on equal-count quantile
        // bounds of the partition key (`Value::total_cmp` puts NULLs below
        // every value, so NULL keys land in partition 0).
        let nparts = if self.part_disks.is_empty() {
            1
        } else {
            self.part_disks.len()
        };
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nparts];
        if nparts > 1 {
            let pcol = self.layout.partition.as_ref().map(|p| p.col).unwrap_or(0);
            let pkeys: Vec<Value> = (0..n).map(|i| value_at(pcol, i)).collect();
            let mut by_key: Vec<usize> = (0..n).collect();
            by_key.sort_by(|&a, &b| pkeys[a].total_cmp(&pkeys[b]));
            let mut bounds: Vec<Value> = Vec::new();
            for p in 1..nparts {
                let v = pkeys[by_key[p * n / nparts]].clone();
                let is_new = !v.is_null()
                    && bounds
                        .last()
                        .is_none_or(|b: &Value| b.total_cmp(&v).is_lt());
                if is_new {
                    bounds.push(v);
                }
            }
            for &i in &idx {
                let p = bounds
                    .iter()
                    .position(|b| pkeys[i].total_cmp(b).is_lt())
                    .unwrap_or(bounds.len());
                buckets[p].push(i);
            }
            self.part_bounds = (0..nparts).map(|p| bounds.get(p).cloned()).collect();
        } else {
            buckets[0] = idx;
        }

        // 3. Materialize each partition on its own device.
        for (p, bucket) in buckets.into_iter().enumerate() {
            let start = self.row_groups.len();
            if !bucket.is_empty() {
                let part_cols: Vec<NullableColumn> = (0..self.schema.len())
                    .map(|c| {
                        let ty = self.schema.field(c).ty;
                        let vals: Vec<Value> =
                            bucket.iter().map(|&i| cols[c].get_value(i, ty)).collect();
                        NullableColumn::from_values(ty, &vals)
                    })
                    .collect::<Result<_>>()?;
                let disk = self.partition_disk(p).clone();
                self.append_chunk_on(&part_cols, disk)?;
            }
            if !self.part_disks.is_empty() {
                self.part_extents.push((start, self.row_groups.len()));
            }
        }
        Ok(())
    }
}

/// Row-at-a-time loader that buffers rows and flushes PAX groups.
pub struct TableBuilder {
    table: TableStorage,
    buffer: Vec<Vec<Value>>,
}

impl TableBuilder {
    pub fn new(schema: Schema, disk: Arc<SimDisk>) -> Self {
        TableBuilder {
            table: TableStorage::new(schema, disk),
            buffer: Vec::new(),
        }
    }

    pub fn with_group_size(schema: Schema, disk: Arc<SimDisk>, rows_per_group: usize) -> Self {
        TableBuilder {
            table: TableStorage::with_group_size(schema, disk, rows_per_group),
            buffer: Vec::new(),
        }
    }

    /// Build into a prepared (typically [`TableStorage::fresh_like`]) table,
    /// preserving its declared layout and partition devices.
    pub fn for_table(table: TableStorage) -> Self {
        TableBuilder {
            table,
            buffer: Vec::new(),
        }
    }

    /// Buffer one row; flushes a group when full.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.table.schema.len() {
            return Err(VwError::Storage(format!(
                "row has {} values, schema has {}",
                row.len(),
                self.table.schema.len()
            )));
        }
        for (v, f) in row.iter().zip(self.table.schema.fields()) {
            if v.is_null() && !f.nullable {
                return Err(VwError::Storage(format!(
                    "NULL in non-nullable column '{}'",
                    f.name
                )));
            }
        }
        self.buffer.push(row);
        if self.buffer.len() >= self.table.rows_per_group {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let schema = self.table.schema.clone();
        let mut columns = Vec::with_capacity(schema.len());
        for (c, f) in schema.fields().iter().enumerate() {
            let vals: Vec<Value> = self.buffer.iter().map(|r| r[c].clone()).collect();
            columns.push(NullableColumn::from_values(f.ty, &vals)?);
        }
        self.buffer.clear();
        self.table.append_chunk(&columns)
    }

    /// Flush remaining rows and return the finished table. Tables with a
    /// declared layout are reorganized (sorted, range-bucketed) as the final
    /// step, so a fresh load always conforms to its physical design.
    pub fn finish(mut self) -> Result<TableStorage> {
        self.flush()?;
        if !self.table.layout.is_trivial() && self.table.n_rows > 0 {
            let cols = read_all_columns(&self.table)?;
            self.table.rebuild_from_chunks(&[cols])?;
        }
        Ok(self.table)
    }
}

/// Convenience: read every column of every group into memory as one big
/// chunk per column (tests, checkpoint, the materialized baseline engine).
pub fn read_all_columns(table: &TableStorage) -> Result<Vec<NullableColumn>> {
    let ncols = table.schema().len();
    let mut out: Vec<Vec<NullableColumn>> = vec![Vec::new(); ncols];
    for g in 0..table.group_count() {
        for (c, parts) in out.iter_mut().enumerate() {
            parts.push(table.read_column(g, c)?);
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(c, parts)| concat_columns(table.schema().field(c).ty, &parts))
        .collect()
}

/// Concatenate column chunks of the same logical type.
pub fn concat_columns(ty: vw_common::DataType, parts: &[NullableColumn]) -> Result<NullableColumn> {
    let mut data = ColumnData::empty(ty);
    let mut nulls = vw_common::BitVec::new();
    let mut any_null = false;
    for p in parts {
        for i in 0..p.len() {
            if p.is_null(i) {
                data.push_safe_null();
                nulls.push(true);
                any_null = true;
            } else {
                data.push_value(&p.data.get_value(i, ty))?;
                nulls.push(false);
            }
        }
    }
    Ok(NullableColumn {
        data,
        nulls: if any_null { Some(nulls) } else { None },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simdisk::SimDiskConfig;
    use vw_common::{DataType, Field};

    fn disk() -> Arc<SimDisk> {
        Arc::new(SimDisk::new(SimDiskConfig::default()))
    }

    fn lineitem_like_schema() -> Schema {
        Schema::new(vec![
            Field::new("orderkey", DataType::I64),
            Field::new("quantity", DataType::I64),
            Field::new("shipdate", DataType::Date),
            Field::nullable("comment", DataType::Str),
        ])
    }

    fn build_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::I64(i as i64),
                    Value::I64((i % 50) as i64 + 1),
                    Value::Date(8000 + (i / 10) as i32),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("c{}", i % 3))
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn build_and_read_back() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 100);
        let rows = build_rows(250);
        for r in rows.clone() {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.n_rows(), 250);
        assert_eq!(t.group_count(), 3); // 100 + 100 + 50
        assert_eq!(t.group(2).n_rows, 50);
        assert_eq!(t.group(1).start_row, 100);
        // point reads match
        for probe in [0u64, 99, 100, 249] {
            assert_eq!(t.read_row(probe).unwrap(), rows[probe as usize]);
        }
        assert!(t.read_row(250).is_err());
        // column reads match
        let col = t.read_column(1, 1).unwrap();
        assert_eq!(col.len(), 100);
        assert_eq!(col.get_value(0, DataType::I64), Value::I64(1)); // row 100: 100 % 50 + 1
    }

    #[test]
    fn nulls_survive_storage() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 64);
        for r in build_rows(128) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        let col = t.read_column(0, 3).unwrap();
        assert!(col.is_null(0)); // i % 7 == 0
        assert!(!col.is_null(1));
        assert!(col.is_null(7));
        assert_eq!(col.get_value(1, DataType::Str), Value::Str("c1".into()));
    }

    #[test]
    fn rejects_bad_rows() {
        let mut b = TableBuilder::new(lineitem_like_schema(), disk());
        assert!(b.push_row(vec![Value::I64(1)]).is_err());
        // NULL into non-nullable
        assert!(b
            .push_row(vec![
                Value::Null,
                Value::I64(1),
                Value::Date(1),
                Value::Null
            ])
            .is_err());
    }

    #[test]
    fn zone_map_pruning() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 100);
        for r in build_rows(1000) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        // orderkey is 0..999 in order; groups of 100.
        let hits = t.groups_matching(0, PruneOp::Lt, &Value::I64(150));
        assert_eq!(hits, vec![0, 1]);
        let hits = t.groups_matching(0, PruneOp::Eq, &Value::I64(555));
        assert_eq!(hits, vec![5]);
        let hits = t.groups_matching(0, PruneOp::Ge, &Value::I64(900));
        assert_eq!(hits, vec![9]);
        // quantity cycles everywhere: no pruning possible
        let hits = t.groups_matching(1, PruneOp::Eq, &Value::I64(25));
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn read_all_and_concat() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 77);
        let rows = build_rows(200);
        for r in rows.clone() {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        let cols = read_all_columns(&t).unwrap();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].len(), 200);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&cols[3].get_value(i, DataType::Str), &row[3]);
        }
    }

    #[test]
    fn rebuild_replaces_and_frees() {
        let d = disk();
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), d.clone(), 50);
        for r in build_rows(100) {
            b.push_row(r).unwrap();
        }
        let mut t = b.finish().unwrap();
        let blocks_before = d.block_count();
        assert_eq!(blocks_before, 2 * 4);
        // rebuild with half the rows
        let rows = build_rows(50);
        let mut cols = Vec::new();
        for (c, f) in t.schema().fields().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            cols.push(NullableColumn::from_values(f.ty, &vals).unwrap());
        }
        t.rebuild_from_chunks(&[cols]).unwrap();
        assert_eq!(t.n_rows(), 50);
        assert_eq!(t.group_count(), 1);
        assert_eq!(d.block_count(), 4);
        assert_eq!(t.read_row(10).unwrap(), rows[10]);
    }

    #[test]
    fn compression_kicks_in_on_real_shapes() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 10_000);
        for r in build_rows(10_000) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        // orderkey sorted ints + dates near-sorted + tiny string domain:
        // stored size must be far below the naive 8+8+4+~2 bytes/row.
        let naive = 10_000 * (8 + 8 + 4 + 2);
        assert!(
            t.encoded_bytes() * 3 < naive,
            "encoded {} vs naive {}",
            t.encoded_bytes(),
            naive
        );
    }

    #[test]
    fn lazy_cursor_matches_eager_read() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 100);
        for r in build_rows(250) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        for g in 0..t.group_count() {
            for c in 0..t.schema().len() {
                let eager = t.read_column(g, c).unwrap();
                let mut cur = t.read_column_cursor(g, c).unwrap();
                assert_eq!(cur.n(), eager.len());
                let mid = eager.len() / 2;
                let sliced = cur.decode_slice(0, mid).unwrap();
                for i in 0..mid {
                    assert_eq!(
                        sliced.get_value(i, t.schema().field(c).ty),
                        eager.get_value(i, t.schema().field(c).ty),
                        "group {} col {} row {}",
                        g,
                        c,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn decode_errors_carry_block_coordinates() {
        let d = disk();
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), d.clone(), 100);
        for r in build_rows(100) {
            b.push_row(r).unwrap();
        }
        let mut t = b.finish().unwrap();
        t.set_name("lineitem");
        // Corrupt the quantity block of group 0 on disk.
        let blk = t.group(0).columns[1].block_id;
        let bytes = d.read_block(blk).unwrap();
        d.overwrite_block(blk, bytes[..2].to_vec()).unwrap();
        let msg = t.read_column(0, 1).unwrap_err().to_string();
        assert!(msg.contains("'lineitem'"), "msg: {}", msg);
        assert!(msg.contains("'quantity'"), "msg: {}", msg);
        assert!(msg.contains("row-group 0"), "msg: {}", msg);
        let msg = t.read_column_cursor(0, 1).unwrap_err().to_string();
        assert!(msg.contains("'quantity'"), "msg: {}", msg);
    }

    #[test]
    fn raw_bytes_accounts_uncompressed_size() {
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 100);
        for r in build_rows(200) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        // 200 rows: two i64 cols (8B), one date (4B), strings ("c0".. = 2B
        // each, +4B offsets, +4B for the extra offset per block).
        assert!(t.raw_bytes() > 200 * (8 + 8 + 4 + 2));
        assert!(t.raw_bytes() < 200 * 40);
        assert!(t.encoded_bytes() < t.raw_bytes());
    }

    fn shuffled_rows(n: usize) -> Vec<Vec<Value>> {
        // Deterministic shuffle of build_rows(n) (LCG step over the index).
        let rows = build_rows(n);
        (0..n).map(|i| rows[(i * 73 + 19) % n].clone()).collect()
    }

    #[test]
    fn declared_order_sorts_on_load_and_rebuild() {
        use vw_common::SortSpec;
        let mut t = TableStorage::with_group_size(lineitem_like_schema(), disk(), 50);
        t.set_name("t");
        t.set_layout(TableLayout::ordered(vec![SortSpec::new(0, true)]))
            .unwrap();
        let mut b = TableBuilder::for_table(t);
        for r in shuffled_rows(200) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.n_rows(), 200);
        for i in 0..200u64 {
            assert_eq!(t.read_row(i).unwrap()[0], Value::I64(i as i64));
        }
        // A rebuild from shuffled chunks re-sorts too (checkpoint path).
        let rows = shuffled_rows(100);
        let mut cols = Vec::new();
        for (c, f) in lineitem_like_schema().fields().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            cols.push(NullableColumn::from_values(f.ty, &vals).unwrap());
        }
        let mut t = t;
        t.rebuild_from_chunks(&[cols]).unwrap();
        for i in 0..100u64 {
            assert_eq!(t.read_row(i).unwrap()[0], Value::I64(i as i64));
        }
    }

    #[test]
    fn descending_order_and_nulls_last() {
        use vw_common::SortSpec;
        let schema = Schema::new(vec![Field::nullable("v", DataType::I64)]);
        let mut t = TableStorage::with_group_size(schema, disk(), 10);
        t.set_layout(TableLayout::ordered(vec![SortSpec {
            col: 0,
            asc: false,
            nulls_first: false,
        }]))
        .unwrap();
        let mut b = TableBuilder::for_table(t);
        for v in [Value::Null, Value::I64(3), Value::I64(9), Value::I64(1)] {
            b.push_row(vec![v]).unwrap();
        }
        let t = b.finish().unwrap();
        let got: Vec<Value> = (0..4).map(|i| t.read_row(i).unwrap()[0].clone()).collect();
        assert_eq!(
            got,
            vec![Value::I64(9), Value::I64(3), Value::I64(1), Value::Null]
        );
    }

    #[test]
    fn range_partitions_spread_groups_over_shards() {
        use vw_common::{RangePartitionSpec, SortSpec};
        let d = disk();
        let mut t = TableStorage::with_group_size(lineitem_like_schema(), d.clone(), 25);
        t.set_name("li");
        t.set_layout(TableLayout {
            order: vec![SortSpec::new(0, true)],
            partition: Some(RangePartitionSpec {
                col: 0,
                partitions: 4,
            }),
        })
        .unwrap();
        let mut b = TableBuilder::for_table(t);
        for r in shuffled_rows(400) {
            b.push_row(r).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.partition_count(), 4);
        assert_eq!(t.partition_col(), Some(0));
        // Equal-count split of 0..399: 100 rows = 4 groups per partition.
        let mut seen = 0;
        for p in 0..4 {
            let (s, e) = t.partition_extent(p);
            assert_eq!(e - s, 4, "partition {}", p);
            assert!(t.partition_disk(p).label().starts_with("li.p"));
            // Each shard holds exactly its partition's blocks.
            assert!(t.partition_disk(p).stats().writes >= 16);
            for g in s..e {
                assert_eq!(t.partition_of_group(g), p);
                seen += t.group(g).n_rows;
            }
        }
        assert_eq!(seen, 400);
        // Rows are globally sorted (partition col == leading order col).
        for i in 0..400u64 {
            assert_eq!(t.read_row(i).unwrap()[0], Value::I64(i as i64));
        }
        // Range pruning over partition bounds.
        assert!(t.partition_may_match(0, PruneOp::Lt, &Value::I64(50)));
        assert!(!t.partition_may_match(1, PruneOp::Lt, &Value::I64(50)));
        assert!(!t.partition_may_match(3, PruneOp::Lt, &Value::I64(50)));
        assert!(t.partition_may_match(3, PruneOp::Ge, &Value::I64(350)));
        assert!(!t.partition_may_match(0, PruneOp::Ge, &Value::I64(350)));
        assert!(t.partition_may_match(2, PruneOp::Eq, &Value::I64(250)));
        assert!(!t.partition_may_match(1, PruneOp::Eq, &Value::I64(250)));
        // Pruned partitions' reads never touch other shards: read a row
        // from partition 3 and check p0's read counter is unchanged.
        let before = t.partition_disk(0).stats().reads;
        t.read_row(399).unwrap();
        assert_eq!(t.partition_disk(0).stats().reads, before);
    }

    #[test]
    fn partitioned_rebuild_frees_old_shard_blocks() {
        use vw_common::{RangePartitionSpec, SortSpec};
        let d = disk();
        let mut t = TableStorage::with_group_size(lineitem_like_schema(), d.clone(), 25);
        t.set_layout(TableLayout {
            order: vec![SortSpec::new(0, true)],
            partition: Some(RangePartitionSpec {
                col: 0,
                partitions: 2,
            }),
        })
        .unwrap();
        let mut b = TableBuilder::for_table(t);
        for r in build_rows(100) {
            b.push_row(r).unwrap();
        }
        let mut t = b.finish().unwrap();
        // Shared family block map: main sees all live blocks.
        let live = d.block_count();
        assert_eq!(live, 4 * 4); // 4 groups x 4 columns
        let rows = build_rows(50);
        let mut cols = Vec::new();
        for (c, f) in t.schema().fields().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            cols.push(NullableColumn::from_values(f.ty, &vals).unwrap());
        }
        t.rebuild_from_chunks(&[cols]).unwrap();
        assert_eq!(t.n_rows(), 50);
        assert_eq!(d.block_count(), 2 * 4);
        for i in 0..50u64 {
            assert_eq!(t.read_row(i).unwrap()[0], Value::I64(i as i64));
        }
    }

    #[test]
    fn set_layout_reorganizes_existing_rows() {
        use vw_common::SortSpec;
        let mut b = TableBuilder::with_group_size(lineitem_like_schema(), disk(), 50);
        for r in shuffled_rows(120) {
            b.push_row(r).unwrap();
        }
        let mut t = b.finish().unwrap();
        assert_ne!(t.read_row(0).unwrap()[0], Value::I64(0));
        t.set_layout(TableLayout::ordered(vec![SortSpec::new(0, true)]))
            .unwrap();
        for i in 0..120u64 {
            assert_eq!(t.read_row(i).unwrap()[0], Value::I64(i as i64));
        }
        assert!(t
            .set_layout(TableLayout::ordered(vec![SortSpec::new(9, true)]))
            .is_err());
    }

    #[test]
    fn empty_table() {
        let t = TableStorage::new(lineitem_like_schema(), disk());
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.group_count(), 0);
        assert!(t.read_row(0).is_err());
        let b = TableBuilder::new(lineitem_like_schema(), disk());
        let t = b.finish().unwrap();
        assert_eq!(t.n_rows(), 0);
    }
}
