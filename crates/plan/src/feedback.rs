//! Plan-shape fingerprinting and history-corrected cardinality estimates.
//!
//! The optimizer's static estimates (equi-width histograms, FK-join and
//! square-root rules) are wrong in predictable ways, and a served system sees
//! the same query shapes again and again. This module closes that loop:
//! every executed Scan/Filter/Join node is fingerprinted by its *normalized
//! shape* (table set + join edges + predicate skeleton with literals
//! abstracted), the observed `(estimated, actual)` pair is folded into a
//! damped per-shape correction factor, and [`crate::optimizer`] multiplies
//! repeat estimates by that factor — flipping e.g. a join build-side choice
//! once history proves the static guess wrong.
//!
//! Design constraints:
//!
//! * **Rewrite-invariant fingerprints.** The shape recorded after execution
//!   (filters pushed into scans, Exchange inserted, aggregates split into
//!   partial/final, build sides possibly swapped behind a restoring Project)
//!   must hash identically to the shape the optimizer sees. Hence Project /
//!   Sort / Exchange / partial-Aggregate nodes are transparent, inner-join
//!   children combine commutatively, equivalence-column indexes and literal
//!   values are ignored, and a Filter directly over a (transparently wrapped)
//!   Scan hashes as if the predicate were pushed into the scan.
//! * **Damped, banded corrections.** A single unlucky literal must not whip
//!   the planner around: corrections move halfway toward each new
//!   observation, are clamped to `[1/32, 32]`, and only *apply* once at least
//!   [`MIN_SAMPLES`] observations agree on a factor outside the dead band
//!   `[2/3, 3/2]` (inside the band the static estimate is already good
//!   enough to not re-decide anything).

use crate::expr::{BinOp, Expr, UnOp};
use crate::plan::{AggPhase, JoinKind, LogicalPlan};
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Observations required before a correction factor is trusted.
pub const MIN_SAMPLES: u32 = 2;
/// Correction factors are clamped to `[1/MAX_FACTOR, MAX_FACTOR]`.
pub const MAX_FACTOR: f64 = 32.0;
/// Factors inside `[1/APPLY_BAND, APPLY_BAND]` are not worth applying.
pub const APPLY_BAND: f64 = 1.5;
/// Bounded shape memory; arbitrary eviction past this (the workload of one
/// process rarely has more than a few dozen distinct shapes).
const MAX_SHAPES: usize = 1024;

fn mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// Node tags. Distinct constants so e.g. an unfiltered scan and a LIMIT 0
// can't collide structurally.
const TAG_SCAN: u64 = 0x5343;
const TAG_JOIN: u64 = 0x4a4f;
const TAG_AGG: u64 = 0x4147;
const TAG_LIMIT: u64 = 0x4c49;

// Expression-skeleton tags: operator *classes*, not exact ops, and literal
// *presence*, not values — `x < 10` and `x <= 20` are the same shape.
const SK_COL: u64 = 1;
const SK_LIT: u64 = 2;
const SK_EQ: u64 = 3;
const SK_RANGE: u64 = 4;
const SK_ARITH: u64 = 5;
const SK_NOT: u64 = 6;
const SK_NULLTEST: u64 = 7;
const SK_LIKE: u64 = 8;
const SK_INLIST: u64 = 9;
const SK_OR: u64 = 10;
const SK_OTHER: u64 = 11;

/// Structural hash of one predicate conjunct. Column indexes are *not*
/// included: column pruning and projection pushdown renumber them between
/// the plan the optimizer sees and the plan that executes.
fn skeleton(e: &Expr) -> u64 {
    let h = FNV_OFFSET;
    match e {
        Expr::Col(_) => mix(h, SK_COL),
        Expr::Lit(_) => mix(h, SK_LIT),
        Expr::Cast(inner, _) => skeleton(inner),
        Expr::Binary { op, l, r } => {
            let tag = match op {
                BinOp::Eq | BinOp::Ne => SK_EQ,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => SK_RANGE,
                BinOp::Or => SK_OR,
                BinOp::And => SK_OTHER, // conjuncts are split before hashing
                _ => SK_ARITH,
            };
            // Comparisons hash their operand shapes commutatively so
            // `lit < col` and `col > lit` (the same predicate) collide.
            mix(mix(h, tag), skeleton(l).wrapping_add(skeleton(r)))
        }
        Expr::Unary { op, e } => {
            let tag = match op {
                UnOp::Not => SK_NOT,
                UnOp::IsNull | UnOp::IsNotNull => SK_NULLTEST,
                _ => SK_OTHER,
            };
            mix(mix(h, tag), skeleton(e))
        }
        Expr::Like { e, .. } => mix(mix(h, SK_LIKE), skeleton(e)),
        Expr::InList { e, .. } => mix(mix(h, SK_INLIST), skeleton(e)),
        Expr::Substr { e, .. } | Expr::Extract { e, .. } | Expr::AddMonths { e, .. } => {
            mix(mix(h, SK_OTHER), skeleton(e))
        }
        _ => mix(h, SK_OTHER),
    }
}

/// Order-insensitive skeleton of a whole predicate: the conjuncts of the
/// top-level AND combine by wrapping addition, so pushdown splitting or
/// adaptive reordering of conjuncts never changes the hash.
fn pred_skeleton(e: &Expr) -> u64 {
    let mut parts = Vec::new();
    crate::rewrite::pushdown::split_conjunction(e, &mut parts);
    parts
        .iter()
        .fold(0u64, |acc, p| acc.wrapping_add(skeleton(p)))
}

/// Strip nodes that don't change the logical shape: Project (including the
/// build-side-swap restoring projection), Sort, Exchange, and the *partial*
/// half of a split aggregate.
fn strip_transparent(plan: &LogicalPlan) -> &LogicalPlan {
    match plan {
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Exchange { input, .. } => strip_transparent(input),
        LogicalPlan::Aggregate {
            input,
            phase: AggPhase::Partial,
            ..
        } => strip_transparent(input),
        other => other,
    }
}

/// Fingerprint of a plan node's normalized shape. Stable across the
/// rewriter (constant folding, predicate pushdown, column pruning,
/// parallelization) and the optimizer's build-side swap.
pub fn fingerprint(plan: &LogicalPlan) -> u64 {
    fp(strip_transparent(plan), 0)
}

/// `pending` carries the skeleton of enclosing Filter predicates downward,
/// mirroring what `push_down_filters` does to the plan itself, so
/// `Filter(Scan)` before pushdown equals `Scan{filter}` after.
fn fp(plan: &LogicalPlan, pending: u64) -> u64 {
    match plan {
        LogicalPlan::Scan {
            table_id, filter, ..
        } => {
            let ps = filter
                .as_ref()
                .map(pred_skeleton)
                .unwrap_or(0)
                .wrapping_add(pending);
            mix(mix(mix(FNV_OFFSET, TAG_SCAN), table_id.as_u64()), ps)
        }
        LogicalPlan::Filter { input, predicate } => fp(
            strip_transparent(input),
            pending.wrapping_add(pred_skeleton(predicate)),
        ),
        LogicalPlan::Join {
            left, right, kind, ..
        } => {
            let l = fingerprint(left);
            let r = fingerprint(right);
            let kids = match kind {
                // Build-side swaps must not change the hash.
                JoinKind::Inner => l.wrapping_add(r),
                _ => mix(l, r),
            };
            let h = mix(mix(mix(FNV_OFFSET, TAG_JOIN), *kind as u64), kids);
            mix(h, pending)
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            // Partial phases were stripped by the caller; Single and Final
            // hash identically so the parallel split is invisible.
            let h = mix(
                mix(mix(FNV_OFFSET, TAG_AGG), group_by.len() as u64),
                fingerprint(input),
            );
            mix(h, pending)
        }
        LogicalPlan::Limit {
            input,
            offset,
            fetch,
        } => {
            let h = mix(
                mix(mix(FNV_OFFSET, TAG_LIMIT), *offset),
                fetch.wrapping_add(fingerprint(input)),
            );
            mix(h, pending)
        }
        // Transparent nodes reached directly (not via strip): delegate.
        other => {
            let stripped = strip_transparent(other);
            if std::ptr::eq(stripped, other) {
                mix(FNV_OFFSET, pending) // unreachable today; safe default
            } else {
                fp(stripped, pending)
            }
        }
    }
}

/// Should history record/correct this node kind? Aggregates are excluded on
/// purpose: correcting the square-root group-count rule would perturb join
/// build sides *above* aggregates and change floating-point summation
/// order between runs — the history loop must never make repeat executions
/// of the same query non-deterministic. Scan/Filter/Join actuals are exact
/// row counts with no such feedback hazard.
pub fn recordable(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Join { .. }
    )
}

#[derive(Debug, Clone, Copy)]
struct Correction {
    factor: f64,
    samples: u32,
}

/// One applied (or applicable) correction, for observability.
#[derive(Debug, Clone)]
pub struct AppliedCorrection {
    pub fingerprint: u64,
    pub factor: f64,
    pub node: &'static str,
}

/// Short node-kind label for observability lines.
pub fn node_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::MergeJoin { .. } => "MergeJoin",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::Exchange { .. } => "Exchange",
    }
}

/// Damped per-shape cardinality corrections learned from executed queries.
#[derive(Debug, Default)]
pub struct CardFeedback {
    shapes: HashMap<u64, Correction>,
}

impl CardFeedback {
    pub fn new() -> CardFeedback {
        CardFeedback::default()
    }

    /// Fold one `(estimated, actual)` observation into the shape's factor.
    pub fn record(&mut self, fp: u64, estimated: f64, actual: f64) {
        if !estimated.is_finite() || !actual.is_finite() {
            return;
        }
        let ratio = (actual.max(1.0) / estimated.max(1.0)).clamp(1.0 / MAX_FACTOR, MAX_FACTOR);
        match self.shapes.get_mut(&fp) {
            Some(c) => {
                // Damped: move halfway toward the new observation.
                c.factor += 0.5 * (ratio - c.factor);
                c.factor = c.factor.clamp(1.0 / MAX_FACTOR, MAX_FACTOR);
                c.samples = c.samples.saturating_add(1);
            }
            None => {
                if self.shapes.len() >= MAX_SHAPES {
                    if let Some(&k) = self.shapes.keys().next() {
                        self.shapes.remove(&k);
                    }
                }
                self.shapes.insert(
                    fp,
                    Correction {
                        factor: ratio,
                        samples: 1,
                    },
                );
            }
        }
    }

    /// The correction factor to apply for a shape, if it has enough samples
    /// and is far enough from 1.0 to be worth acting on.
    pub fn factor(&self, fp: u64) -> Option<f64> {
        let c = self.shapes.get(&fp)?;
        if c.samples >= MIN_SAMPLES && !(1.0 / APPLY_BAND..=APPLY_BAND).contains(&c.factor) {
            Some(c.factor)
        } else {
            None
        }
    }

    /// Raw factor regardless of gating (for introspection/tests).
    pub fn raw_factor(&self, fp: u64) -> Option<(f64, u32)> {
        self.shapes.get(&fp).map(|c| (c.factor, c.samples))
    }

    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Walk a plan and list every node whose estimate this feedback would
    /// correct — the `vw_plan_feedback` line in EXPLAIN ANALYZE.
    pub fn applicable(&self, plan: &LogicalPlan) -> Vec<AppliedCorrection> {
        let mut out = Vec::new();
        self.collect(plan, &mut out);
        out
    }

    fn collect(&self, plan: &LogicalPlan, out: &mut Vec<AppliedCorrection>) {
        if recordable(plan) {
            if let Some(f) = self.factor(fingerprint(plan)) {
                out.push(AppliedCorrection {
                    fingerprint: fingerprint(plan),
                    factor: f,
                    node: node_name(plan),
                });
            }
        }
        for c in plan.children() {
            self.collect(c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite;
    use vw_common::{DataType, Field, Schema, TableId, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::I64),
        ])
    }

    fn scan(id: u64) -> LogicalPlan {
        LogicalPlan::scan(&format!("t{id}"), TableId::new(id), schema())
    }

    fn pred(lit: i64) -> Expr {
        Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(lit)))
    }

    #[test]
    fn fingerprint_survives_pushdown_and_pruning() {
        let plan = scan(1).filter(pred(10));
        let before = fingerprint(&plan);
        let rewritten = rewrite::rewrite_default(plan, 1);
        assert!(matches!(
            rewritten,
            LogicalPlan::Scan {
                filter: Some(_),
                ..
            }
        ));
        assert_eq!(before, fingerprint(&rewritten));
    }

    #[test]
    fn fingerprint_abstracts_literals_but_not_tables() {
        assert_eq!(
            fingerprint(&scan(1).filter(pred(10))),
            fingerprint(&scan(1).filter(pred(99)))
        );
        assert_ne!(
            fingerprint(&scan(1).filter(pred(10))),
            fingerprint(&scan(2).filter(pred(10)))
        );
        // op class matters: range vs equality
        let eq = Expr::eq(Expr::col(0), Expr::lit(Value::I64(10)));
        assert_ne!(
            fingerprint(&scan(1).filter(pred(10))),
            fingerprint(&scan(1).filter(eq))
        );
    }

    #[test]
    fn fingerprint_invariant_under_build_side_swap() {
        let join = scan(1).join(scan(2), JoinKind::Inner, vec![(0, 1)]);
        let before = fingerprint(&join);
        // Simulate the optimizer's swap: Project over reversed join.
        let swapped = scan(2).join(scan(1), JoinKind::Inner, vec![(1, 0)]);
        let wrapped = LogicalPlan::Project {
            input: Box::new(swapped),
            exprs: vec![(Expr::col(2), "a".into()), (Expr::col(3), "b".into())],
        };
        assert_eq!(before, fingerprint(&wrapped));
        // ...but a Semi join of the same children is a different shape.
        let semi = scan(1).join(scan(2), JoinKind::Semi, vec![(0, 1)]);
        assert_ne!(before, fingerprint(&semi));
    }

    #[test]
    fn fingerprint_invariant_under_parallel_agg_split() {
        let agg = scan(1).filter(pred(5)).aggregate(vec![0], vec![]);
        let serial = fingerprint(&agg);
        let par = rewrite::rewrite_default(agg, 4);
        assert_eq!(serial, fingerprint(&par));
    }

    #[test]
    fn damping_and_gating() {
        let mut fb = CardFeedback::new();
        let fp = 42u64;
        // One sample: never applied, however extreme.
        fb.record(fp, 100.0, 1600.0);
        assert_eq!(fb.factor(fp), None);
        assert_eq!(fb.raw_factor(fp).unwrap().0, 16.0);
        // Second agreeing sample: applied, damped toward the observation.
        fb.record(fp, 100.0, 1600.0);
        let f = fb.factor(fp).expect("two samples outside band apply");
        assert!((f - 16.0).abs() < 1e-9);
        // Contradicting samples pull it back toward 1 and out of use.
        for _ in 0..8 {
            fb.record(fp, 100.0, 100.0);
        }
        assert_eq!(fb.factor(fp), None);
    }

    #[test]
    fn in_band_factors_do_not_apply() {
        let mut fb = CardFeedback::new();
        fb.record(7, 100.0, 120.0);
        fb.record(7, 100.0, 120.0);
        assert_eq!(fb.factor(7), None); // 1.2 is inside the dead band
        fb.record(8, 100.0, 6.0);
        fb.record(8, 100.0, 6.0);
        assert!(fb.factor(8).unwrap() < 0.1); // far under-estimate applies
    }

    #[test]
    fn extreme_ratios_are_clamped() {
        let mut fb = CardFeedback::new();
        fb.record(9, 1.0, 1.0e12);
        fb.record(9, 1.0, 1.0e12);
        assert_eq!(fb.factor(9), Some(MAX_FACTOR));
        fb.record(10, 1.0e12, 1.0);
        fb.record(10, 1.0e12, 1.0);
        assert_eq!(fb.factor(10), Some(1.0 / MAX_FACTOR));
    }

    #[test]
    fn applicable_walk_finds_corrected_nodes() {
        let plan = scan(1).filter(pred(10));
        let fp = fingerprint(&plan);
        let mut fb = CardFeedback::new();
        fb.record(fp, 10.0, 1000.0);
        fb.record(fp, 10.0, 1000.0);
        let hits = fb.applicable(&plan);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].fingerprint, fp);
        assert_eq!(hits[0].node, "Filter");
    }
}
