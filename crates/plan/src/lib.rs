//! `vw-plan` — logical query algebra, rewriter and optimizer.
//!
//! In the Vectorwise product, SQL parsing and cost-based optimization happen
//! in the Ingres front-end, a cross-compiler emits X100 algebra, and a
//! column-oriented *rewriter* inside X100 applies rule-based transformations
//! (the paper names NULL handling and multi-core parallelization as rewriter
//! duties, §I-B). This crate is the engine-neutral middle of that stack:
//!
//! * [`expr`] — typed scalar expressions with *reference* (row-at-a-time)
//!   evaluation semantics. The vectorized engine must agree with these
//!   semantics kernel-for-kernel; tests compare the two.
//! * [`plan`] — the logical algebra ([`LogicalPlan`]): Scan, Filter, Project,
//!   Join, Aggregate, Sort, Limit, Exchange.
//! * [`rewrite`] — the rule-based rewriter: constant folding, predicate
//!   pushdown, and the Volcano-style `parallelize` rule that introduces
//!   Exchange operators and splits aggregates into partial/final pairs.
//! * [`stats`] + [`optimizer`] — equi-width histograms, selectivity
//!   estimation and greedy join ordering (standing in for Ingres' histogram
//!   optimizer).

pub mod expr;
pub mod feedback;
pub mod optimizer;
pub mod plan;
pub mod rewrite;
pub mod stats;

pub use expr::{AggExpr, AggFunc, BinOp, DatePart, Expr, UnOp};
pub use feedback::{fingerprint, recordable, AppliedCorrection, CardFeedback};
pub use optimizer::{estimate_rows, optimize, optimize_with_feedback};
pub use plan::{JoinKind, LogicalPlan, SortKey};
pub use rewrite::{
    apply_interesting_orders, fold_constants, parallelize, prune_columns, push_down_filters,
    rewrite_default, DeliveredOrders,
};
pub use stats::{ColStats, Histogram, TableStats};
