//! The logical algebra.
//!
//! This is the engine-neutral plan that all three executors cross-compile
//! from: the vectorized engine (`vw-core`), the tuple-at-a-time engine and
//! the full-materialization engine (`vw-baselines`). It corresponds to the
//! X100 algebra the Ingres cross-compiler emits in the real product [7].

use crate::expr::{AggExpr, Expr};
use std::fmt;
use vw_common::{DataType, Field, Result, Schema, TableId, VwError};

/// Join types supported by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    /// Left outer join: unmatched left rows padded with NULLs.
    Left,
    /// Left semi join: left rows with at least one match.
    Semi,
    /// Left anti join: left rows with no match.
    Anti,
}

impl JoinKind {
    pub fn name(self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER",
            JoinKind::Left => "LEFT",
            JoinKind::Semi => "SEMI",
            JoinKind::Anti => "ANTI",
        }
    }
}

/// One ORDER BY key: output column index + direction + NULL placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub col: usize,
    pub asc: bool,
    /// Whether NULLs sort before non-NULLs. Defaults to the direction's
    /// historical behaviour (NULLs are the smallest value): FIRST when
    /// ascending, LAST when descending. `ORDER BY … NULLS FIRST/LAST`
    /// overrides it.
    pub nulls_first: bool,
}

impl SortKey {
    /// A key with the default NULL placement for its direction.
    pub fn new(col: usize, asc: bool) -> SortKey {
        SortKey {
            col,
            asc,
            nulls_first: asc,
        }
    }

    /// Ascending key, NULLS FIRST (the ascending default).
    pub fn asc(col: usize) -> SortKey {
        SortKey::new(col, true)
    }

    /// Descending key, NULLS LAST (the descending default).
    pub fn desc(col: usize) -> SortKey {
        SortKey::new(col, false)
    }

    /// True when the NULL placement is the default for the direction.
    pub fn default_nulls(&self) -> bool {
        self.nulls_first == self.asc
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan with optional column projection (pushed down by the
    /// binder) and optional residual predicate (pushed down by the rewriter;
    /// executors may additionally use it for zone-map pruning).
    Scan {
        table: String,
        table_id: TableId,
        /// Full table schema.
        schema: Schema,
        /// Columns actually produced, in order (None = all).
        projection: Option<Vec<usize>>,
        /// Predicate over the *projected* schema.
        filter: Option<Expr>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Hash join on equi-key pairs, with an optional residual filter over the
    /// concatenated (left ++ right) schema.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Streaming merge join on equi-key pairs: both inputs must deliver rows
    /// sorted ascending on their key columns (guaranteed by the ordering
    /// pass, which only plans this over declared-order scans). Inner joins
    /// only; spill-free and budget-light. Emission is probe-major (left
    /// stream order, each left row paired with its matches in right stream
    /// order — the hash join probes with the left input) so results are
    /// byte-identical to the hash join it replaces.
    MergeJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<(usize, usize)>,
    },
    /// Group-by (possibly empty = scalar aggregate).
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        /// Set by the `parallelize` rewrite: this node combines partial
        /// states rather than raw rows.
        phase: AggPhase,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<LogicalPlan>,
        offset: u64,
        fetch: u64,
    },
    /// Volcano-style exchange: run `input` in `partitions` parallel workers
    /// (each worker sees a disjoint slice of every Scan below) and union the
    /// results. Inserted by the `parallelize` rewrite.
    Exchange {
        input: Box<LogicalPlan>,
        partitions: usize,
    },
}

/// Phase marker for parallel aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPhase {
    /// Normal single-phase aggregation.
    Single,
    /// Produces partial states (runs inside an Exchange).
    Partial,
    /// Consumes partial states (runs above an Exchange).
    Final,
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::Scan {
                schema, projection, ..
            } => Ok(match projection {
                Some(cols) => schema.project(cols),
                None => schema.clone(),
            }),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    fields.push(Field {
                        name: name.clone(),
                        ty: e.data_type(&in_schema)?,
                        nullable: e.nullable(&in_schema),
                    });
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let ls = left.schema()?;
                match kind {
                    JoinKind::Semi | JoinKind::Anti => Ok(ls),
                    JoinKind::Inner => Ok(ls.join(&right.schema()?)),
                    JoinKind::Left => {
                        // Right side becomes nullable.
                        let rs = right.schema()?;
                        let mut fields: Vec<Field> = ls.fields().to_vec();
                        for f in rs.fields() {
                            fields.push(Field {
                                name: f.name.clone(),
                                ty: f.ty,
                                nullable: true,
                            });
                        }
                        Ok(Schema::new(fields))
                    }
                }
            }
            LogicalPlan::MergeJoin { left, right, .. } => Ok(left.schema()?.join(&right.schema()?)),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                phase,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::new();
                for &g in group_by {
                    if g >= in_schema.len() {
                        return Err(VwError::Plan(format!("group key #{} out of range", g)));
                    }
                    fields.push(in_schema.field(g).clone());
                }
                for a in aggs {
                    let ty = a.output_type(&in_schema)?;
                    fields.push(Field {
                        name: a.name.clone(),
                        ty,
                        nullable: true,
                    });
                }
                if *phase == AggPhase::Partial {
                    // Extra hidden count columns, one per AVG, appended so the
                    // Final phase can reconstruct the mean exactly.
                    for a in aggs {
                        if a.func == crate::expr::AggFunc::Avg {
                            fields.push(Field::new(format!("__{}_count", a.name), DataType::I64));
                        }
                    }
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Exchange { input, .. } => input.schema(),
        }
    }

    /// Child nodes (0, 1 or 2).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Exchange { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::MergeJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Rebuild this node with new children (same arity).
    pub fn with_children(&self, mut children: Vec<LogicalPlan>) -> LogicalPlan {
        match self {
            LogicalPlan::Scan { .. } => {
                assert!(children.is_empty());
                self.clone()
            }
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                input: Box::new(children.remove(0)),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { exprs, .. } => LogicalPlan::Project {
                input: Box::new(children.remove(0)),
                exprs: exprs.clone(),
            },
            LogicalPlan::Join {
                kind, on, residual, ..
            } => {
                let left = children.remove(0);
                let right = children.remove(0);
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: *kind,
                    on: on.clone(),
                    residual: residual.clone(),
                }
            }
            LogicalPlan::MergeJoin { on, .. } => {
                let left = children.remove(0);
                let right = children.remove(0);
                LogicalPlan::MergeJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: on.clone(),
                }
            }
            LogicalPlan::Aggregate {
                group_by,
                aggs,
                phase,
                ..
            } => LogicalPlan::Aggregate {
                input: Box::new(children.remove(0)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                phase: *phase,
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: Box::new(children.remove(0)),
                keys: keys.clone(),
            },
            LogicalPlan::Limit { offset, fetch, .. } => LogicalPlan::Limit {
                input: Box::new(children.remove(0)),
                offset: *offset,
                fetch: *fetch,
            },
            LogicalPlan::Exchange { partitions, .. } => LogicalPlan::Exchange {
                input: Box::new(children.remove(0)),
                partitions: *partitions,
            },
        }
    }

    /// Short operator name (no arguments), for compact profile tables.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::MergeJoin { .. } => "MergeJoin",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Exchange { .. } => "Exchange",
        }
    }

    /// One-line description of this node (no children).
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                filter,
                ..
            } => {
                let mut s = format!("Scan {}", table);
                if let Some(p) = projection {
                    s.push_str(&format!(" cols={:?}", p));
                }
                if let Some(f) = filter {
                    s.push_str(&format!(" filter={}", f));
                }
                s
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter {}", predicate),
            LogicalPlan::Project { exprs, .. } => format!(
                "Project [{}]",
                exprs
                    .iter()
                    .map(|(e, n)| format!("{} AS {}", e, n))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Join {
                kind, on, residual, ..
            } => {
                let mut s = format!(
                    "{}Join on {}",
                    kind.name(),
                    on.iter()
                        .map(|(l, r)| format!("l#{}=r#{}", l, r))
                        .collect::<Vec<_>>()
                        .join(" AND ")
                );
                if let Some(r) = residual {
                    s.push_str(&format!(" residual={}", r));
                }
                s
            }
            LogicalPlan::MergeJoin { on, .. } => format!(
                "MergeJoin on {}",
                on.iter()
                    .map(|(l, r)| format!("l#{}=r#{}", l, r))
                    .collect::<Vec<_>>()
                    .join(" AND ")
            ),
            LogicalPlan::Aggregate {
                group_by,
                aggs,
                phase,
                ..
            } => format!(
                "Aggregate{} by={:?} aggs=[{}]",
                match phase {
                    AggPhase::Single => "",
                    AggPhase::Partial => "(partial)",
                    AggPhase::Final => "(final)",
                },
                group_by,
                aggs.iter()
                    .map(|a| a.func.name().to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Sort { keys, .. } => format!(
                "Sort [{}]",
                keys.iter()
                    .map(|k| {
                        let nulls = if k.default_nulls() {
                            ""
                        } else if k.nulls_first {
                            " NULLS FIRST"
                        } else {
                            " NULLS LAST"
                        };
                        format!("#{}{}{}", k.col, if k.asc { "" } else { " DESC" }, nulls)
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Limit { offset, fetch, .. } => {
                format!("Limit offset={} fetch={}", offset, fetch)
            }
            LogicalPlan::Exchange { partitions, .. } => {
                format!("Exchange partitions={}", partitions)
            }
        }
    }

    /// Multi-line EXPLAIN rendering.
    pub fn explain(&self) -> String {
        fn walk(p: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&p.describe());
            out.push('\n');
            for c in p.children() {
                walk(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Builder helpers for hand-constructing plans (TPC-H queries, tests).
impl LogicalPlan {
    pub fn scan(table: &str, table_id: TableId, schema: Schema) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.to_string(),
            table_id,
            schema,
            projection: None,
            filter: None,
        }
    }

    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<(Expr, &str)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
        }
    }

    pub fn join(self, right: LogicalPlan, kind: JoinKind, on: Vec<(usize, usize)>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind,
            on,
            residual: None,
        }
    }

    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
            phase: AggPhase::Single,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    pub fn limit(self, offset: u64, fetch: u64) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            offset,
            fetch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, BinOp};
    use vw_common::Value;

    fn scan() -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            TableId::new(1),
            Schema::new(vec![
                Field::new("a", DataType::I64),
                Field::nullable("b", DataType::F64),
                Field::new("c", DataType::Str),
            ]),
        )
    }

    #[test]
    fn scan_schema_and_projection() {
        let s = scan();
        assert_eq!(s.schema().unwrap().len(), 3);
        let p = LogicalPlan::Scan {
            table: "t".into(),
            table_id: TableId::new(1),
            schema: s.schema().unwrap(),
            projection: Some(vec![2, 0]),
            filter: None,
        };
        let ps = p.schema().unwrap();
        assert_eq!(ps.field(0).name, "c");
        assert_eq!(ps.field(1).name, "a");
    }

    #[test]
    fn project_schema_types() {
        let p = scan().project(vec![
            (Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)), "sum"),
            (Expr::lit(Value::I64(1)), "one"),
        ]);
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).ty, DataType::F64);
        assert!(s.field(0).nullable); // b is nullable
        assert_eq!(s.field(1).ty, DataType::I64);
        assert!(!s.field(1).nullable);
    }

    #[test]
    fn join_schemas() {
        let l = scan();
        let r = scan();
        let inner = l.clone().join(r.clone(), JoinKind::Inner, vec![(0, 0)]);
        assert_eq!(inner.schema().unwrap().len(), 6);
        let semi = l.clone().join(r.clone(), JoinKind::Semi, vec![(0, 0)]);
        assert_eq!(semi.schema().unwrap().len(), 3);
        let left = l.join(r, JoinKind::Left, vec![(0, 0)]);
        let ls = left.schema().unwrap();
        assert_eq!(ls.len(), 6);
        assert!(ls.field(3).nullable); // right side forced nullable
        assert!(!ls.field(0).nullable);
    }

    #[test]
    fn aggregate_schema() {
        let a = scan().aggregate(
            vec![2],
            vec![
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(0)),
                    name: "total".into(),
                },
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                },
            ],
        );
        let s = a.schema().unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(0).name, "c");
        assert_eq!(s.field(1).ty, DataType::I64);
        assert_eq!(s.field(2).name, "n");
        // bad group key
        let bad = scan().aggregate(vec![9], vec![]);
        assert!(bad.schema().is_err());
    }

    #[test]
    fn partial_aggregate_adds_avg_count_column() {
        let mut a = scan().aggregate(
            vec![],
            vec![AggExpr {
                func: AggFunc::Avg,
                arg: Some(Expr::col(0)),
                name: "m".into(),
            }],
        );
        if let LogicalPlan::Aggregate { phase, .. } = &mut a {
            *phase = AggPhase::Partial;
        }
        let s = a.schema().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(1).name, "__m_count");
    }

    #[test]
    fn children_and_rebuild() {
        let p = scan()
            .filter(Expr::binary(
                BinOp::Gt,
                Expr::col(0),
                Expr::lit(Value::I64(5)),
            ))
            .limit(0, 10);
        assert_eq!(p.children().len(), 1);
        let rebuilt = p.with_children(vec![p.children()[0].clone()]);
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn explain_renders_tree() {
        let p = scan()
            .filter(Expr::binary(
                BinOp::Gt,
                Expr::col(0),
                Expr::lit(Value::I64(5)),
            ))
            .aggregate(
                vec![],
                vec![AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                }],
            );
        let text = p.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("  Filter"));
        assert!(text.contains("    Scan t"));
    }
}
