//! Order-aware planning ("interesting orders").
//!
//! Tables may declare a physical sort order (`CREATE TABLE … ORDER BY`),
//! which the storage layer maintains across loads and checkpoints. This pass
//! propagates that *delivered order* up through order-preserving operators
//! (Filter, Project-of-columns, Limit) and exploits it twice:
//!
//! * a `Sort` whose keys are a prefix of the order its input already
//!   delivers is dropped — the stream is a streaming pass-through;
//! * an inner equi-`Join` whose two inputs both deliver their join keys in
//!   ascending order becomes a streaming [`LogicalPlan::MergeJoin`] —
//!   spill-free and budget-light, no hash build.
//!
//! The pass only fires for serial plans (`serial == true`, i.e. effective
//! dop 1): parallel morsel execution interleaves row groups and destroys
//! delivered order, and keeping the parallel plan shape unchanged preserves
//! byte-identical results between ordered and unordered layouts at any dop.

use crate::expr::Expr;
use crate::plan::{JoinKind, LogicalPlan, SortKey};
use std::collections::HashMap;
use vw_common::{SortSpec, TableId};

/// Per-table delivered storage order, as the executor will stream it. The
/// caller (the database facade) includes a table only when its scan really
/// delivers the declared order: layout declares one, the master PDT is
/// empty (no unmerged churn), and partitioning is aligned with the leading
/// sort column.
pub type DeliveredOrders = HashMap<TableId, Vec<SortSpec>>;

/// Apply order-aware rewrites. `serial` must be true only when the plan will
/// not be parallelized afterwards.
pub fn apply_interesting_orders(
    plan: LogicalPlan,
    delivered: &DeliveredOrders,
    serial: bool,
) -> LogicalPlan {
    if !serial || delivered.is_empty() {
        return plan;
    }
    rec(plan, delivered)
}

fn rec(plan: LogicalPlan, delivered: &DeliveredOrders) -> LogicalPlan {
    let children: Vec<LogicalPlan> = plan
        .children()
        .into_iter()
        .map(|c| rec(c.clone(), delivered))
        .collect();
    let node = plan.with_children(children);
    match node {
        LogicalPlan::Sort { input, keys } => {
            let d = delivered_order(&input, delivered);
            let redundant = !keys.is_empty()
                && keys.len() <= d.len()
                && keys.iter().zip(&d).all(|(k, dk)| k == dk);
            if redundant {
                *input
            } else {
                LogicalPlan::Sort { input, keys }
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            on,
            residual: None,
        } if !on.is_empty() => {
            let dl = delivered_order(&left, delivered);
            let dr = delivered_order(&right, delivered);
            let streaming = on.len() <= dl.len()
                && on.len() <= dr.len()
                && on
                    .iter()
                    .enumerate()
                    .all(|(i, &(l, r))| dl[i].col == l && dl[i].asc && dr[i].col == r && dr[i].asc);
            if streaming {
                LogicalPlan::MergeJoin { left, right, on }
            } else {
                LogicalPlan::Join {
                    left,
                    right,
                    kind: JoinKind::Inner,
                    on,
                    residual: None,
                }
            }
        }
        other => other,
    }
}

/// The sort order `plan`'s output stream delivers, in output-column
/// coordinates. A prefix: truncated at the first declared column the node
/// no longer carries as a pure column reference.
pub fn delivered_order(plan: &LogicalPlan, delivered: &DeliveredOrders) -> Vec<SortKey> {
    match plan {
        LogicalPlan::Scan {
            table_id,
            schema,
            projection,
            ..
        } => {
            let Some(specs) = delivered.get(table_id) else {
                return Vec::new();
            };
            let proj: Vec<usize> = match projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            let mut out = Vec::new();
            for s in specs {
                match proj.iter().position(|&c| c == s.col) {
                    Some(p) => out.push(SortKey {
                        col: p,
                        asc: s.asc,
                        nulls_first: s.nulls_first,
                    }),
                    None => break,
                }
            }
            out
        }
        // Selection and row limits preserve the input's order.
        LogicalPlan::Filter { input, .. } | LogicalPlan::Limit { input, .. } => {
            delivered_order(input, delivered)
        }
        LogicalPlan::Project { input, exprs } => {
            let d = delivered_order(input, delivered);
            let mut out = Vec::new();
            for k in d {
                match exprs
                    .iter()
                    .position(|(e, _)| matches!(e, Expr::Col(c) if *c == k.col))
                {
                    Some(p) => out.push(SortKey { col: p, ..k }),
                    None => break,
                }
            }
            out
        }
        LogicalPlan::Sort { keys, .. } => keys.clone(),
        // Probe-major merge emission keeps the stream nondecreasing on the
        // join keys (both sides carry equal key values, so left coordinates
        // describe the output order too). Key columns never contain NULLs
        // after an inner join.
        LogicalPlan::MergeJoin { on, .. } => on
            .iter()
            .map(|&(l, _)| SortKey {
                col: l,
                asc: true,
                nulls_first: true,
            })
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{DataType, Field, Schema};

    fn scan(tid: u64) -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            TableId::new(tid),
            Schema::new(vec![
                Field::new("k", DataType::I64),
                Field::new("v", DataType::F64),
            ]),
        )
    }

    fn ordered_on_k(tid: u64) -> DeliveredOrders {
        let mut m = HashMap::new();
        m.insert(TableId::new(tid), vec![SortSpec::new(0, true)]);
        m
    }

    #[test]
    fn drops_redundant_sort() {
        let d = ordered_on_k(1);
        let p = scan(1).sort(vec![SortKey::asc(0)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(matches!(out, LogicalPlan::Scan { .. }), "{}", out.explain());
    }

    #[test]
    fn keeps_sort_on_other_key_or_direction() {
        let d = ordered_on_k(1);
        let p = scan(1).sort(vec![SortKey::asc(1)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(matches!(out, LogicalPlan::Sort { .. }));
        let p = scan(1).sort(vec![SortKey::desc(0)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(matches!(out, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn sort_survives_parallel_plans() {
        let d = ordered_on_k(1);
        let p = scan(1).sort(vec![SortKey::asc(0)]);
        let out = apply_interesting_orders(p, &d, false);
        assert!(matches!(out, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn order_crosses_filter_and_projection() {
        let d = ordered_on_k(1);
        let p = scan(1)
            .filter(Expr::binary(
                crate::expr::BinOp::Gt,
                Expr::col(1),
                Expr::lit(vw_common::Value::F64(0.0)),
            ))
            .project(vec![(Expr::col(0), "k2")])
            .sort(vec![SortKey::asc(0)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(
            matches!(out, LogicalPlan::Project { .. }),
            "{}",
            out.explain()
        );
    }

    #[test]
    fn plans_merge_join_when_both_sides_ordered() {
        let mut d = ordered_on_k(1);
        d.extend(ordered_on_k(2));
        let p = scan(1).join(scan(2), JoinKind::Inner, vec![(0, 0)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(
            matches!(out, LogicalPlan::MergeJoin { .. }),
            "{}",
            out.explain()
        );
    }

    #[test]
    fn hash_join_kept_when_one_side_unordered() {
        let d = ordered_on_k(1);
        let p = scan(1).join(scan(2), JoinKind::Inner, vec![(0, 0)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(matches!(out, LogicalPlan::Join { .. }));
        // Non-inner kinds never convert.
        let mut both = ordered_on_k(1);
        both.extend(ordered_on_k(2));
        let p = scan(1).join(scan(2), JoinKind::Semi, vec![(0, 0)]);
        let out = apply_interesting_orders(p, &both, true);
        assert!(matches!(out, LogicalPlan::Join { .. }));
    }

    #[test]
    fn sort_over_merge_join_key_is_dropped() {
        let mut d = ordered_on_k(1);
        d.extend(ordered_on_k(2));
        let p = scan(1)
            .join(scan(2), JoinKind::Inner, vec![(0, 0)])
            .sort(vec![SortKey::asc(0)]);
        let out = apply_interesting_orders(p, &d, true);
        assert!(
            matches!(out, LogicalPlan::MergeJoin { .. }),
            "{}",
            out.explain()
        );
    }
}
