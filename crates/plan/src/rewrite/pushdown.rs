//! Predicate pushdown.
//!
//! Splits AND-conjunctions and pushes each conjunct as far down as its column
//! references allow: through Project (rewriting column refs to the underlying
//! expressions when they are pure column references), through the matching
//! side of a Join, and finally *into* Scan nodes where the storage layer can
//! apply zone-map pruning before reading blocks.

use crate::expr::{BinOp, Expr};
use crate::plan::{JoinKind, LogicalPlan};

/// Split an expression into its AND-ed conjuncts.
pub fn split_conjunction(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            l,
            r,
        } => {
            split_conjunction(l, out);
            split_conjunction(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// AND a list of conjuncts back together (None for empty).
pub fn conjoin(mut parts: Vec<Expr>) -> Option<Expr> {
    let mut acc = parts.pop()?;
    while let Some(p) = parts.pop() {
        acc = Expr::and(p, acc);
    }
    Some(acc)
}

/// Push filters down as far as possible.
pub fn push_down_filters(plan: LogicalPlan) -> LogicalPlan {
    // First push within children.
    let children: Vec<LogicalPlan> = plan
        .children()
        .into_iter()
        .map(|c| push_down_filters(c.clone()))
        .collect();
    let node = plan.with_children(children);

    let LogicalPlan::Filter { input, predicate } = node else {
        return node;
    };
    let mut conjuncts = Vec::new();
    split_conjunction(&predicate, &mut conjuncts);
    push_conjuncts(*input, conjuncts)
}

/// Push a set of conjuncts onto `input`, wrapping leftovers in a Filter.
fn push_conjuncts(input: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    match input {
        LogicalPlan::Scan {
            table,
            table_id,
            schema,
            projection,
            filter,
        } => {
            // All conjuncts land in the scan filter.
            let mut all = Vec::new();
            if let Some(f) = filter {
                split_conjunction(&f, &mut all);
            }
            all.extend(conjuncts);
            LogicalPlan::Scan {
                table,
                table_id,
                schema,
                projection,
                filter: conjoin(all),
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            // Merge into one filter and continue downward.
            let mut all = Vec::new();
            split_conjunction(&predicate, &mut all);
            all.extend(conjuncts);
            push_conjuncts(*input, all)
        }
        LogicalPlan::Project { input, exprs } => {
            // A conjunct can cross the projection iff every column it uses
            // projects a pure column reference.
            let mut pushable = Vec::new();
            let mut stuck = Vec::new();
            'next: for c in conjuncts {
                let mut cols = Vec::new();
                c.columns(&mut cols);
                for &i in &cols {
                    if !matches!(exprs.get(i).map(|(e, _)| e), Some(Expr::Col(_))) {
                        stuck.push(c);
                        continue 'next;
                    }
                }
                let remapped = c.remap_columns(&|i| match &exprs[i].0 {
                    Expr::Col(j) => *j,
                    _ => unreachable!(),
                });
                pushable.push(remapped);
            }
            let new_input = if pushable.is_empty() {
                *input
            } else {
                push_conjuncts(*input, pushable)
            };
            let projected = LogicalPlan::Project {
                input: Box::new(new_input),
                exprs,
            };
            match conjoin(stuck) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(projected),
                    predicate: p,
                },
                None => projected,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let left_width = left.schema().map(|s| s.len()).unwrap_or(0);
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stuck = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                c.columns(&mut cols);
                let all_left = cols.iter().all(|&i| i < left_width);
                let all_right = cols.iter().all(|&i| i >= left_width);
                if all_left {
                    to_left.push(c);
                } else if all_right
                    && matches!(kind, JoinKind::Inner | JoinKind::Semi | JoinKind::Anti)
                {
                    // For LEFT joins a right-side filter is not equivalent
                    // (it would drop padded rows), keep it above.
                    to_right.push(c.remap_columns(&|i| i - left_width));
                } else {
                    stuck.push(c);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                push_conjuncts(*left, to_left)
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                push_conjuncts(*right, to_right)
            };
            let joined = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                residual,
            };
            match conjoin(stuck) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        // Blocking or order-sensitive operators: keep the filter above.
        other => match conjoin(conjuncts) {
            Some(p) => LogicalPlan::Filter {
                input: Box::new(other),
                predicate: p,
            },
            None => other,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{DataType, Field, Schema, TableId, Value};

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::scan(
            name,
            TableId::new(1),
            Schema::new(vec![
                Field::new("a", DataType::I64),
                Field::new("b", DataType::I64),
            ]),
        )
    }

    fn lt(col: usize, v: i64) -> Expr {
        Expr::binary(BinOp::Lt, Expr::col(col), Expr::lit(Value::I64(v)))
    }

    #[test]
    fn filter_fuses_into_scan() {
        let p = scan("t").filter(Expr::and(lt(0, 5), lt(1, 9)));
        let out = push_down_filters(p);
        match out {
            LogicalPlan::Scan {
                filter: Some(f), ..
            } => {
                let mut parts = Vec::new();
                split_conjunction(&f, &mut parts);
                assert_eq!(parts.len(), 2);
            }
            other => panic!("got:\n{}", other.explain()),
        }
    }

    #[test]
    fn filter_splits_across_join() {
        let p = scan("l")
            .join(scan("r"), JoinKind::Inner, vec![(0, 0)])
            // #0,#1 left; #2,#3 right; one conjunct per side + one cross
            .filter(Expr::and(
                Expr::and(lt(0, 5), lt(3, 9)),
                Expr::binary(BinOp::Lt, Expr::col(1), Expr::col(2)),
            ));
        let out = push_down_filters(p);
        // cross-side conjunct stays above the join
        match &out {
            LogicalPlan::Filter { input, predicate } => {
                let mut parts = Vec::new();
                split_conjunction(predicate, &mut parts);
                assert_eq!(parts.len(), 1);
                match &**input {
                    LogicalPlan::Join { left, right, .. } => {
                        assert!(matches!(
                            &**left,
                            LogicalPlan::Scan {
                                filter: Some(_),
                                ..
                            }
                        ));
                        match &**right {
                            LogicalPlan::Scan {
                                filter: Some(f), ..
                            } => {
                                // remapped from #3 to #1
                                assert_eq!(f, &lt(1, 9));
                            }
                            other => panic!("right: {:?}", other),
                        }
                    }
                    other => panic!("want join under filter, got {:?}", other.describe()),
                }
            }
            other => panic!("got:\n{}", other.explain()),
        }
    }

    #[test]
    fn left_join_right_filter_not_pushed() {
        let p = scan("l")
            .join(scan("r"), JoinKind::Left, vec![(0, 0)])
            .filter(lt(2, 5)); // right-side column
        let out = push_down_filters(p);
        assert!(matches!(out, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn filter_crosses_column_projection() {
        let p = scan("t")
            .project(vec![(Expr::col(1), "b"), (Expr::col(0), "a")])
            .filter(lt(0, 5)); // refers to projected #0 = underlying col 1
        let out = push_down_filters(p);
        match out {
            LogicalPlan::Project { input, .. } => match *input {
                LogicalPlan::Scan {
                    filter: Some(f), ..
                } => assert_eq!(f, lt(1, 5)),
                other => panic!("{:?}", other.describe()),
            },
            other => panic!("got:\n{}", other.explain()),
        }
    }

    #[test]
    fn filter_blocked_by_computed_projection() {
        let p = scan("t")
            .project(vec![(
                Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)),
                "s",
            )])
            .filter(lt(0, 5));
        let out = push_down_filters(p);
        assert!(matches!(out, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn stacked_filters_merge() {
        let p = scan("t").filter(lt(0, 5)).filter(lt(1, 9));
        let out = push_down_filters(p);
        match out {
            LogicalPlan::Scan {
                filter: Some(f), ..
            } => {
                let mut parts = Vec::new();
                split_conjunction(&f, &mut parts);
                assert_eq!(parts.len(), 2);
            }
            other => panic!("got:\n{}", other.explain()),
        }
    }

    #[test]
    fn conjoin_roundtrip() {
        let e = Expr::and(lt(0, 1), Expr::and(lt(1, 2), lt(0, 3)));
        let mut parts = Vec::new();
        split_conjunction(&e, &mut parts);
        assert_eq!(parts.len(), 3);
        let back = conjoin(parts).unwrap();
        let mut parts2 = Vec::new();
        split_conjunction(&back, &mut parts2);
        assert_eq!(parts2.len(), 3);
        assert!(conjoin(vec![]).is_none());
    }
}
