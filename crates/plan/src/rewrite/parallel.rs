//! The Volcano-style parallelization rule.
//!
//! §I-B: "The Vectorwise rewriter was used to implement a Volcano-style query
//! parallellizer". The rule introduces [`LogicalPlan::Exchange`] nodes: `P`
//! workers each execute a copy of the subtree below the Exchange, pulling
//! row-group *morsels* from a shared work-stealing queue (every `Scan` leaf
//! below one Exchange claims from the same queue, so skewed group sizes
//! self-balance and each group is read exactly once); the Exchange unions
//! their output streams.
//!
//! Aggregates are split into a *partial* phase (inside the Exchange, one hash
//! table per worker) and a *final* phase (above it, combining partial
//! states). AVG carries a hidden count column between the phases so means
//! combine exactly.
//!
//! Shapes handled:
//! * `Aggregate(pipeline)` → `Final(Exchange(Partial(pipeline)))`
//! * bare pipelines (Scan/Filter/Project/left-deep Join) → `Exchange(...)`
//! * `Sort`/`Limit` on top are preserved above the Exchange, as are
//!   `Project`/`Filter` whose input is not itself partitionable (the rule
//!   recurses into them to find a parallelizable subtree underneath).
//!
//! Joins parallelize over their *left* (probe) input; the right (build) side
//! compiles serial and executes ONCE per Exchange — the first worker to
//! reach the join runs the build, all others share the frozen hash table
//! (not the old broadcast strategy that re-ran the build P times).

use crate::expr::{AggFunc, Expr};
use crate::plan::{AggPhase, LogicalPlan};

/// True if the subtree can run partitioned (every path to a leaf allows
/// slicing scans: the probe side of joins, through filters/projects).
fn is_partitionable(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            is_partitionable(input)
        }
        LogicalPlan::Join { left, .. } => is_partitionable(left),
        _ => false,
    }
}

/// Introduce Exchange operators for `dop` workers. Identity when `dop <= 1`.
pub fn parallelize(plan: LogicalPlan, dop: usize) -> LogicalPlan {
    if dop <= 1 {
        return plan;
    }
    match plan {
        // Preserve order/limit/projection operators above the parallel part.
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(parallelize(*input, dop)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            offset,
            fetch,
        } => LogicalPlan::Limit {
            input: Box::new(parallelize(*input, dop)),
            offset,
            fetch,
        },
        LogicalPlan::Project { input, exprs } if !is_partitionable(&input) => {
            LogicalPlan::Project {
                input: Box::new(parallelize(*input, dop)),
                exprs,
            }
        }
        // A Filter over a non-partitionable subtree (e.g. a HAVING-style
        // filter above an aggregate) used to block parallelization of
        // everything underneath; recurse instead, keeping the filter above
        // whatever Exchange the subtree produces.
        LogicalPlan::Filter { input, predicate } if !is_partitionable(&input) => {
            LogicalPlan::Filter {
                input: Box::new(parallelize(*input, dop)),
                predicate,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            phase: AggPhase::Single,
        } if is_partitionable(&input) => {
            let k = group_by.len();
            let partial = LogicalPlan::Aggregate {
                input,
                group_by,
                aggs: aggs.clone(),
                phase: AggPhase::Partial,
            };
            let exchange = LogicalPlan::Exchange {
                input: Box::new(partial),
                partitions: dop,
            };
            // Final phase: group by the partial group columns (positions
            // 0..k), aggregate over the partial agg columns (k..k+m).
            let final_aggs = aggs
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let mut fa = a.clone();
                    fa.arg = Some(Expr::col(k + i));
                    // COUNT over partials must SUM the partial counts; the
                    // phase marker tells executors, but the function is kept
                    // so output names/types stay stable.
                    fa
                })
                .collect();
            LogicalPlan::Aggregate {
                input: Box::new(exchange),
                group_by: (0..k).collect(),
                aggs: final_aggs,
                phase: AggPhase::Final,
            }
        }
        p if is_partitionable(&p) => LogicalPlan::Exchange {
            input: Box::new(p),
            partitions: dop,
        },
        // Anything else: try children? Joins with non-partitionable probe,
        // nested aggregates, existing Exchanges — leave serial.
        other => other,
    }
}

/// For executors: positions of the hidden AVG count columns in a Partial
/// aggregate's output, given the agg list. Returns `(avg_index_in_aggs,
/// column_position)` pairs.
pub fn partial_avg_count_columns(
    n_group: usize,
    aggs: &[crate::expr::AggExpr],
) -> Vec<(usize, usize)> {
    let base = n_group + aggs.len();
    aggs.iter()
        .enumerate()
        .filter(|(_, a)| a.func == AggFunc::Avg)
        .enumerate()
        .map(|(nth_avg, (i, _))| (i, base + nth_avg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, BinOp};
    use vw_common::{DataType, Field, Schema, TableId, Value};

    fn scan() -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            TableId::new(1),
            Schema::new(vec![
                Field::new("a", DataType::I64),
                Field::new("b", DataType::F64),
            ]),
        )
    }

    fn sum_a() -> AggExpr {
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col(0)),
            name: "s".into(),
        }
    }

    fn avg_b() -> AggExpr {
        AggExpr {
            func: AggFunc::Avg,
            arg: Some(Expr::col(1)),
            name: "m".into(),
        }
    }

    #[test]
    fn dop_one_is_identity() {
        let p = scan().aggregate(vec![], vec![sum_a()]);
        assert_eq!(parallelize(p.clone(), 1), p);
    }

    #[test]
    fn aggregate_splits_into_partial_final() {
        let p = scan()
            .filter(Expr::binary(
                BinOp::Lt,
                Expr::col(0),
                Expr::lit(Value::I64(5)),
            ))
            .aggregate(vec![0], vec![sum_a(), avg_b()]);
        let out = parallelize(p, 4);
        match &out {
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                phase: AggPhase::Final,
            } => {
                assert_eq!(group_by, &vec![0]);
                assert_eq!(aggs[0].arg, Some(Expr::col(1)));
                assert_eq!(aggs[1].arg, Some(Expr::col(2)));
                match &**input {
                    LogicalPlan::Exchange { input, partitions } => {
                        assert_eq!(*partitions, 4);
                        assert!(matches!(
                            &**input,
                            LogicalPlan::Aggregate {
                                phase: AggPhase::Partial,
                                ..
                            }
                        ));
                    }
                    other => panic!("{}", other.explain()),
                }
            }
            other => panic!("{}", other.explain()),
        }
        // Final schema equals the serial schema.
        let serial = scan()
            .filter(Expr::binary(
                BinOp::Lt,
                Expr::col(0),
                Expr::lit(Value::I64(5)),
            ))
            .aggregate(vec![0], vec![sum_a(), avg_b()]);
        assert_eq!(out.schema().unwrap(), serial.schema().unwrap());
    }

    #[test]
    fn bare_pipeline_gets_exchange() {
        let p = scan().filter(Expr::binary(
            BinOp::Lt,
            Expr::col(0),
            Expr::lit(Value::I64(5)),
        ));
        let out = parallelize(p, 2);
        assert!(matches!(out, LogicalPlan::Exchange { partitions: 2, .. }));
    }

    #[test]
    fn sort_and_limit_stay_on_top() {
        let p = scan()
            .aggregate(vec![0], vec![sum_a()])
            .sort(vec![crate::plan::SortKey::desc(1)])
            .limit(0, 10);
        let out = parallelize(p, 2);
        match out {
            LogicalPlan::Limit { input, .. } => match *input {
                LogicalPlan::Sort { input, .. } => {
                    assert!(matches!(
                        *input,
                        LogicalPlan::Aggregate {
                            phase: AggPhase::Final,
                            ..
                        }
                    ));
                }
                other => panic!("{}", other.explain()),
            },
            other => panic!("{}", other.explain()),
        }
    }

    #[test]
    fn join_probe_side_partitionable() {
        let p = scan()
            .join(scan(), crate::plan::JoinKind::Inner, vec![(0, 0)])
            .aggregate(vec![], vec![sum_a()]);
        let out = parallelize(p, 2);
        assert!(matches!(
            out,
            LogicalPlan::Aggregate {
                phase: AggPhase::Final,
                ..
            }
        ));
    }

    #[test]
    fn filter_over_aggregate_parallelizes_underneath() {
        // HAVING-style shape: Filter(Aggregate(...)). The filter itself is
        // not partitionable, but the aggregate below it is — the rule must
        // recurse and split it, keeping the filter above the Final phase.
        let p = scan()
            .aggregate(vec![0], vec![sum_a()])
            .filter(Expr::binary(
                BinOp::Gt,
                Expr::col(1),
                Expr::lit(Value::F64(1.0)),
            ));
        let out = parallelize(p, 4);
        match out {
            LogicalPlan::Filter { input, .. } => match *input {
                LogicalPlan::Aggregate {
                    phase: AggPhase::Final,
                    input,
                    ..
                } => {
                    assert!(matches!(
                        *input,
                        LogicalPlan::Exchange { partitions: 4, .. }
                    ));
                }
                other => panic!("{}", other.explain()),
            },
            other => panic!("{}", other.explain()),
        }
    }

    #[test]
    fn non_partitionable_stays_serial() {
        // aggregate over aggregate: inner one blocks partitioning of outer
        let inner = scan().aggregate(vec![0], vec![sum_a()]);
        let p = inner.aggregate(
            vec![],
            vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            }],
        );
        let out = parallelize(p.clone(), 4);
        assert_eq!(out, p);
    }

    #[test]
    fn hidden_avg_count_positions() {
        let aggs = vec![sum_a(), avg_b(), sum_a(), avg_b()];
        let cols = partial_avg_count_columns(2, &aggs);
        // groups 0..2, aggs 2..6, hidden counts 6..8
        assert_eq!(cols, vec![(1, 6), (3, 7)]);
    }
}
