//! The rule-based rewriter.
//!
//! The product implemented a column-oriented rewriter inside X100 (using the
//! Tom pattern-matching tool) for "a variety of functionalities, which
//! include among others null handling and multi-core parallelization" (§I-B).
//! Here the rules are plain Rust functions over [`LogicalPlan`]:
//!
//! * [`fold_constants`] — evaluate constant sub-expressions at plan time,
//! * [`push_down_filters`] — split conjunctions, push predicates through
//!   Project and into Scan nodes (where zone maps can use them),
//! * [`parallelize`] — the Volcano-style multi-core rule: wrap eligible
//!   pipelines in Exchange and split aggregates into partial/final pairs.
//!
//! NULL handling note: the *plan*-level part of the paper's NULL rewrite is
//! that no operator here is NULL-aware — NULL behaviour lives entirely in the
//! kernel layer of `vw-core`, which represents every nullable column as a
//! value vector plus an indicator vector and combines indicators with plain
//! boolean kernels (the two-column representation of §I-B). The
//! `EngineConfig::rewrite_nulls` switch selects between that representation
//! and a deliberately naive branch-per-value interpreter for experiment E8.

pub mod ordering;
pub mod parallel;
pub mod prune;
pub mod pushdown;

pub use ordering::{apply_interesting_orders, delivered_order, DeliveredOrders};
pub use parallel::parallelize;
pub use prune::prune_columns;
pub use pushdown::push_down_filters;

use crate::expr::Expr;
use crate::plan::LogicalPlan;

/// Run the default rewrite pipeline: constant folding, predicate pushdown,
/// column pruning, then (optionally) parallelization.
pub fn rewrite_default(plan: LogicalPlan, parallelism: usize) -> LogicalPlan {
    let plan = map_exprs(plan, &fold_expr);
    let plan = push_down_filters(plan);
    let plan = prune_columns(plan);
    if parallelism > 1 {
        parallelize(plan, parallelism)
    } else {
        plan
    }
}

/// Fold constant sub-expressions of every expression in the plan.
pub fn fold_constants(plan: LogicalPlan) -> LogicalPlan {
    map_exprs(plan, &fold_expr)
}

/// Apply `f` to every expression in the plan, bottom-up over plan nodes.
pub fn map_exprs(plan: LogicalPlan, f: &dyn Fn(Expr) -> Expr) -> LogicalPlan {
    let children: Vec<LogicalPlan> = plan
        .children()
        .into_iter()
        .map(|c| map_exprs(c.clone(), f))
        .collect();
    let node = plan.with_children(children);
    match node {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: f(predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(|(e, n)| (f(e), n)).collect(),
        },
        LogicalPlan::Scan {
            table,
            table_id,
            schema,
            projection,
            filter,
        } => LogicalPlan::Scan {
            table,
            table_id,
            schema,
            projection,
            filter: filter.map(f),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual: residual.map(f),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => LogicalPlan::Aggregate {
            input,
            group_by,
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(f);
                    a
                })
                .collect(),
            phase,
        },
        other => other,
    }
}

/// Bottom-up constant folding of one expression tree. Sub-expressions that
/// reference no columns and evaluate without error are replaced by literals.
pub fn fold_expr(e: Expr) -> Expr {
    // Fold children first.
    let e = match e {
        Expr::Cast(inner, t) => Expr::Cast(Box::new(fold_expr(*inner)), t),
        Expr::Unary { op, e } => Expr::Unary {
            op,
            e: Box::new(fold_expr(*e)),
        },
        Expr::Binary { op, l, r } => Expr::Binary {
            op,
            l: Box::new(fold_expr(*l)),
            r: Box::new(fold_expr(*r)),
        },
        Expr::Case { whens, otherwise } => Expr::Case {
            whens: whens
                .into_iter()
                .map(|(c, t)| (fold_expr(c), fold_expr(t)))
                .collect(),
            otherwise: otherwise.map(|e| Box::new(fold_expr(*e))),
        },
        Expr::Like {
            e,
            pattern,
            negated,
        } => Expr::Like {
            e: Box::new(fold_expr(*e)),
            pattern,
            negated,
        },
        Expr::InList { e, list, negated } => Expr::InList {
            e: Box::new(fold_expr(*e)),
            list,
            negated,
        },
        Expr::Substr { e, start, len } => Expr::Substr {
            e: Box::new(fold_expr(*e)),
            start,
            len,
        },
        Expr::Extract { part, e } => Expr::Extract {
            part,
            e: Box::new(fold_expr(*e)),
        },
        Expr::AddMonths { e, months } => Expr::AddMonths {
            e: Box::new(fold_expr(*e)),
            months,
        },
        leaf => leaf,
    };
    if matches!(e, Expr::Lit(_) | Expr::Col(_)) {
        return e;
    }
    if e.is_constant() {
        if let Ok(v) = e.eval_row(&[]) {
            return Expr::Lit(v);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use vw_common::{DataType, Field, Schema, TableId, Value};

    fn scan() -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            TableId::new(1),
            Schema::new(vec![
                Field::new("a", DataType::I64),
                Field::new("b", DataType::I64),
            ]),
        )
    }

    #[test]
    fn folds_constant_arithmetic() {
        // a < (2 + 3) * 10  →  a < 50
        let e = Expr::binary(
            BinOp::Lt,
            Expr::col(0),
            Expr::binary(
                BinOp::Mul,
                Expr::binary(
                    BinOp::Add,
                    Expr::lit(Value::I64(2)),
                    Expr::lit(Value::I64(3)),
                ),
                Expr::lit(Value::I64(10)),
            ),
        );
        let folded = fold_expr(e);
        assert_eq!(
            folded,
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(50)))
        );
    }

    #[test]
    fn folding_preserves_errors_unfolded() {
        // 1/0 must NOT fold into a panic or a wrong literal; it stays as-is
        // and fails at execution (matching SQL runtime error semantics).
        let e = Expr::binary(
            BinOp::Div,
            Expr::lit(Value::I64(1)),
            Expr::lit(Value::I64(0)),
        );
        let folded = fold_expr(e.clone());
        assert_eq!(folded, e);
    }

    #[test]
    fn folds_date_intervals() {
        let d = vw_common::date::parse_date("1995-01-01").unwrap();
        let e = Expr::AddMonths {
            e: Box::new(Expr::lit(Value::Date(d))),
            months: 3,
        };
        assert_eq!(
            fold_expr(e),
            Expr::lit(Value::Date(
                vw_common::date::parse_date("1995-04-01").unwrap()
            ))
        );
    }

    #[test]
    fn fold_walks_the_plan() {
        let p = scan().filter(Expr::binary(
            BinOp::Lt,
            Expr::col(0),
            Expr::binary(
                BinOp::Add,
                Expr::lit(Value::I64(1)),
                Expr::lit(Value::I64(2)),
            ),
        ));
        let folded = fold_constants(p);
        match folded {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(
                    predicate,
                    Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(3)))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rewrite_default_composes() {
        let p = scan().filter(Expr::binary(
            BinOp::Gt,
            Expr::col(1),
            Expr::binary(
                BinOp::Add,
                Expr::lit(Value::I64(0)),
                Expr::lit(Value::I64(7)),
            ),
        ));
        let out = rewrite_default(p, 1);
        // filter pushed into scan, constant folded
        match out {
            LogicalPlan::Scan {
                filter: Some(f), ..
            } => {
                assert_eq!(
                    f,
                    Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(Value::I64(7)))
                );
            }
            other => panic!("expected fused scan, got:\n{}", other.explain()),
        }
    }
}
