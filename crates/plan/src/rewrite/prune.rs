//! Column (projection) pruning.
//!
//! The defining advantage of columnar storage is reading only the columns a
//! query touches. This pass computes, top-down, which columns each node's
//! consumers need and pushes the union into every `Scan`'s projection,
//! remapping all column references along the way.
//!
//! Contract of [`prune_rec`]: the returned plan produces a (possibly proper)
//! **superset** of the requested columns, in ascending original order; the
//! returned map translates the node's original output indexes to the new
//! ones for every surviving column. At the root everything is required, so
//! the output schema is unchanged.

use crate::expr::Expr;
use crate::plan::LogicalPlan;
use std::collections::HashMap;

/// Prune unused columns from every scan under `plan`. Output schema is
/// preserved exactly.
pub fn prune_columns(plan: LogicalPlan) -> LogicalPlan {
    let n = match plan.schema() {
        Ok(s) => s.len(),
        Err(_) => return plan, // malformed plans surface errors elsewhere
    };
    let (out, _) = prune_rec(plan, (0..n).collect());
    out
}

type ColMap = HashMap<usize, usize>;

fn identity_map(n: usize) -> ColMap {
    (0..n).map(|i| (i, i)).collect()
}

fn expr_cols(e: &Expr, out: &mut Vec<usize>) {
    e.columns(out);
}

fn remap(e: &Expr, map: &ColMap) -> Expr {
    e.remap_columns(&|i| *map.get(&i).expect("pruned a required column"))
}

fn sorted_dedup(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v.dedup();
    v
}

fn prune_rec(plan: LogicalPlan, required: Vec<usize>) -> (LogicalPlan, ColMap) {
    match plan {
        LogicalPlan::Scan {
            table,
            table_id,
            schema,
            projection,
            filter,
        } => {
            let mut need = required;
            if let Some(f) = &filter {
                expr_cols(f, &mut need);
            }
            let need = sorted_dedup(need);
            let old_projection: Vec<usize> = match &projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            // `need` is in scan-output coordinates; translate to storage.
            let new_projection: Vec<usize> = need.iter().map(|&i| old_projection[i]).collect();
            let map: ColMap = need
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            let filter = filter.map(|f| remap(&f, &map));
            (
                LogicalPlan::Scan {
                    table,
                    table_id,
                    schema,
                    projection: Some(new_projection),
                    filter,
                },
                map,
            )
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need = required;
            expr_cols(&predicate, &mut need);
            let (child, map) = prune_rec(*input, sorted_dedup(need));
            (
                LogicalPlan::Filter {
                    input: Box::new(child),
                    predicate: remap(&predicate, &map),
                },
                map,
            )
        }
        LogicalPlan::Project { input, exprs } => {
            let keep = sorted_dedup(required);
            let mut child_need = Vec::new();
            for &i in &keep {
                expr_cols(&exprs[i].0, &mut child_need);
            }
            let (child, child_map) = prune_rec(*input, sorted_dedup(child_need));
            let new_exprs: Vec<(Expr, String)> = keep
                .iter()
                .map(|&i| (remap(&exprs[i].0, &child_map), exprs[i].1.clone()))
                .collect();
            let map: ColMap = keep
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Project {
                    input: Box::new(child),
                    exprs: new_exprs,
                },
                map,
            )
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let lw = left.schema().map(|s| s.len()).unwrap_or(0);
            let semi_like = matches!(
                kind,
                crate::plan::JoinKind::Semi | crate::plan::JoinKind::Anti
            );
            // Columns needed from each side: parent's requirements plus the
            // join keys and residual references.
            let mut l_need = Vec::new();
            let mut r_need = Vec::new();
            for &i in &required {
                if i < lw {
                    l_need.push(i);
                } else {
                    debug_assert!(!semi_like, "semi/anti output is left-only");
                    r_need.push(i - lw);
                }
            }
            for &(lk, rk) in &on {
                l_need.push(lk);
                r_need.push(rk);
            }
            if let Some(res) = &residual {
                let mut cols = Vec::new();
                expr_cols(res, &mut cols);
                for c in cols {
                    if c < lw {
                        l_need.push(c);
                    } else {
                        r_need.push(c - lw);
                    }
                }
            }
            let (new_left, l_map) = prune_rec(*left, sorted_dedup(l_need));
            let (new_right, r_map) = prune_rec(*right, sorted_dedup(r_need));
            let new_lw = new_left.schema().map(|s| s.len()).unwrap_or(0);
            let on: Vec<(usize, usize)> = on.iter().map(|&(l, r)| (l_map[&l], r_map[&r])).collect();
            // Combined map for parents and the residual.
            let mut map: ColMap = ColMap::new();
            for (&old, &new) in &l_map {
                map.insert(old, new);
            }
            if !semi_like {
                for (&old, &new) in &r_map {
                    map.insert(lw + old, new_lw + new);
                }
            }
            let residual = residual.map(|res| {
                // The residual sees left ++ right even for semi/anti joins.
                let mut res_map = l_map.clone();
                for (&old, &new) in &r_map {
                    res_map.insert(lw + old, new_lw + new);
                }
                remap(&res, &res_map)
            });
            (
                LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    on,
                    residual,
                },
                map,
            )
        }
        LogicalPlan::MergeJoin { left, right, on } => {
            // Same bookkeeping as an inner Join without a residual.
            let lw = left.schema().map(|s| s.len()).unwrap_or(0);
            let mut l_need = Vec::new();
            let mut r_need = Vec::new();
            for &i in &required {
                if i < lw {
                    l_need.push(i);
                } else {
                    r_need.push(i - lw);
                }
            }
            for &(lk, rk) in &on {
                l_need.push(lk);
                r_need.push(rk);
            }
            let (new_left, l_map) = prune_rec(*left, sorted_dedup(l_need));
            let (new_right, r_map) = prune_rec(*right, sorted_dedup(r_need));
            let new_lw = new_left.schema().map(|s| s.len()).unwrap_or(0);
            let on: Vec<(usize, usize)> = on.iter().map(|&(l, r)| (l_map[&l], r_map[&r])).collect();
            let mut map: ColMap = ColMap::new();
            for (&old, &new) in &l_map {
                map.insert(old, new);
            }
            for (&old, &new) in &r_map {
                map.insert(lw + old, new_lw + new);
            }
            (
                LogicalPlan::MergeJoin {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    on,
                },
                map,
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => {
            // Aggregates keep their full output (group keys + every agg):
            // agg results are cheap and positions encode meaning for the
            // Partial/Final protocol.
            let mut child_need: Vec<usize> = group_by.clone();
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    expr_cols(arg, &mut child_need);
                }
            }
            let (child, child_map) = prune_rec(*input, sorted_dedup(child_need));
            let group_by: Vec<usize> = group_by.iter().map(|g| child_map[g]).collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|arg| remap(&arg, &child_map));
                    a
                })
                .collect::<Vec<_>>();
            let out_n = group_by.len()
                + aggs.len()
                + if phase == crate::plan::AggPhase::Partial {
                    aggs.iter()
                        .filter(|a| a.func == crate::expr::AggFunc::Avg)
                        .count()
                } else {
                    0
                };
            (
                LogicalPlan::Aggregate {
                    input: Box::new(child),
                    group_by,
                    aggs,
                    phase,
                },
                identity_map(out_n),
            )
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = required;
            need.extend(keys.iter().map(|k| k.col));
            let (child, map) = prune_rec(*input, sorted_dedup(need));
            let keys = keys
                .iter()
                .map(|k| crate::plan::SortKey {
                    col: map[&k.col],
                    ..*k
                })
                .collect();
            (
                LogicalPlan::Sort {
                    input: Box::new(child),
                    keys,
                },
                map,
            )
        }
        LogicalPlan::Limit {
            input,
            offset,
            fetch,
        } => {
            let (child, map) = prune_rec(*input, required);
            (
                LogicalPlan::Limit {
                    input: Box::new(child),
                    offset,
                    fetch,
                },
                map,
            )
        }
        LogicalPlan::Exchange { input, partitions } => {
            let (child, map) = prune_rec(*input, required);
            (
                LogicalPlan::Exchange {
                    input: Box::new(child),
                    partitions,
                },
                map,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, AggFunc, BinOp};
    use vw_common::{DataType, Field, Schema, TableId, Value};

    fn wide_scan() -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            TableId::new(1),
            Schema::new(
                (0..10)
                    .map(|i| Field::new(format!("c{}", i), DataType::I64))
                    .collect::<Vec<_>>(),
            ),
        )
    }

    fn scan_projection(plan: &LogicalPlan) -> Vec<usize> {
        match plan {
            LogicalPlan::Scan { projection, .. } => projection.clone().unwrap(),
            other => other
                .children()
                .first()
                .map(|c| scan_projection(c))
                .unwrap_or_default(),
        }
    }

    #[test]
    fn prunes_to_used_columns() {
        let p = wide_scan()
            .filter(Expr::binary(
                BinOp::Gt,
                Expr::col(7),
                Expr::lit(Value::I64(0)),
            ))
            .project(vec![(Expr::col(2), "a"), (Expr::col(5), "b")]);
        let before = p.schema().unwrap();
        let pruned = prune_columns(p);
        assert_eq!(pruned.schema().unwrap(), before);
        assert_eq!(scan_projection(&pruned), vec![2, 5, 7]);
    }

    #[test]
    fn aggregate_needs_only_args_and_keys() {
        let p = wide_scan().aggregate(
            vec![1],
            vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::binary(BinOp::Mul, Expr::col(4), Expr::col(9))),
                name: "s".into(),
            }],
        );
        let before = p.schema().unwrap();
        let pruned = prune_columns(p);
        assert_eq!(pruned.schema().unwrap(), before);
        assert_eq!(scan_projection(&pruned), vec![1, 4, 9]);
    }

    #[test]
    fn join_prunes_both_sides() {
        let p = wide_scan()
            .join(wide_scan(), crate::plan::JoinKind::Inner, vec![(3, 6)])
            .project(vec![(Expr::col(0), "l0"), (Expr::col(12), "r2")]);
        let before = p.schema().unwrap();
        let pruned = prune_columns(p);
        assert_eq!(pruned.schema().unwrap(), before);
        match &pruned {
            LogicalPlan::Project { input, exprs } => match &**input {
                LogicalPlan::Join {
                    left, right, on, ..
                } => {
                    assert_eq!(scan_projection(left), vec![0, 3]);
                    assert_eq!(scan_projection(right), vec![2, 6]);
                    assert_eq!(on, &vec![(1, 1)]);
                    // l0 -> new col 0; r2 -> left_width(2) + 0 = 2
                    assert_eq!(exprs[0].0, Expr::col(0));
                    assert_eq!(exprs[1].0, Expr::col(2));
                }
                other => panic!("{}", other.explain()),
            },
            other => panic!("{}", other.explain()),
        }
    }

    #[test]
    fn semi_join_keeps_right_keys_only() {
        let p = wide_scan()
            .join(wide_scan(), crate::plan::JoinKind::Semi, vec![(2, 8)])
            .project(vec![(Expr::col(1), "x")]);
        let pruned = prune_columns(p);
        match &pruned {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Join { left, right, .. } => {
                    assert_eq!(scan_projection(left), vec![1, 2]);
                    assert_eq!(scan_projection(right), vec![8]);
                }
                other => panic!("{}", other.explain()),
            },
            other => panic!("{}", other.explain()),
        }
    }

    #[test]
    fn sort_keys_are_preserved() {
        let p = wide_scan()
            .project(vec![
                (Expr::col(0), "a"),
                (Expr::col(1), "b"),
                (Expr::col(2), "c"),
            ])
            .sort(vec![crate::plan::SortKey::asc(2)])
            .limit(0, 3);
        let before = p.schema().unwrap();
        let pruned = prune_columns(p);
        assert_eq!(pruned.schema().unwrap(), before);
        assert_eq!(scan_projection(&pruned), vec![0, 1, 2]);
    }

    #[test]
    fn residual_references_survive() {
        let join = LogicalPlan::Join {
            left: Box::new(wide_scan()),
            right: Box::new(wide_scan()),
            kind: crate::plan::JoinKind::Inner,
            on: vec![(0, 0)],
            residual: Some(Expr::binary(
                BinOp::Lt,
                Expr::col(4),
                Expr::col(15), // right col 5
            )),
        };
        let p = LogicalPlan::Project {
            input: Box::new(join),
            exprs: vec![(Expr::col(1), "x".into())],
        };
        let before = p.schema().unwrap();
        let pruned = prune_columns(p);
        assert_eq!(pruned.schema().unwrap(), before);
        match &pruned {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Join {
                    left,
                    right,
                    residual,
                    ..
                } => {
                    assert_eq!(scan_projection(left), vec![0, 1, 4]);
                    assert_eq!(scan_projection(right), vec![0, 5]);
                    // left width now 3; right col 5 -> 3 + 1
                    assert_eq!(
                        residual.as_ref().unwrap(),
                        &Expr::binary(BinOp::Lt, Expr::col(2), Expr::col(4))
                    );
                }
                other => panic!("{}", other.explain()),
            },
            other => panic!("{}", other.explain()),
        }
    }

    #[test]
    fn already_projected_scan_composes() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            table_id: TableId::new(1),
            schema: Schema::new(
                (0..10)
                    .map(|i| Field::new(format!("c{}", i), DataType::I64))
                    .collect::<Vec<_>>(),
            ),
            projection: Some(vec![9, 5, 1]),
            filter: None,
        };
        let p = LogicalPlan::Project {
            input: Box::new(scan),
            exprs: vec![(Expr::col(1), "x".into())], // scan-output col 1 = storage 5
        };
        let pruned = prune_columns(p);
        assert_eq!(scan_projection(&pruned), vec![5]);
        let s = pruned.schema().unwrap();
        assert_eq!(s.field(0).name, "x");
    }
}
