//! Scalar expressions and their reference evaluation semantics.
//!
//! Expressions are already *bound*: column references are positional indexes
//! into the input schema (the binder in `vw-sql` resolves names). The
//! row-at-a-time [`Expr::eval_row`] here is the semantic ground truth — it is
//! what the tuple-at-a-time baseline engine executes directly, and what the
//! vectorized kernels in `vw-core` are tested against.
//!
//! NULL semantics are SQL three-valued logic: comparisons and arithmetic
//! propagate NULL; `AND`/`OR` use Kleene logic; predicates accept a row only
//! when they evaluate to *true* (not NULL).

use std::fmt;
use vw_common::date::{add_months, month_of, year_of};
use vw_common::{DataType, Result, Schema, Value, VwError};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
}

/// Date fields for EXTRACT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatePart {
    Year,
    Month,
}

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    Lit(Value),
    Cast(Box<Expr>, DataType),
    Binary {
        op: BinOp,
        l: Box<Expr>,
        r: Box<Expr>,
    },
    Unary {
        op: UnOp,
        e: Box<Expr>,
    },
    /// SQL CASE WHEN ... THEN ... [ELSE ...] END.
    Case {
        whens: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
    },
    /// SQL LIKE with `%` and `_` wildcards.
    Like {
        e: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// `e IN (v1, v2, ...)` over literal lists.
    InList {
        e: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// SUBSTRING(e FROM start FOR len), 1-based start as in SQL.
    Substr {
        e: Box<Expr>,
        start: u32,
        len: u32,
    },
    /// EXTRACT(part FROM date-expr), yielding I32.
    Extract {
        part: DatePart,
        e: Box<Expr>,
    },
    /// date-expr + INTERVAL n MONTH (normalized by the binder).
    AddMonths {
        e: Box<Expr>,
        months: i32,
    },
    /// `e BETWEEN lo AND hi` is desugared by the binder; kept here only as
    /// documentation that no node exists for it.
    Placeholder,
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    pub fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::binary(BinOp::And, l, r)
    }

    pub fn or(l: Expr, r: Expr) -> Expr {
        Expr::binary(BinOp::Or, l, r)
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::binary(BinOp::Eq, l, r)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            e: Box::new(e),
        }
    }

    /// All column indexes referenced by this expression.
    pub fn columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) | Expr::Placeholder => {}
            Expr::Cast(e, _)
            | Expr::Unary { e, .. }
            | Expr::Like { e, .. }
            | Expr::InList { e, .. }
            | Expr::Substr { e, .. }
            | Expr::Extract { e, .. }
            | Expr::AddMonths { e, .. } => e.columns(out),
            Expr::Binary { l, r, .. } => {
                l.columns(out);
                r.columns(out);
            }
            Expr::Case { whens, otherwise } => {
                for (c, t) in whens {
                    c.columns(out);
                    t.columns(out);
                }
                if let Some(e) = otherwise {
                    e.columns(out);
                }
            }
        }
    }

    /// Rewrite column indexes through `map` (used when pushing expressions
    /// past projections). `map[i] = new index of old column i`.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Placeholder => Expr::Placeholder,
            Expr::Cast(e, t) => Expr::Cast(Box::new(e.remap_columns(map)), *t),
            Expr::Unary { op, e } => Expr::Unary {
                op: *op,
                e: Box::new(e.remap_columns(map)),
            },
            Expr::Binary { op, l, r } => Expr::Binary {
                op: *op,
                l: Box::new(l.remap_columns(map)),
                r: Box::new(r.remap_columns(map)),
            },
            Expr::Case { whens, otherwise } => Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, t)| (c.remap_columns(map), t.remap_columns(map)))
                    .collect(),
                otherwise: otherwise.as_ref().map(|e| Box::new(e.remap_columns(map))),
            },
            Expr::Like {
                e,
                pattern,
                negated,
            } => Expr::Like {
                e: Box::new(e.remap_columns(map)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList { e, list, negated } => Expr::InList {
                e: Box::new(e.remap_columns(map)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Substr { e, start, len } => Expr::Substr {
                e: Box::new(e.remap_columns(map)),
                start: *start,
                len: *len,
            },
            Expr::Extract { part, e } => Expr::Extract {
                part: *part,
                e: Box::new(e.remap_columns(map)),
            },
            Expr::AddMonths { e, months } => Expr::AddMonths {
                e: Box::new(e.remap_columns(map)),
                months: *months,
            },
        }
    }

    /// Static output type given the input schema.
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        match self {
            Expr::Col(i) => {
                if *i >= input.len() {
                    return Err(VwError::Plan(format!("column #{} out of range", i)));
                }
                Ok(input.field(*i).ty)
            }
            Expr::Lit(v) => Ok(v.data_type().unwrap_or(DataType::I64)),
            Expr::Cast(_, t) => Ok(*t),
            Expr::Unary { op, e } => match op {
                UnOp::Not | UnOp::IsNull | UnOp::IsNotNull => Ok(DataType::Bool),
                UnOp::Neg => e.data_type(input),
            },
            Expr::Binary { op, l, r } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Ok(DataType::Bool)
                } else {
                    let lt = l.data_type(input)?;
                    let rt = r.data_type(input)?;
                    lt.common_numeric(rt).ok_or_else(|| {
                        VwError::Plan(format!("no numeric type for {} {} {}", lt, op.name(), rt))
                    })
                }
            }
            Expr::Case { whens, otherwise } => {
                let mut t: Option<DataType> = None;
                for (_, v) in whens {
                    let vt = v.data_type(input)?;
                    t = Some(match t {
                        None => vt,
                        Some(prev) if prev == vt => vt,
                        Some(prev) => prev.common_numeric(vt).ok_or_else(|| {
                            VwError::Plan("CASE branches have incompatible types".into())
                        })?,
                    });
                }
                if let Some(e) = otherwise {
                    let et = e.data_type(input)?;
                    t = Some(match t {
                        None => et,
                        Some(prev) if prev == et => et,
                        Some(prev) => prev.common_numeric(et).ok_or_else(|| {
                            VwError::Plan("CASE branches have incompatible types".into())
                        })?,
                    });
                }
                t.ok_or_else(|| VwError::Plan("empty CASE".into()))
            }
            Expr::Like { .. } | Expr::InList { .. } => Ok(DataType::Bool),
            Expr::Substr { .. } => Ok(DataType::Str),
            Expr::Extract { .. } => Ok(DataType::I32),
            Expr::AddMonths { .. } => Ok(DataType::Date),
            Expr::Placeholder => Err(VwError::Plan("placeholder expr".into())),
        }
    }

    /// Whether this expression can produce NULL over the input schema.
    pub fn nullable(&self, input: &Schema) -> bool {
        match self {
            Expr::Col(i) => input.field(*i).nullable,
            Expr::Lit(v) => v.is_null(),
            Expr::Cast(e, _) => e.nullable(input),
            Expr::Unary { op, e } => match op {
                UnOp::IsNull | UnOp::IsNotNull => false,
                _ => e.nullable(input),
            },
            Expr::Binary { l, r, .. } => l.nullable(input) || r.nullable(input),
            Expr::Case { whens, otherwise } => {
                whens.iter().any(|(_, v)| v.nullable(input))
                    || otherwise.as_ref().is_none_or(|e| e.nullable(input))
            }
            Expr::Like { e, .. }
            | Expr::InList { e, .. }
            | Expr::Substr { e, .. }
            | Expr::Extract { e, .. }
            | Expr::AddMonths { e, .. } => e.nullable(input),
            Expr::Placeholder => false,
        }
    }

    /// Reference (row-at-a-time) evaluation.
    pub fn eval_row(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| VwError::Exec(format!("row has no column #{}", i))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cast(e, t) => {
                let v = e.eval_row(row)?;
                v.cast_to(*t)
                    .ok_or_else(|| VwError::Exec(format!("cannot cast {} to {}", v, t)))
            }
            Expr::Unary { op, e } => {
                let v = e.eval_row(row)?;
                Ok(match op {
                    UnOp::IsNull => Value::Bool(v.is_null()),
                    UnOp::IsNotNull => Value::Bool(!v.is_null()),
                    UnOp::Not => match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(VwError::Exec(format!("NOT of non-boolean {}", other)))
                        }
                    },
                    UnOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::I32(x) => Value::I32(-x),
                        Value::I64(x) => Value::I64(-x),
                        Value::F64(x) => Value::F64(-x),
                        other => {
                            return Err(VwError::Exec(format!("negate of non-numeric {}", other)))
                        }
                    },
                })
            }
            Expr::Binary { op, l, r } => eval_binary(*op, l, r, row),
            Expr::Case { whens, otherwise } => {
                for (c, t) in whens {
                    if c.eval_row(row)? == Value::Bool(true) {
                        return t.eval_row(row);
                    }
                }
                match otherwise {
                    Some(e) => e.eval_row(row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Like {
                e,
                pattern,
                negated,
            } => {
                let v = e.eval_row(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let m = like_match(pattern.as_bytes(), s.as_bytes());
                        Ok(Value::Bool(m != *negated))
                    }
                    other => Err(VwError::Exec(format!("LIKE on non-string {}", other))),
                }
            }
            Expr::InList { e, list, negated } => {
                let v = e.eval_row(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(item) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Substr { e, start, len } => {
                let v = e.eval_row(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Str(substr(&s, *start, *len))),
                    other => Err(VwError::Exec(format!("SUBSTRING on {}", other))),
                }
            }
            Expr::Extract { part, e } => {
                let v = e.eval_row(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Date(d) => Ok(Value::I32(match part {
                        DatePart::Year => year_of(d),
                        DatePart::Month => month_of(d),
                    })),
                    other => Err(VwError::Exec(format!("EXTRACT from {}", other))),
                }
            }
            Expr::AddMonths { e, months } => {
                let v = e.eval_row(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Date(d) => Ok(Value::Date(add_months(d, *months))),
                    other => Err(VwError::Exec(format!("interval add on {}", other))),
                }
            }
            Expr::Placeholder => Err(VwError::Exec("placeholder expr".into())),
        }
    }

    /// True iff the expression references no columns.
    pub fn is_constant(&self) -> bool {
        let mut cols = Vec::new();
        self.columns(&mut cols);
        cols.is_empty()
    }
}

fn eval_binary(op: BinOp, l: &Expr, r: &Expr, row: &[Value]) -> Result<Value> {
    // Kleene AND/OR must not propagate NULL blindly.
    if matches!(op, BinOp::And | BinOp::Or) {
        let lv = l.eval_row(row)?;
        let rv = r.eval_row(row)?;
        let lb = match lv {
            Value::Null => None,
            Value::Bool(b) => Some(b),
            other => return Err(VwError::Exec(format!("boolean op on {}", other))),
        };
        let rb = match rv {
            Value::Null => None,
            Value::Bool(b) => Some(b),
            other => return Err(VwError::Exec(format!("boolean op on {}", other))),
        };
        return Ok(match (op, lb, rb) {
            (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Value::Bool(false),
            (BinOp::And, Some(true), Some(true)) => Value::Bool(true),
            (BinOp::And, _, _) => Value::Null,
            (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Value::Bool(true),
            (BinOp::Or, Some(false), Some(false)) => Value::Bool(false),
            (BinOp::Or, _, _) => Value::Null,
            _ => unreachable!(),
        });
    }
    let lv = l.eval_row(row)?;
    let rv = r.eval_row(row)?;
    if lv.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = lv
            .sql_cmp(&rv)
            .ok_or_else(|| VwError::Exec(format!("cannot compare {} and {}", lv, rv)))?;
        use std::cmp::Ordering::*;
        let b = match op {
            BinOp::Eq => ord == Equal,
            BinOp::Ne => ord != Equal,
            BinOp::Lt => ord == Less,
            BinOp::Le => ord != Greater,
            BinOp::Gt => ord == Greater,
            BinOp::Ge => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic: floats if either side is float, else integers.
    match (&lv, &rv) {
        (Value::F64(_), _) | (_, Value::F64(_)) => {
            let a = lv
                .as_f64()
                .ok_or_else(|| VwError::Exec(format!("arith on {}", lv)))?;
            let b = rv
                .as_f64()
                .ok_or_else(|| VwError::Exec(format!("arith on {}", rv)))?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(VwError::Exec("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::F64(out))
        }
        _ => {
            let a = lv
                .as_i64()
                .ok_or_else(|| VwError::Exec(format!("arith on {}", lv)))?;
            let b = rv
                .as_i64()
                .ok_or_else(|| VwError::Exec(format!("arith on {}", rv)))?;
            let out = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(VwError::Exec("division by zero".into()));
                    }
                    a.wrapping_div(b)
                }
                _ => unreachable!(),
            };
            // Stay in the narrower type when both inputs were I32.
            if matches!((&lv, &rv), (Value::I32(_), Value::I32(_))) && i32::try_from(out).is_ok() {
                Ok(Value::I32(out as i32))
            } else {
                Ok(Value::I64(out))
            }
        }
    }
}

/// SQL LIKE matcher: `%` = any run, `_` = any single byte. Works on bytes;
/// patterns in our workloads are ASCII.
pub fn like_match(pattern: &[u8], s: &[u8]) -> bool {
    // Iterative two-pointer with backtracking on the last `%`.
    let (mut p, mut i) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while i < s.len() {
        if p < pattern.len() && (pattern[p] == b'_' || pattern[p] == s[i]) {
            p += 1;
            i += 1;
        } else if p < pattern.len() && pattern[p] == b'%' {
            star = Some((p, i));
            p += 1;
        } else if let Some((sp, si)) = star {
            p = sp + 1;
            i = si + 1;
            star = Some((sp, si + 1));
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'%' {
        p += 1;
    }
    p == pattern.len()
}

/// SQL SUBSTRING on characters, 1-based.
pub fn substr(s: &str, start: u32, len: u32) -> String {
    let start = (start.max(1) - 1) as usize;
    s.chars().skip(start).take(len as usize).collect()
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate column of an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// Argument expression over the aggregate input (None for COUNT(*)).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    pub fn output_type(&self, input: &Schema) -> Result<DataType> {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Ok(DataType::I64),
            AggFunc::Avg => Ok(DataType::F64),
            AggFunc::Sum => {
                let t = self
                    .arg
                    .as_ref()
                    .ok_or_else(|| VwError::Plan("SUM needs an argument".into()))?
                    .data_type(input)?;
                match t {
                    DataType::I32 | DataType::I64 => Ok(DataType::I64),
                    DataType::F64 => Ok(DataType::F64),
                    other => Err(VwError::Plan(format!("SUM over {}", other))),
                }
            }
            AggFunc::Min | AggFunc::Max => self
                .arg
                .as_ref()
                .ok_or_else(|| VwError::Plan("MIN/MAX needs an argument".into()))?
                .data_type(input),
        }
    }
}

impl fmt::Display for Expr {
    // Display is only used for EXPLAIN output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{}", i),
            Expr::Lit(v) => write!(f, "{}", v),
            Expr::Cast(e, t) => write!(f, "CAST({} AS {})", e, t),
            Expr::Unary { op, e } => match op {
                UnOp::Not => write!(f, "NOT ({})", e),
                UnOp::Neg => write!(f, "-({})", e),
                UnOp::IsNull => write!(f, "({}) IS NULL", e),
                UnOp::IsNotNull => write!(f, "({}) IS NOT NULL", e),
            },
            Expr::Binary { op, l, r } => write!(f, "({} {} {})", l, op.name(), r),
            Expr::Case { whens, otherwise } => {
                write!(f, "CASE")?;
                for (c, t) in whens {
                    write!(f, " WHEN {} THEN {}", c, t)?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {}", e)?;
                }
                write!(f, " END")
            }
            Expr::Like {
                e,
                pattern,
                negated,
            } => write!(
                f,
                "{} {}LIKE '{}'",
                e,
                if *negated { "NOT " } else { "" },
                pattern
            ),
            Expr::InList { e, list, negated } => {
                write!(f, "{} {}IN (", e, if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, ")")
            }
            Expr::Substr { e, start, len } => {
                write!(f, "SUBSTRING({} FROM {} FOR {})", e, start, len)
            }
            Expr::Extract { part, e } => write!(
                f,
                "EXTRACT({} FROM {})",
                match part {
                    DatePart::Year => "YEAR",
                    DatePart::Month => "MONTH",
                },
                e
            ),
            Expr::AddMonths { e, months } => {
                write!(f, "({} + INTERVAL {} MONTH)", e, months)
            }
            Expr::Placeholder => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::nullable("b", DataType::I64),
            Field::new("s", DataType::Str),
            Field::new("d", DataType::Date),
            Field::new("f", DataType::F64),
        ])
    }

    fn row() -> Vec<Value> {
        vec![
            Value::I64(10),
            Value::Null,
            Value::Str("SHIP".into()),
            Value::Date(vw_common::date::parse_date("1995-06-17").unwrap()),
            Value::F64(0.5),
        ]
    }

    #[test]
    fn typing() {
        let s = schema();
        assert_eq!(
            Expr::binary(BinOp::Add, Expr::col(0), Expr::col(4))
                .data_type(&s)
                .unwrap(),
            DataType::F64
        );
        assert_eq!(
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(3)))
                .data_type(&s)
                .unwrap(),
            DataType::Bool
        );
        assert!(Expr::binary(BinOp::Add, Expr::col(0), Expr::col(2))
            .data_type(&s)
            .is_err());
        assert!(Expr::col(9).data_type(&s).is_err());
        assert_eq!(
            Expr::Extract {
                part: DatePart::Year,
                e: Box::new(Expr::col(3))
            }
            .data_type(&s)
            .unwrap(),
            DataType::I32
        );
    }

    #[test]
    fn nullability() {
        let s = schema();
        assert!(!Expr::col(0).nullable(&s));
        assert!(Expr::col(1).nullable(&s));
        assert!(Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)).nullable(&s));
        assert!(!Expr::Unary {
            op: UnOp::IsNull,
            e: Box::new(Expr::col(1))
        }
        .nullable(&s));
        // CASE without ELSE can return NULL
        assert!(Expr::Case {
            whens: vec![(
                Expr::eq(Expr::col(0), Expr::lit(Value::I64(1))),
                Expr::lit(Value::I64(1))
            )],
            otherwise: None
        }
        .nullable(&s));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = row();
        let e = Expr::binary(
            BinOp::Mul,
            Expr::col(0),
            Expr::binary(BinOp::Sub, Expr::lit(Value::F64(1.0)), Expr::col(4)),
        );
        assert_eq!(e.eval_row(&r).unwrap(), Value::F64(5.0));
        let cmp = Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I32(10)));
        assert_eq!(cmp.eval_row(&r).unwrap(), Value::Bool(true));
        // div by zero errors
        let div = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(Value::I64(0)));
        assert!(div.eval_row(&r).is_err());
        // i32 arithmetic stays i32
        let e32 = Expr::binary(
            BinOp::Add,
            Expr::lit(Value::I32(3)),
            Expr::lit(Value::I32(4)),
        );
        assert_eq!(e32.eval_row(&[]).unwrap(), Value::I32(7));
    }

    #[test]
    fn null_propagation_and_kleene() {
        let r = row();
        let add_null = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(add_null.eval_row(&r).unwrap(), Value::Null);
        let cmp_null = Expr::binary(BinOp::Eq, Expr::col(1), Expr::lit(Value::I64(0)));
        assert_eq!(cmp_null.eval_row(&r).unwrap(), Value::Null);
        // NULL AND false = false; NULL AND true = NULL
        let null_b = Expr::binary(BinOp::Eq, Expr::col(1), Expr::col(1));
        let f = Expr::lit(Value::Bool(false));
        let t = Expr::lit(Value::Bool(true));
        assert_eq!(
            Expr::and(null_b.clone(), f.clone()).eval_row(&r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::and(null_b.clone(), t.clone()).eval_row(&r).unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::or(null_b.clone(), t).eval_row(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Expr::or(null_b, f).eval_row(&r).unwrap(), Value::Null);
        // IS NULL
        let isn = Expr::Unary {
            op: UnOp::IsNull,
            e: Box::new(Expr::col(1)),
        };
        assert_eq!(isn.eval_row(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match(b"%SHIP%", b"AIR SHIPMENT"));
        assert!(like_match(b"SHIP", b"SHIP"));
        assert!(!like_match(b"SHIP", b"SHIPS"));
        assert!(like_match(b"SH_P", b"SHIP"));
        assert!(!like_match(b"SH_P", b"SHOP2"));
        assert!(like_match(b"%", b""));
        assert!(like_match(b"%%", b"x"));
        assert!(like_match(b"a%b%c", b"aXXbYYc"));
        assert!(!like_match(b"a%b%c", b"aXXbYY"));
        assert!(like_match(
            b"%special%requests%",
            b"the special deposit requests"
        ));
    }

    #[test]
    fn like_in_substr_extract_eval() {
        let r = row();
        let like = Expr::Like {
            e: Box::new(Expr::col(2)),
            pattern: "SH%".into(),
            negated: false,
        };
        assert_eq!(like.eval_row(&r).unwrap(), Value::Bool(true));
        let inl = Expr::InList {
            e: Box::new(Expr::col(2)),
            list: vec![Value::Str("AIR".into()), Value::Str("SHIP".into())],
            negated: false,
        };
        assert_eq!(inl.eval_row(&r).unwrap(), Value::Bool(true));
        let not_inl = Expr::InList {
            e: Box::new(Expr::col(2)),
            list: vec![Value::Str("AIR".into())],
            negated: true,
        };
        assert_eq!(not_inl.eval_row(&r).unwrap(), Value::Bool(true));
        let sub = Expr::Substr {
            e: Box::new(Expr::col(2)),
            start: 2,
            len: 2,
        };
        assert_eq!(sub.eval_row(&r).unwrap(), Value::Str("HI".into()));
        let yr = Expr::Extract {
            part: DatePart::Year,
            e: Box::new(Expr::col(3)),
        };
        assert_eq!(yr.eval_row(&r).unwrap(), Value::I32(1995));
        let am = Expr::AddMonths {
            e: Box::new(Expr::col(3)),
            months: 3,
        };
        assert_eq!(
            am.eval_row(&r).unwrap(),
            Value::Date(vw_common::date::parse_date("1995-09-17").unwrap())
        );
    }

    #[test]
    fn in_list_null_semantics() {
        // NULL IN (...) = NULL; x IN (y, NULL) with no match = NULL
        let inl = Expr::InList {
            e: Box::new(Expr::lit(Value::Null)),
            list: vec![Value::I64(1)],
            negated: false,
        };
        assert_eq!(inl.eval_row(&[]).unwrap(), Value::Null);
        let inl2 = Expr::InList {
            e: Box::new(Expr::lit(Value::I64(5))),
            list: vec![Value::I64(1), Value::Null],
            negated: false,
        };
        assert_eq!(inl2.eval_row(&[]).unwrap(), Value::Null);
        let inl3 = Expr::InList {
            e: Box::new(Expr::lit(Value::I64(1))),
            list: vec![Value::I64(1), Value::Null],
            negated: false,
        };
        assert_eq!(inl3.eval_row(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_eval() {
        let e = Expr::Case {
            whens: vec![
                (
                    Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(5))),
                    Expr::lit(Value::Str("low".into())),
                ),
                (
                    Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(50))),
                    Expr::lit(Value::Str("mid".into())),
                ),
            ],
            otherwise: Some(Box::new(Expr::lit(Value::Str("high".into())))),
        };
        assert_eq!(e.eval_row(&row()).unwrap(), Value::Str("mid".into()));
        assert_eq!(
            e.eval_row(&[Value::I64(1000)]).unwrap(),
            Value::Str("high".into())
        );
    }

    #[test]
    fn columns_and_remap() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::col(2),
            Expr::binary(BinOp::Mul, Expr::col(0), Expr::col(2)),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols, vec![0, 2]);
        let remapped = e.remap_columns(&|i| i + 10);
        let mut cols2 = Vec::new();
        remapped.columns(&mut cols2);
        cols2.sort_unstable();
        cols2.dedup();
        assert_eq!(cols2, vec![10, 12]);
    }

    #[test]
    fn display_smoke() {
        let e = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(5)));
        assert_eq!(e.to_string(), "(#0 < 5)");
    }

    #[test]
    fn substr_edges() {
        assert_eq!(substr("hello", 1, 2), "he");
        assert_eq!(substr("hello", 5, 10), "o");
        assert_eq!(substr("hello", 6, 1), "");
        assert_eq!(substr("héllo", 2, 2), "él");
        assert_eq!(substr("x", 0, 1), "x"); // start clamps to 1
    }

    #[test]
    fn agg_expr_types() {
        let s = schema();
        let sum = AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col(0)),
            name: "s".into(),
        };
        assert_eq!(sum.output_type(&s).unwrap(), DataType::I64);
        let sumf = AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col(4)),
            name: "s".into(),
        };
        assert_eq!(sumf.output_type(&s).unwrap(), DataType::F64);
        let avg = AggExpr {
            func: AggFunc::Avg,
            arg: Some(Expr::col(0)),
            name: "a".into(),
        };
        assert_eq!(avg.output_type(&s).unwrap(), DataType::F64);
        let cnt = AggExpr {
            func: AggFunc::CountStar,
            arg: None,
            name: "c".into(),
        };
        assert_eq!(cnt.output_type(&s).unwrap(), DataType::I64);
        let minmax = AggExpr {
            func: AggFunc::Min,
            arg: Some(Expr::col(2)),
            name: "m".into(),
        };
        assert_eq!(minmax.output_type(&s).unwrap(), DataType::Str);
        let bad = AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col(2)),
            name: "x".into(),
        };
        assert!(bad.output_type(&s).is_err());
    }
}
