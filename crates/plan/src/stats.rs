//! Table statistics: equi-width histograms, distinct counts, null fractions.
//!
//! Stands in for the Ingres front-end's "quite accurate histogram-based query
//! estimation" (§I-B). Statistics are built from a sample of column values at
//! load/analyze time and consumed by the selectivity estimator in
//! [`crate::optimizer`].

use vw_common::{DataType, Value};

/// Number of buckets in an equi-width histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-width histogram over a numeric domain (ints, floats, dates all
/// map onto f64 bucket boundaries).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    pub buckets: Vec<u64>,
    pub total: u64,
}

impl Histogram {
    /// Build from numeric samples; `None` if fewer than 2 samples or a
    /// degenerate domain.
    pub fn build(samples: &[f64]) -> Option<Histogram> {
        if samples.len() < 2 {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in samples {
            if s.is_nan() {
                return None;
            }
            min = min.min(s);
            max = max.max(s);
        }
        if max <= min {
            return None;
        }
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let width = (max - min) / HISTOGRAM_BUCKETS as f64;
        for &s in samples {
            let b = (((s - min) / width) as usize).min(HISTOGRAM_BUCKETS - 1);
            buckets[b] += 1;
        }
        Some(Histogram {
            min,
            max,
            buckets,
            total: samples.len() as u64,
        })
    }

    /// Estimated fraction of values `< x` (linear interpolation in-bucket).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if x <= self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let width = (self.max - self.min) / HISTOGRAM_BUCKETS as f64;
        let pos = (x - self.min) / width;
        let full = pos.floor() as usize;
        let frac = pos - full as f64;
        let mut count = 0.0;
        for b in 0..full.min(HISTOGRAM_BUCKETS) {
            count += self.buckets[b] as f64;
        }
        if full < HISTOGRAM_BUCKETS {
            count += self.buckets[full] as f64 * frac;
        }
        count / self.total as f64
    }

    /// Estimated selectivity of an equality with `x`.
    pub fn eq_selectivity(&self, x: f64, n_distinct: u64) -> f64 {
        if x < self.min || x > self.max {
            return 0.0;
        }
        1.0 / n_distinct.max(1) as f64
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    pub n_distinct: u64,
    pub null_fraction: f64,
    pub histogram: Option<Histogram>,
}

impl ColStats {
    /// Build from a value sample.
    pub fn build(ty: DataType, samples: &[Value]) -> ColStats {
        let n = samples.len().max(1);
        let nulls = samples.iter().filter(|v| v.is_null()).count();
        let mut distinct: std::collections::HashSet<String> = std::collections::HashSet::new();
        for v in samples {
            if !v.is_null() {
                distinct.insert(v.to_string());
            }
        }
        let numeric: Vec<f64> = samples
            .iter()
            .filter_map(|v| v.as_f64().or_else(|| v.as_i64().map(|x| x as f64)))
            .collect();
        let histogram = if ty.is_numeric() || ty == DataType::Date {
            Histogram::build(&numeric)
        } else {
            None
        };
        ColStats {
            n_distinct: distinct.len().max(1) as u64,
            null_fraction: nulls as f64 / n as f64,
            histogram,
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub n_rows: u64,
    pub cols: Vec<ColStats>,
}

impl TableStats {
    /// Build from per-column samples (each inner Vec is one column's sample).
    pub fn build(n_rows: u64, types: &[DataType], samples: &[Vec<Value>]) -> TableStats {
        TableStats {
            n_rows,
            cols: types
                .iter()
                .zip(samples)
                .map(|(t, s)| ColStats::build(*t, s))
                .collect(),
        }
    }

    /// A stats object with no information (uniform guesses everywhere).
    pub fn unknown(n_rows: u64, n_cols: usize) -> TableStats {
        TableStats {
            n_rows,
            cols: vec![
                ColStats {
                    n_distinct: (n_rows / 10).max(1),
                    null_fraction: 0.0,
                    histogram: None,
                };
                n_cols
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_fractions() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(&samples).unwrap();
        assert!((h.fraction_below(500.0) - 0.5).abs() < 0.05);
        assert_eq!(h.fraction_below(-10.0), 0.0);
        assert_eq!(h.fraction_below(2000.0), 1.0);
        assert!((h.fraction_below(250.0) - 0.25).abs() < 0.05);
        // skewed data
        let skew: Vec<f64> = (0..1000)
            .map(|i| if i < 900 { 1.0 } else { 100.0 })
            .collect();
        let hs = Histogram::build(&skew).unwrap();
        assert!(hs.fraction_below(50.0) > 0.85);
    }

    #[test]
    fn histogram_degenerate() {
        assert!(Histogram::build(&[]).is_none());
        assert!(Histogram::build(&[1.0]).is_none());
        assert!(Histogram::build(&[2.0, 2.0]).is_none());
        assert!(Histogram::build(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn col_stats() {
        let vals: Vec<Value> = (0..100)
            .map(|i| {
                if i % 10 == 0 {
                    Value::Null
                } else {
                    Value::I64(i % 7)
                }
            })
            .collect();
        let s = ColStats::build(DataType::I64, &vals);
        assert_eq!(s.n_distinct, 7); // i % 7 ∈ {0..6}, all present among non-nulls
        assert!((s.null_fraction - 0.1).abs() < 1e-9);
        assert!(s.histogram.is_some());
        let strs: Vec<Value> = (0..10).map(|i| Value::Str(format!("s{}", i % 3))).collect();
        let s2 = ColStats::build(DataType::Str, &strs);
        assert_eq!(s2.n_distinct, 3);
        assert!(s2.histogram.is_none());
    }

    #[test]
    fn eq_selectivity_ranges() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&samples).unwrap();
        assert_eq!(h.eq_selectivity(200.0, 100), 0.0);
        assert!((h.eq_selectivity(50.0, 100) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn unknown_stats() {
        let s = TableStats::unknown(1000, 3);
        assert_eq!(s.cols.len(), 3);
        assert_eq!(s.n_rows, 1000);
        assert_eq!(s.cols[0].n_distinct, 100);
    }
}
