//! Cardinality estimation and plan optimization.
//!
//! Mirrors the division of labour in the product (§I-B): the front-end
//! optimizer (Ingres there, this module here) uses histogram statistics to
//! estimate selectivities and choose join strategy, while rule-based
//! rewriting happens separately in [`crate::rewrite`].
//!
//! Two optimizations are implemented:
//!
//! * **Greedy join ordering** ([`order_relations`]) — used by the SQL binder
//!   *before* the positional join tree is built, which is where ordering is
//!   cheap (name-level, no column remapping).
//! * **Build-side selection** ([`optimize`]) — hash joins in this system
//!   build on the right input and stream the left; when the estimated left
//!   cardinality is smaller, the optimizer swaps the inputs (and restores
//!   column order with a projection).

use crate::expr::{BinOp, Expr, UnOp};
use crate::feedback::{self, CardFeedback};
use crate::plan::{JoinKind, LogicalPlan};
use crate::stats::TableStats;
use std::collections::HashMap;
use vw_common::{Schema, TableId, Value};

/// Default selectivity guesses when histograms can't answer.
const DEFAULT_EQ_SEL: f64 = 0.05;
const DEFAULT_RANGE_SEL: f64 = 0.3;
const DEFAULT_OTHER_SEL: f64 = 0.5;

/// Estimate the selectivity of a predicate over a relation with `stats`.
/// `col_map` translates expression column indexes to stats column indexes
/// (identity for unprojected scans).
#[allow(clippy::only_used_in_recursion)]
pub fn selectivity(
    e: &Expr,
    schema: &Schema,
    stats: Option<&TableStats>,
    col_map: &dyn Fn(usize) -> Option<usize>,
) -> f64 {
    match e {
        Expr::Binary {
            op: BinOp::And,
            l,
            r,
        } => selectivity(l, schema, stats, col_map) * selectivity(r, schema, stats, col_map),
        Expr::Binary {
            op: BinOp::Or,
            l,
            r,
        } => {
            let a = selectivity(l, schema, stats, col_map);
            let b = selectivity(r, schema, stats, col_map);
            (a + b - a * b).min(1.0)
        }
        Expr::Unary { op: UnOp::Not, e } => 1.0 - selectivity(e, schema, stats, col_map),
        Expr::Binary { op, l, r } if op.is_comparison() => {
            // col <op> literal is the estimable shape.
            let (col, lit, op) = match (&**l, &**r) {
                (Expr::Col(i), Expr::Lit(v)) => (*i, v.clone(), *op),
                (Expr::Lit(v), Expr::Col(i)) => (*i, v.clone(), flip(*op)),
                _ => {
                    return match op {
                        BinOp::Eq => DEFAULT_EQ_SEL,
                        _ => DEFAULT_RANGE_SEL,
                    }
                }
            };
            estimate_cmp(col, op, &lit, stats, col_map)
        }
        Expr::InList { list, negated, .. } => {
            let s = (DEFAULT_EQ_SEL * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Like { negated, .. } => {
            if *negated {
                1.0 - 0.1
            } else {
                0.1
            }
        }
        Expr::Unary {
            op: UnOp::IsNull, ..
        } => 0.05,
        Expr::Unary {
            op: UnOp::IsNotNull,
            ..
        } => 0.95,
        Expr::Lit(Value::Bool(true)) => 1.0,
        Expr::Lit(Value::Bool(false)) => 0.0,
        _ => DEFAULT_OTHER_SEL,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn estimate_cmp(
    col: usize,
    op: BinOp,
    lit: &Value,
    stats: Option<&TableStats>,
    col_map: &dyn Fn(usize) -> Option<usize>,
) -> f64 {
    let Some(ts) = stats else {
        return if op == BinOp::Eq {
            DEFAULT_EQ_SEL
        } else {
            DEFAULT_RANGE_SEL
        };
    };
    let Some(sc) = col_map(col).and_then(|i| ts.cols.get(i)) else {
        return DEFAULT_RANGE_SEL;
    };
    let x = match lit
        .as_f64()
        .or_else(|| lit.as_i64().map(|v| v as f64))
        // Date-shaped string literals (`col < '1995-01-01'` without an
        // explicit DATE cast) still get the histogram path: Date columns
        // build histograms over their day numbers.
        .or_else(|| {
            lit.as_str()
                .and_then(vw_common::date::parse_date)
                .map(|d| d as f64)
        }) {
        Some(x) => x,
        None => {
            // Plain string literal: equality can use the distinct count,
            // but ranges (`name < 'M'`) have no histogram to consult —
            // use the default range selectivity, never an equality guess.
            let nd = sc.n_distinct.max(1) as f64;
            return match op {
                BinOp::Eq => 1.0 / nd,
                BinOp::Ne => 1.0 - 1.0 / nd,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => DEFAULT_RANGE_SEL,
                _ => DEFAULT_OTHER_SEL,
            };
        }
    };
    match (&sc.histogram, op) {
        (Some(h), BinOp::Lt) => h.fraction_below(x),
        (Some(h), BinOp::Le) => h.fraction_below(x) + h.eq_selectivity(x, sc.n_distinct),
        (Some(h), BinOp::Gt) => 1.0 - h.fraction_below(x) - h.eq_selectivity(x, sc.n_distinct),
        (Some(h), BinOp::Ge) => 1.0 - h.fraction_below(x),
        (Some(h), BinOp::Eq) => h.eq_selectivity(x, sc.n_distinct),
        (Some(h), BinOp::Ne) => 1.0 - h.eq_selectivity(x, sc.n_distinct),
        (None, BinOp::Eq) => 1.0 / sc.n_distinct as f64,
        (None, BinOp::Ne) => 1.0 - 1.0 / sc.n_distinct as f64,
        _ => DEFAULT_RANGE_SEL,
    }
    .clamp(0.0, 1.0)
}

/// Estimate output cardinality of a plan.
pub fn estimate_rows(plan: &LogicalPlan, stats: &HashMap<TableId, TableStats>) -> f64 {
    estimate_rows_with(plan, stats, None)
}

/// Estimate output cardinality, multiplying in any history-learned
/// correction factor for this node's normalized shape (see
/// [`crate::feedback`]). `fb = None` reproduces the static estimate.
pub fn estimate_rows_with(
    plan: &LogicalPlan,
    stats: &HashMap<TableId, TableStats>,
    fb: Option<&CardFeedback>,
) -> f64 {
    let base = estimate_rows_static(plan, stats, fb);
    if let Some(fb) = fb {
        if feedback::recordable(plan) {
            if let Some(f) = fb.factor(feedback::fingerprint(plan)) {
                return (base * f).max(1.0);
            }
        }
    }
    base
}

fn estimate_rows_static(
    plan: &LogicalPlan,
    stats: &HashMap<TableId, TableStats>,
    fb: Option<&CardFeedback>,
) -> f64 {
    match plan {
        LogicalPlan::Scan {
            table_id,
            schema,
            projection,
            filter,
            ..
        } => {
            let ts = stats.get(table_id);
            let base = ts.map(|t| t.n_rows as f64).unwrap_or(1000.0);
            match filter {
                Some(f) => {
                    let proj = projection.clone();
                    let sel = selectivity(f, schema, ts, &|i| match &proj {
                        Some(p) => p.get(i).copied(),
                        None => Some(i),
                    });
                    base * sel
                }
                None => base,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let in_rows = estimate_rows_with(input, stats, fb);
            let schema = input.schema().unwrap_or_default();
            in_rows * selectivity(predicate, &schema, None, &|i| Some(i))
        }
        LogicalPlan::Project { input, .. } => estimate_rows_with(input, stats, fb),
        LogicalPlan::Join {
            left, right, kind, ..
        } => {
            let l = estimate_rows_with(left, stats, fb);
            let r = estimate_rows_with(right, stats, fb);
            match kind {
                // Classic FK-join guess: |L ⋈ R| ≈ max input size.
                JoinKind::Inner | JoinKind::Left => (l * r / l.max(r).max(1.0)).max(1.0),
                JoinKind::Semi => l * 0.5,
                JoinKind::Anti => l * 0.5,
            }
        }
        LogicalPlan::MergeJoin { left, right, .. } => {
            let l = estimate_rows_with(left, stats, fb);
            let r = estimate_rows_with(right, stats, fb);
            // Same FK-join guess as the inner hash join it replaces.
            (l * r / l.max(r).max(1.0)).max(1.0)
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let in_rows = estimate_rows_with(input, stats, fb);
            if group_by.is_empty() {
                1.0
            } else {
                // Square-root rule of thumb for group count.
                in_rows.sqrt().max(1.0)
            }
        }
        LogicalPlan::Sort { input, .. } | LogicalPlan::Exchange { input, .. } => {
            estimate_rows_with(input, stats, fb)
        }
        LogicalPlan::Limit { input, fetch, .. } => {
            estimate_rows_with(input, stats, fb).min(*fetch as f64)
        }
    }
}

/// Greedy join ordering over a relation graph. `sizes[i]` is the estimated
/// (post-filter) cardinality of relation `i`; `edges` are join-predicate
/// pairs. Returns an ordering starting from the smallest relation that
/// prefers connected, size-minimizing expansions — the shape the binder then
/// builds left-deep (probe side = accumulated prefix, build = next smallest).
pub fn order_relations(sizes: &[f64], edges: &[(usize, usize)]) -> Vec<usize> {
    let n = sizes.len();
    if n == 0 {
        return vec![];
    }
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    // Start at the largest relation: it becomes the probe (streaming) side
    // of the left-deep pipeline; dimensions hash-build on the right.
    let first = (0..n)
        .max_by(|&a, &b| sizes[a].total_cmp(&sizes[b]))
        .unwrap();
    order.push(first);
    used[first] = true;
    while order.len() < n {
        // Connected candidates first.
        let connected: Vec<usize> = (0..n)
            .filter(|&i| !used[i])
            .filter(|&i| {
                edges
                    .iter()
                    .any(|&(a, b)| (a == i && used[b]) || (b == i && used[a]))
            })
            .collect();
        let pool = if connected.is_empty() {
            (0..n).filter(|&i| !used[i]).collect::<Vec<_>>()
        } else {
            connected
        };
        let next = pool
            .into_iter()
            .min_by(|&a, &b| sizes[a].total_cmp(&sizes[b]))
            .unwrap();
        order.push(next);
        used[next] = true;
    }
    order
}

/// Cost-based plan tweaks: currently build-side selection for inner joins.
pub fn optimize(plan: LogicalPlan, stats: &HashMap<TableId, TableStats>) -> LogicalPlan {
    optimize_with_feedback(plan, stats, None)
}

/// [`optimize`], with cardinality estimates corrected by execution history.
/// A learned factor that pushes a child estimate across the swap threshold
/// flips the join build side that static stats chose.
pub fn optimize_with_feedback(
    plan: LogicalPlan,
    stats: &HashMap<TableId, TableStats>,
    fb: Option<&CardFeedback>,
) -> LogicalPlan {
    let children: Vec<LogicalPlan> = plan
        .children()
        .into_iter()
        .map(|c| optimize_with_feedback(c.clone(), stats, fb))
        .collect();
    let node = plan.with_children(children);
    let LogicalPlan::Join {
        left,
        right,
        kind: JoinKind::Inner,
        on,
        residual,
    } = node
    else {
        return node;
    };
    let l_rows = estimate_rows_with(&left, stats, fb);
    let r_rows = estimate_rows_with(&right, stats, fb);
    // Build happens on the right; if the left is (much) smaller, swap and
    // restore output column order with a projection.
    if l_rows * 1.5 < r_rows {
        let l_schema = left.schema().unwrap_or_default();
        let r_schema = right.schema().unwrap_or_default();
        let ln = l_schema.len();
        let rn = r_schema.len();
        let swapped = LogicalPlan::Join {
            left: right,
            right: left,
            kind: JoinKind::Inner,
            on: on.iter().map(|&(l, r)| (r, l)).collect(),
            residual: residual.map(|e| e.remap_columns(&|i| if i < ln { rn + i } else { i - ln })),
        };
        // Output of swapped join: right ++ left; restore left ++ right.
        let mut exprs: Vec<(Expr, String)> = Vec::with_capacity(ln + rn);
        for (i, f) in l_schema.fields().iter().enumerate() {
            exprs.push((Expr::col(rn + i), f.name.clone()));
        }
        for (i, f) in r_schema.fields().iter().enumerate() {
            exprs.push((Expr::col(i), f.name.clone()));
        }
        LogicalPlan::Project {
            input: Box::new(swapped),
            exprs,
        }
    } else {
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            on,
            residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ColStats, Histogram};
    use vw_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::I64),
        ])
    }

    fn stats_uniform_0_100() -> TableStats {
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        TableStats {
            n_rows: 10_000,
            cols: vec![
                ColStats {
                    n_distinct: 101,
                    null_fraction: 0.0,
                    histogram: Histogram::build(&samples),
                },
                ColStats {
                    n_distinct: 10,
                    null_fraction: 0.0,
                    histogram: None,
                },
            ],
        }
    }

    #[test]
    fn histogram_selectivity() {
        let s = stats_uniform_0_100();
        let e = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(25)));
        let sel = selectivity(&e, &schema(), Some(&s), &|i| Some(i));
        assert!((sel - 0.25).abs() < 0.05, "sel {}", sel);
        // flipped literal side
        let e2 = Expr::binary(BinOp::Gt, Expr::lit(Value::I64(25)), Expr::col(0));
        let sel2 = selectivity(&e2, &schema(), Some(&s), &|i| Some(i));
        assert!((sel2 - 0.25).abs() < 0.05, "sel2 {}", sel2);
        // conjunction multiplies
        let e3 = Expr::and(e.clone(), Expr::eq(Expr::col(1), Expr::lit(Value::I64(3))));
        let sel3 = selectivity(&e3, &schema(), Some(&s), &|i| Some(i));
        assert!((sel3 - 0.25 * 0.1).abs() < 0.02, "sel3 {}", sel3);
        // out of range equality
        let e4 = Expr::eq(Expr::col(0), Expr::lit(Value::I64(500)));
        assert_eq!(selectivity(&e4, &schema(), Some(&s), &|i| Some(i)), 0.0);
    }

    #[test]
    fn row_estimates_flow() {
        let mut stats = HashMap::new();
        stats.insert(TableId::new(1), stats_uniform_0_100());
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            table_id: TableId::new(1),
            schema: schema(),
            projection: None,
            filter: Some(Expr::binary(
                BinOp::Lt,
                Expr::col(0),
                Expr::lit(Value::I64(50)),
            )),
        };
        let rows = estimate_rows(&scan, &stats);
        assert!((rows - 5000.0).abs() < 600.0, "rows {}", rows);
        let agg = scan.clone().aggregate(vec![0], vec![]);
        assert!(estimate_rows(&agg, &stats) < rows);
        let lim = scan.limit(0, 10);
        assert_eq!(estimate_rows(&lim, &stats), 10.0);
    }

    #[test]
    fn greedy_order_starts_large_then_connected_small() {
        // fact (0) huge, dims 1..3 small, star edges 0-1, 0-2, 0-3
        let sizes = [1_000_000.0, 100.0, 5000.0, 10.0];
        let edges = [(0, 1), (0, 2), (0, 3)];
        let order = order_relations(&sizes, &edges);
        assert_eq!(order[0], 0);
        // dims follow smallest-first
        assert_eq!(order[1], 3);
        assert_eq!(order[2], 1);
        assert_eq!(order[3], 2);
    }

    #[test]
    fn order_handles_disconnected() {
        let sizes = [10.0, 20.0, 5.0];
        let order = order_relations(&sizes, &[]);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 1); // largest first
        let empty: Vec<usize> = order_relations(&[], &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn build_side_swap() {
        let mut stats = HashMap::new();
        stats.insert(
            TableId::new(1),
            TableStats::unknown(10, 2), // small
        );
        stats.insert(TableId::new(2), TableStats::unknown(100_000, 2));
        let small = LogicalPlan::Scan {
            table: "small".into(),
            table_id: TableId::new(1),
            schema: schema(),
            projection: None,
            filter: None,
        };
        let big = LogicalPlan::Scan {
            table: "big".into(),
            table_id: TableId::new(2),
            schema: schema(),
            projection: None,
            filter: None,
        };
        // small ⋈ big: left tiny → swap so big streams, small builds.
        let join = small
            .clone()
            .join(big.clone(), JoinKind::Inner, vec![(0, 1)]);
        let opt = optimize(join.clone(), &stats);
        match &opt {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Join { left, on, .. } => {
                    assert!(matches!(&**left, LogicalPlan::Scan { table, .. } if table == "big"));
                    assert_eq!(on, &vec![(1, 0)]);
                }
                other => panic!("{}", other.describe()),
            },
            other => panic!("{}", other.explain()),
        }
        // schema preserved
        assert_eq!(opt.schema().unwrap(), join.schema().unwrap());
        // big ⋈ small: already good → untouched
        let join2 = big.join(small, JoinKind::Inner, vec![(0, 1)]);
        let opt2 = optimize(join2.clone(), &stats);
        assert_eq!(opt2, join2);
    }

    #[test]
    fn string_range_predicates_use_range_default() {
        // `name < 'M'` on a string column: no histogram exists, so the
        // estimate must be the default range selectivity — not the
        // distinct-based equality guess (1/n_distinct would call a half-open
        // alphabet range as selective as an exact match).
        let s = stats_uniform_0_100();
        let sch = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::I64),
        ]);
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge] {
            let e = Expr::binary(op, Expr::col(0), Expr::lit(Value::Str("M".into())));
            let sel = selectivity(&e, &sch, Some(&s), &|i| Some(i));
            assert_eq!(sel, DEFAULT_RANGE_SEL, "{:?}", op);
        }
        // Equality still uses the distinct count (col 0 has 101 distinct).
        let eq = Expr::eq(Expr::col(0), Expr::lit(Value::Str("M".into())));
        let sel = selectivity(&eq, &sch, Some(&s), &|i| Some(i));
        assert!((sel - 1.0 / 101.0).abs() < 1e-9, "sel {}", sel);
    }

    #[test]
    fn date_string_literals_hit_the_histogram() {
        // A Date column's histogram is over day numbers; a date-shaped
        // string literal should parse into that domain instead of falling
        // back to the flat default.
        let base = vw_common::date::parse_date("1995-01-01").unwrap();
        let samples: Vec<f64> = (0..1000).map(|i| (base + i) as f64).collect();
        let s = TableStats {
            n_rows: 1000,
            cols: vec![ColStats {
                n_distinct: 1000,
                null_fraction: 0.0,
                histogram: Histogram::build(&samples),
            }],
        };
        let e = Expr::binary(
            BinOp::Lt,
            Expr::col(0),
            Expr::lit(Value::Str("1995-04-11".into())), // day 100 of 1000
        );
        let sel = selectivity(&e, &schema(), Some(&s), &|i| Some(i));
        assert!((sel - 0.1).abs() < 0.03, "sel {}", sel);
    }

    #[test]
    fn zero_distinct_does_not_divide_by_zero() {
        let s = TableStats {
            n_rows: 10,
            cols: vec![ColStats {
                n_distinct: 0,
                null_fraction: 1.0,
                histogram: None,
            }],
        };
        let e = Expr::eq(Expr::col(0), Expr::lit(Value::Str("x".into())));
        let sel = selectivity(&e, &schema(), Some(&s), &|i| Some(i));
        assert!(sel.is_finite() && (0.0..=1.0).contains(&sel));
    }

    #[test]
    fn feedback_flips_build_side() {
        use crate::feedback::CardFeedback;
        // Statically both sides look equal → no swap.
        let mut stats = HashMap::new();
        stats.insert(TableId::new(1), TableStats::unknown(1000, 2));
        stats.insert(TableId::new(2), TableStats::unknown(1000, 2));
        let l = LogicalPlan::scan("l", TableId::new(1), schema());
        let r = LogicalPlan::scan("r", TableId::new(2), schema());
        let join = l.clone().join(r.clone(), JoinKind::Inner, vec![(0, 1)]);
        assert_eq!(optimize(join.clone(), &stats), join);
        // History says the left side actually produces ~30x fewer rows than
        // estimated; with the correction the optimizer now swaps.
        let mut fb = CardFeedback::new();
        let l_fp = crate::feedback::fingerprint(&l);
        fb.record(l_fp, 1000.0, 40.0);
        fb.record(l_fp, 1000.0, 40.0);
        let opt = optimize_with_feedback(join.clone(), &stats, Some(&fb));
        assert!(
            matches!(&opt, LogicalPlan::Project { input, .. }
                if matches!(&**input, LogicalPlan::Join { left, .. }
                    if matches!(&**left, LogicalPlan::Scan { table, .. } if table == "r"))),
            "expected history-corrected swap, got:\n{}",
            opt.explain()
        );
        // Kill switch: without feedback the plan is untouched.
        assert_eq!(optimize_with_feedback(join.clone(), &stats, None), join);
    }
}
