//! The full-materialization (MonetDB-style, column-at-a-time) baseline.
//!
//! MonetDB's execution model — which X100 was built to replace (§I-A) —
//! processes one whole column operation at a time, materializing every
//! intermediate result in full. We reproduce that model by compiling the
//! plan with the *same* vectorized operators as `vw-core` but inserting a
//! **materialization barrier** between every pair of operators: the child's
//! entire output is drained into one giant dense batch before the parent
//! sees a single row. The arithmetic kernels are therefore identical to the
//! vectorized engine's; what differs is exactly what the paper says differs:
//! intermediates grow to full relation size, spilling out of cache and
//! costing allocation/memory bandwidth (experiment E3).

use vw_common::{Result, Schema, VwError};
use vw_core::batch::Batch;
use vw_core::compile::ExecContext;
use vw_core::mem::MemTracker;
use vw_core::operators::{
    drain_to_single_batch, BatchSource, BoxedOperator, HashAggregate, HashJoin, Operator,
    VecFilter, VecLimit, VecProject, VecScan, VecSort,
};
use vw_plan::{JoinKind, LogicalPlan};

/// Drains its child completely into one dense batch, then emits it once —
/// the materialization barrier.
struct Materializer {
    schema: Schema,
    child: Option<BoxedOperator>,
    batch: Option<Batch>,
}

impl Materializer {
    fn new(child: BoxedOperator) -> Materializer {
        Materializer {
            schema: child.schema().clone(),
            child: Some(child),
            batch: None,
        }
    }
}

impl Operator for Materializer {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(mut child) = self.child.take() {
            let batch = drain_to_single_batch(child.as_mut())?;
            if batch.rows > 0 || batch.columns.is_empty() {
                self.batch = Some(batch);
            }
        }
        Ok(self.batch.take())
    }
}

/// Compile a plan for the materialized engine: vw-core operators with a
/// barrier under each one. The scan itself also materializes whole-table
/// column images (vector size = entire input), matching column-at-a-time
/// processing.
pub fn compile_materialized(plan: &LogicalPlan, ctx: &ExecContext) -> Result<BoxedOperator> {
    // Whole-column "vectors": effectively unbounded vector size.
    let mut mat_ctx = ctx.clone();
    mat_ctx.config.vector_size = usize::MAX / 2;
    compile_rec(plan, &mat_ctx)
}

fn compile_rec(plan: &LogicalPlan, ctx: &ExecContext) -> Result<BoxedOperator> {
    let naive = !ctx.config.rewrite_nulls;
    let barrier = |op: BoxedOperator| -> BoxedOperator { Box::new(Materializer::new(op)) };
    Ok(match plan {
        LogicalPlan::Scan {
            table_id,
            schema,
            projection,
            filter,
            ..
        } => {
            let provider = ctx
                .tables
                .get(table_id)
                .ok_or_else(|| VwError::Plan(format!("no table provider for {}", table_id)))?;
            let projection = match projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            barrier(Box::new(VecScan::new(
                provider.storage.clone(),
                provider.pdt.clone(),
                projection,
                filter.clone(),
                ctx.config.vector_size,
                None,
                None,
                naive,
                false,
            )?))
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = compile_rec(input, ctx)?;
            barrier(Box::new(VecFilter::new(child, predicate.clone(), naive)?))
        }
        LogicalPlan::Project { input, exprs } => {
            let child = compile_rec(input, ctx)?;
            barrier(Box::new(VecProject::new(child, exprs.clone(), naive)?))
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let l = compile_rec(left, ctx)?;
            let r = compile_rec(right, ctx)?;
            let mut join = HashJoin::new(l, r, *kind, on.clone(), residual.clone(), naive)?;
            join.set_mem_tracker(MemTracker::new(ctx.mem.clone()));
            if let Some(d) = &ctx.spill_disk {
                join.set_spill_disk(d.clone());
            }
            barrier(Box::new(join))
        }
        // The materialized baseline has no streaming merge join; an inner
        // hash join produces the same rows (order is irrelevant behind full
        // materialization barriers).
        LogicalPlan::MergeJoin { left, right, on } => {
            let l = compile_rec(left, ctx)?;
            let r = compile_rec(right, ctx)?;
            let mut join = HashJoin::new(l, r, JoinKind::Inner, on.clone(), None, naive)?;
            join.set_mem_tracker(MemTracker::new(ctx.mem.clone()));
            if let Some(d) = &ctx.spill_disk {
                join.set_spill_disk(d.clone());
            }
            barrier(Box::new(join))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => {
            let child = compile_rec(input, ctx)?;
            let mut agg = HashAggregate::new(
                child,
                group_by.clone(),
                aggs.clone(),
                *phase,
                ctx.config.vector_size,
                naive,
            )?;
            agg.set_mem_tracker(MemTracker::new(ctx.mem.clone()));
            if let Some(d) = &ctx.spill_disk {
                agg.set_spill_disk(d.clone());
            }
            barrier(Box::new(agg))
        }
        LogicalPlan::Sort { input, keys } => {
            let child = compile_rec(input, ctx)?;
            let mut sort = VecSort::new(child, keys.clone(), ctx.config.vector_size);
            sort.set_mem_tracker(MemTracker::new(ctx.mem.clone()));
            if let Some(d) = &ctx.spill_disk {
                sort.set_spill_disk(d.clone());
            }
            barrier(Box::new(sort))
        }
        LogicalPlan::Limit {
            input,
            offset,
            fetch,
        } => {
            let child = compile_rec(input, ctx)?;
            barrier(Box::new(VecLimit::new(child, *offset, *fetch)))
        }
        LogicalPlan::Exchange { input, .. } => {
            // MonetDB-style engine runs serial here; execute the child.
            compile_rec(input, ctx)?
        }
    })
}

/// Test helper: wrap fixed batches in a materializer (exposes the barrier).
pub fn materialize_source(schema: Schema, batches: Vec<Batch>) -> BoxedOperator {
    Box::new(Materializer::new(Box::new(BatchSource::new(
        schema, batches,
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::RwLock;
    use std::collections::HashMap;
    use std::sync::Arc;
    use vw_common::config::EngineConfig;
    use vw_common::{DataType, Field, TableId, Value};
    use vw_core::compile::{compile_plan, TableProvider};
    use vw_core::operators::collect_rows;
    use vw_pdt::Pdt;
    use vw_plan::{AggExpr, AggFunc, BinOp, Expr};
    use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

    fn setup(n: usize) -> (ExecContext, TableId, Schema) {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("v", DataType::F64),
        ]);
        let mut b = TableBuilder::with_group_size(schema.clone(), disk, 128);
        for i in 0..n {
            b.push_row(vec![Value::I64(i as i64), Value::F64(i as f64 * 0.5)])
                .unwrap();
        }
        let storage = b.finish().unwrap();
        let tid = TableId::new(1);
        let mut tables = HashMap::new();
        tables.insert(
            tid,
            TableProvider {
                storage: Arc::new(RwLock::new(storage)),
                pdt: Arc::new(Pdt::new(n as u64)),
            },
        );
        (
            ExecContext::new(tables, EngineConfig::default()),
            tid,
            schema,
        )
    }

    #[test]
    fn materialized_matches_vectorized() {
        let (ctx, tid, schema) = setup(500);
        let plan = LogicalPlan::scan("t", tid, schema)
            .filter(Expr::binary(
                BinOp::Gt,
                Expr::col(0),
                Expr::lit(Value::I64(100)),
            ))
            .aggregate(
                vec![],
                vec![
                    AggExpr {
                        func: AggFunc::CountStar,
                        arg: None,
                        name: "n".into(),
                    },
                    AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(Expr::col(1)),
                        name: "s".into(),
                    },
                ],
            );
        let mut vec_op = compile_plan(&plan, &ctx).unwrap();
        let want = collect_rows(vec_op.as_mut()).unwrap();
        let mut mat_op = compile_materialized(&plan, &ctx).unwrap();
        let got = collect_rows(mat_op.as_mut()).unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0][0], Value::I64(399));
    }

    #[test]
    fn barrier_emits_exactly_one_batch() {
        let (ctx, tid, schema) = setup(1000);
        let plan = LogicalPlan::scan("t", tid, schema);
        let mut op = compile_materialized(&plan, &ctx).unwrap();
        let first = op.next().unwrap().unwrap();
        assert_eq!(first.rows, 1000); // whole table in one batch
        assert!(op.next().unwrap().is_none());
    }

    #[test]
    fn exchange_degrades_to_serial() {
        let (ctx, tid, schema) = setup(50);
        let plan = LogicalPlan::Exchange {
            input: Box::new(LogicalPlan::scan("t", tid, schema)),
            partitions: 4,
        };
        let mut op = compile_materialized(&plan, &ctx).unwrap();
        let rows = collect_rows(op.as_mut()).unwrap();
        assert_eq!(rows.len(), 50);
    }
}
