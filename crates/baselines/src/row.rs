//! The tuple-at-a-time Volcano baseline engine.
//!
//! Deliberately built the way the paper describes classic pipelined engines:
//! every operator's `next()` produces exactly one tuple (`Vec<Value>`),
//! expressions are interpreted per tuple via `vw_plan::Expr::eval_row`, and
//! every scalar travels as a boxed self-describing [`Value`]. No vectors, no
//! selection lists, no kernels — per-tuple interpretation overhead everywhere,
//! which is exactly what experiments E1/E2 measure against.
//!
//! To keep comparisons about the *execution model* rather than I/O, the scan
//! uses the same columnar storage, the same group pruning and the same
//! pushed-down filters as the vectorized engine.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use vw_common::hash::FxHashMap;
use vw_common::{Result, Schema, TableId, Value, VwError};
use vw_plan::plan::AggPhase;
use vw_plan::rewrite::parallel::partial_avg_count_columns;
use vw_plan::{AggExpr, AggFunc, Expr, JoinKind, LogicalPlan, SortKey};
use vw_storage::block::PruneOp;
use vw_storage::{NullableColumn, TableStorage};

/// One-tuple-per-call operator interface (classic Volcano).
pub trait RowOperator {
    fn schema(&self) -> &Schema;
    fn next(&mut self) -> Result<Option<Vec<Value>>>;
}

pub type BoxedRowOperator = Box<dyn RowOperator>;

/// Tables visible to the row engine.
pub type RowCtx = HashMap<TableId, Arc<RwLock<TableStorage>>>;

/// Drain a row operator.
pub fn collect_row_engine(op: &mut dyn RowOperator) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    while let Some(r) = op.next()? {
        out.push(r);
    }
    Ok(out)
}

/// Cross-compile a logical plan for the row engine.
pub fn compile_row(plan: &LogicalPlan, ctx: &RowCtx) -> Result<BoxedRowOperator> {
    Ok(match plan {
        LogicalPlan::Scan {
            table_id,
            schema,
            projection,
            filter,
            ..
        } => {
            let storage = ctx
                .get(table_id)
                .ok_or_else(|| VwError::Plan(format!("no table {}", table_id)))?
                .clone();
            let projection = match projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            Box::new(RowScan::new(storage, projection, filter.clone()))
        }
        LogicalPlan::Filter { input, predicate } => Box::new(RowFilter {
            schema: input.schema()?,
            input: compile_row(input, ctx)?,
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project { input, exprs } => {
            let child = compile_row(input, ctx)?;
            let schema = plan.schema()?;
            Box::new(RowProject {
                input: child,
                exprs: exprs.iter().map(|(e, _)| e.clone()).collect(),
                schema,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => Box::new(RowHashJoin::new(
            compile_row(left, ctx)?,
            compile_row(right, ctx)?,
            *kind,
            on.clone(),
            residual.clone(),
            plan.schema()?,
        )),
        // Tuple-at-a-time engine: an inner hash join stands in for the
        // streaming merge join (same rows, order-insensitive baseline).
        LogicalPlan::MergeJoin { left, right, on } => Box::new(RowHashJoin::new(
            compile_row(left, ctx)?,
            compile_row(right, ctx)?,
            JoinKind::Inner,
            on.clone(),
            None,
            plan.schema()?,
        )),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => Box::new(RowAggregate::new(
            compile_row(input, ctx)?,
            group_by.clone(),
            aggs.clone(),
            *phase,
            plan.schema()?,
        )),
        LogicalPlan::Sort { input, keys } => Box::new(RowSort {
            schema: input.schema()?,
            input: Some(compile_row(input, ctx)?),
            keys: keys.clone(),
            sorted: Vec::new(),
            done: false,
        }),
        LogicalPlan::Limit {
            input,
            offset,
            fetch,
        } => Box::new(RowLimit {
            schema: input.schema()?,
            input: compile_row(input, ctx)?,
            to_skip: *offset,
            remaining: *fetch,
        }),
        LogicalPlan::Exchange { .. } => {
            return Err(VwError::Unsupported(
                "the tuple-at-a-time baseline has no parallel Exchange".into(),
            ))
        }
    })
}

// -------------------------------------------------------------------- scan

struct RowScan {
    storage: Arc<RwLock<TableStorage>>,
    projection: Vec<usize>,
    filter: Option<Expr>,
    out_schema: Schema,
    groups: Vec<usize>,
    group_pos: usize,
    current: Option<(Vec<NullableColumn>, usize, usize)>, // cols, len, offset
}

impl RowScan {
    fn new(
        storage: Arc<RwLock<TableStorage>>,
        projection: Vec<usize>,
        filter: Option<Expr>,
    ) -> RowScan {
        let guard = storage.read();
        let out_schema = guard.schema().project(&projection);
        // Same zone-map pruning as the vectorized scan.
        let prune = filter.as_ref().map(prunable_conjuncts).unwrap_or_default();
        let groups: Vec<usize> = (0..guard.group_count())
            .filter(|&g| {
                prune.iter().all(|(out_col, op, v)| {
                    let sc = projection[*out_col];
                    guard.group(g).columns[sc].minmax.may_match(*op, v)
                })
            })
            .collect();
        drop(guard);
        RowScan {
            storage,
            projection,
            filter,
            out_schema,
            groups,
            group_pos: 0,
            current: None,
        }
    }
}

fn prunable_conjuncts(filter: &Expr) -> Vec<(usize, PruneOp, Value)> {
    use vw_plan::BinOp;
    let mut conjuncts = Vec::new();
    vw_plan::rewrite::pushdown::split_conjunction(filter, &mut conjuncts);
    let mut out = Vec::new();
    for c in conjuncts {
        if let Expr::Binary { op, l, r } = &c {
            let to_prune = |op: BinOp| match op {
                BinOp::Eq => Some(PruneOp::Eq),
                BinOp::Lt => Some(PruneOp::Lt),
                BinOp::Le => Some(PruneOp::Le),
                BinOp::Gt => Some(PruneOp::Gt),
                BinOp::Ge => Some(PruneOp::Ge),
                _ => None,
            };
            let flip = |op: BinOp| match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                o => o,
            };
            match (&**l, &**r) {
                (Expr::Col(i), Expr::Lit(v)) => {
                    if let Some(p) = to_prune(*op) {
                        out.push((*i, p, v.clone()));
                    }
                }
                (Expr::Lit(v), Expr::Col(i)) => {
                    if let Some(p) = to_prune(flip(*op)) {
                        out.push((*i, p, v.clone()));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

impl RowOperator for RowScan {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        loop {
            if self.current.is_none() {
                if self.group_pos >= self.groups.len() {
                    return Ok(None);
                }
                let g = self.groups[self.group_pos];
                self.group_pos += 1;
                let guard = self.storage.read();
                let n = guard.group(g).n_rows;
                let cols: Vec<NullableColumn> = self
                    .projection
                    .iter()
                    .map(|&c| guard.read_column(g, c))
                    .collect::<Result<_>>()?;
                self.current = Some((cols, n, 0));
            }
            let (cols, len, off) = self.current.as_mut().unwrap();
            if *off >= *len {
                self.current = None;
                continue;
            }
            let i = *off;
            *off += 1;
            // The tuple-at-a-time cost: one boxed Value per column per row.
            let row: Vec<Value> = cols
                .iter()
                .zip(self.out_schema.fields())
                .map(|(c, f)| c.get_value(i, f.ty))
                .collect();
            if let Some(f) = &self.filter {
                if f.eval_row(&row)? != Value::Bool(true) {
                    continue;
                }
            }
            return Ok(Some(row));
        }
    }
}

// ----------------------------------------------------------- filter/project

struct RowFilter {
    input: BoxedRowOperator,
    predicate: Expr,
    schema: Schema,
}

impl RowOperator for RowFilter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        while let Some(row) = self.input.next()? {
            if self.predicate.eval_row(&row)? == Value::Bool(true) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct RowProject {
    input: BoxedRowOperator,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl RowOperator for RowProject {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        match self.input.next()? {
            Some(row) => {
                let out: Result<Vec<Value>> = self.exprs.iter().map(|e| e.eval_row(&row)).collect();
                Ok(Some(out?))
            }
            None => Ok(None),
        }
    }
}

// --------------------------------------------------------------------- join

struct RowHashJoin {
    left: BoxedRowOperator,
    right: Option<BoxedRowOperator>,
    kind: JoinKind,
    on: Vec<(usize, usize)>,
    residual: Option<Expr>,
    schema: Schema,
    right_width: usize,
    table: Option<FxHashMap<Vec<Value>, Vec<Vec<Value>>>>,
    /// Pending output rows from the current probe tuple.
    pending: Vec<Vec<Value>>,
}

impl RowHashJoin {
    fn new(
        left: BoxedRowOperator,
        right: BoxedRowOperator,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
        schema: Schema,
    ) -> RowHashJoin {
        let right_width = right.schema().len();
        RowHashJoin {
            left,
            right: Some(right),
            kind,
            on,
            residual,
            schema,
            right_width,
            table: None,
            pending: Vec::new(),
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut right = self.right.take().unwrap();
        let mut table: FxHashMap<Vec<Value>, Vec<Vec<Value>>> = FxHashMap::default();
        while let Some(row) = right.next()? {
            // Normalized keys: -0.0 and 0.0 (SQL-equal) must hash together.
            let key: Vec<Value> = self
                .on
                .iter()
                .map(|&(_, rc)| row[rc].normalize_key())
                .collect();
            if key.iter().any(|v| v.is_null()) {
                continue; // NULL keys never join
            }
            table.entry(key).or_default().push(row);
        }
        self.table = Some(table);
        Ok(())
    }
}

impl RowOperator for RowHashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        if self.table.is_none() {
            self.build()?;
        }
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(probe) = self.left.next()? else {
                return Ok(None);
            };
            let key: Vec<Value> = self
                .on
                .iter()
                .map(|&(lc, _)| probe[lc].normalize_key())
                .collect();
            let matches: Vec<&Vec<Value>> = if key.iter().any(|v| v.is_null()) {
                vec![]
            } else {
                self.table
                    .as_ref()
                    .unwrap()
                    .get(&key)
                    .map(|v| v.iter().collect())
                    .unwrap_or_default()
            };
            // residual check per candidate pair
            let mut survivors: Vec<&Vec<Value>> = Vec::new();
            for m in matches {
                if let Some(res) = &self.residual {
                    let mut combined = probe.clone();
                    combined.extend(m.iter().cloned());
                    if res.eval_row(&combined)? != Value::Bool(true) {
                        continue;
                    }
                }
                survivors.push(m);
            }
            match self.kind {
                JoinKind::Inner => {
                    for m in survivors {
                        let mut out = probe.clone();
                        out.extend(m.iter().cloned());
                        self.pending.push(out);
                    }
                }
                JoinKind::Left => {
                    if survivors.is_empty() {
                        let mut out = probe.clone();
                        out.extend(std::iter::repeat_n(Value::Null, self.right_width));
                        self.pending.push(out);
                    } else {
                        for m in survivors {
                            let mut out = probe.clone();
                            out.extend(m.iter().cloned());
                            self.pending.push(out);
                        }
                    }
                }
                JoinKind::Semi => {
                    if !survivors.is_empty() {
                        self.pending.push(probe);
                    }
                }
                JoinKind::Anti => {
                    if survivors.is_empty() {
                        self.pending.push(probe);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- aggregate

#[derive(Clone)]
enum RState {
    Count(i64),
    SumI(i64, bool),
    SumF(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
}

struct RowAggregate {
    input: Option<BoxedRowOperator>,
    group_by: Vec<usize>,
    aggs: Vec<AggExpr>,
    phase: AggPhase,
    schema: Schema,
    hidden_in: Vec<(usize, usize)>,
    output: Vec<Vec<Value>>,
    done: bool,
    in_schema: Schema,
}

impl RowAggregate {
    fn new(
        input: BoxedRowOperator,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        phase: AggPhase,
        schema: Schema,
    ) -> RowAggregate {
        let hidden_in = if phase == AggPhase::Final {
            partial_avg_count_columns(group_by.len(), &aggs)
        } else {
            Vec::new()
        };
        let in_schema = input.schema().clone();
        RowAggregate {
            input: Some(input),
            group_by,
            aggs,
            phase,
            schema,
            hidden_in,
            output: Vec::new(),
            done: false,
            in_schema,
        }
    }

    fn new_state(&self, a: &AggExpr) -> Result<RState> {
        Ok(match a.func {
            AggFunc::CountStar | AggFunc::Count => RState::Count(0),
            AggFunc::Sum => {
                let ty = a
                    .arg
                    .as_ref()
                    .ok_or_else(|| VwError::Exec("SUM needs arg".into()))?
                    .data_type(&self.in_schema)?;
                if ty == vw_common::DataType::F64 {
                    RState::SumF(0.0, false)
                } else {
                    RState::SumI(0, false)
                }
            }
            AggFunc::Min => RState::Min(None),
            AggFunc::Max => RState::Max(None),
            AggFunc::Avg => RState::Avg(0.0, 0),
        })
    }

    fn run(&mut self) -> Result<()> {
        let mut input = self.input.take().unwrap();
        let mut groups: HashMap<Vec<Value>, Vec<RState>> = HashMap::new();
        while let Some(row) = input.next()? {
            // Group on normalized keys for parity with the vectorized
            // engine: fold -0.0 into the 0.0 group, canonicalize NaN.
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|&g| row[g].normalize_key())
                .collect();
            if !groups.contains_key(&key) {
                let states: Result<Vec<RState>> =
                    self.aggs.iter().map(|a| self.new_state(a)).collect();
                groups.insert(key.clone(), states?);
            }
            let states = groups.get_mut(&key).unwrap();
            for (k, (a, st)) in self.aggs.iter().zip(states.iter_mut()).enumerate() {
                let v = a.arg.as_ref().map(|e| e.eval_row(&row)).transpose()?;
                if self.phase == AggPhase::Final {
                    let hidden = self
                        .hidden_in
                        .iter()
                        .find(|(ai, _)| *ai == k)
                        .map(|(_, col)| row[*col].clone());
                    combine_final(st, v.unwrap_or(Value::Null), hidden)?;
                } else {
                    update_state(st, a.func, v)?;
                }
            }
        }
        if groups.is_empty() && self.group_by.is_empty() {
            let states: Result<Vec<RState>> = self.aggs.iter().map(|a| self.new_state(a)).collect();
            groups.insert(vec![], states?);
        }
        for (key, states) in groups {
            let mut row = key;
            for st in &states {
                row.push(finish_state(st, self.phase));
            }
            if self.phase == AggPhase::Partial {
                for (k, a) in self.aggs.iter().enumerate() {
                    if a.func == AggFunc::Avg {
                        if let RState::Avg(_, c) = &states[k] {
                            row.push(Value::I64(*c));
                        }
                    }
                }
            }
            self.output.push(row);
        }
        Ok(())
    }
}

fn update_state(st: &mut RState, func: AggFunc, v: Option<Value>) -> Result<()> {
    match st {
        RState::Count(n) => match func {
            AggFunc::CountStar => *n += 1,
            _ => {
                if v.as_ref().is_some_and(|x| !x.is_null()) {
                    *n += 1;
                }
            }
        },
        RState::SumI(sum, seen) => {
            if let Some(x) = v {
                if !x.is_null() {
                    *sum = sum.wrapping_add(
                        x.as_i64()
                            .ok_or_else(|| VwError::Exec("SUM on non-int".into()))?,
                    );
                    *seen = true;
                }
            }
        }
        RState::SumF(sum, seen) => {
            if let Some(x) = v {
                if !x.is_null() {
                    *sum += x
                        .as_f64()
                        .ok_or_else(|| VwError::Exec("SUM on non-num".into()))?;
                    *seen = true;
                }
            }
        }
        RState::Min(cur) => {
            if let Some(x) = v {
                if !x.is_null() && cur.as_ref().is_none_or(|c| x.total_cmp(c).is_lt()) {
                    *cur = Some(x);
                }
            }
        }
        RState::Max(cur) => {
            if let Some(x) = v {
                if !x.is_null() && cur.as_ref().is_none_or(|c| x.total_cmp(c).is_gt()) {
                    *cur = Some(x);
                }
            }
        }
        RState::Avg(sum, count) => {
            if let Some(x) = v {
                if !x.is_null() {
                    *sum += x
                        .as_f64()
                        .ok_or_else(|| VwError::Exec("AVG on non-num".into()))?;
                    *count += 1;
                }
            }
        }
    }
    Ok(())
}

fn combine_final(st: &mut RState, v: Value, hidden: Option<Value>) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    match st {
        RState::Count(n) => *n += v.as_i64().unwrap_or(0),
        RState::SumI(sum, seen) => {
            *sum = sum.wrapping_add(v.as_i64().unwrap_or(0));
            *seen = true;
        }
        RState::SumF(sum, seen) => {
            *sum += v.as_f64().unwrap_or(0.0);
            *seen = true;
        }
        RState::Min(cur) => {
            if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                *cur = Some(v);
            }
        }
        RState::Max(cur) => {
            if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                *cur = Some(v);
            }
        }
        RState::Avg(sum, count) => {
            *sum += v.as_f64().unwrap_or(0.0);
            *count += hidden
                .and_then(|h| h.as_i64())
                .ok_or_else(|| VwError::Exec("AVG final needs count".into()))?;
        }
    }
    Ok(())
}

fn finish_state(st: &RState, phase: AggPhase) -> Value {
    match st {
        RState::Count(n) => Value::I64(*n),
        RState::SumI(s, seen) => {
            if *seen {
                Value::I64(*s)
            } else {
                Value::Null
            }
        }
        RState::SumF(s, seen) => {
            if *seen {
                Value::F64(*s)
            } else {
                Value::Null
            }
        }
        RState::Min(v) | RState::Max(v) => v.clone().unwrap_or(Value::Null),
        RState::Avg(s, c) => {
            if *c == 0 {
                Value::Null
            } else if phase == AggPhase::Partial {
                Value::F64(*s)
            } else {
                Value::F64(*s / *c as f64)
            }
        }
    }
}

impl RowOperator for RowAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        if !self.done {
            self.run()?;
            self.done = true;
            self.output.reverse();
        }
        Ok(self.output.pop())
    }
}

// -------------------------------------------------------------- sort/limit

struct RowSort {
    input: Option<BoxedRowOperator>,
    keys: Vec<SortKey>,
    schema: Schema,
    sorted: Vec<Vec<Value>>,
    done: bool,
}

impl RowOperator for RowSort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        if !self.done {
            let mut input = self.input.take().unwrap();
            let mut rows = collect_row_engine(input.as_mut())?;
            let keys = self.keys.clone();
            rows.sort_by(|a, b| {
                for k in &keys {
                    // NULL placement is absolute (NULLS FIRST/LAST), not
                    // flipped by DESC — only non-NULL values reverse.
                    let ord = match (a[k.col].is_null(), b[k.col].is_null()) {
                        (true, true) => std::cmp::Ordering::Equal,
                        (true, false) if k.nulls_first => std::cmp::Ordering::Less,
                        (true, false) => std::cmp::Ordering::Greater,
                        (false, true) if k.nulls_first => std::cmp::Ordering::Greater,
                        (false, true) => std::cmp::Ordering::Less,
                        (false, false) => {
                            let o = a[k.col].total_cmp(&b[k.col]);
                            if k.asc {
                                o
                            } else {
                                o.reverse()
                            }
                        }
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows.reverse();
            self.sorted = rows;
            self.done = true;
        }
        Ok(self.sorted.pop())
    }
}

struct RowLimit {
    input: BoxedRowOperator,
    schema: Schema,
    to_skip: u64,
    remaining: u64,
}

impl RowOperator for RowLimit {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Vec<Value>>> {
        while self.to_skip > 0 {
            if self.input.next()?.is_none() {
                return Ok(None);
            }
            self.to_skip -= 1;
        }
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{DataType, Field};
    use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

    fn setup(n: usize) -> (RowCtx, TableId, Schema) {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("q", DataType::I64),
            Field::nullable("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::with_group_size(schema.clone(), disk, 64);
        for i in 0..n {
            b.push_row(vec![
                Value::I64(i as i64),
                Value::I64((i % 5) as i64),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("t{}", i % 2))
                },
            ])
            .unwrap();
        }
        let storage = b.finish().unwrap();
        let tid = TableId::new(1);
        let mut ctx = RowCtx::new();
        ctx.insert(tid, Arc::new(RwLock::new(storage)));
        (ctx, tid, schema)
    }

    fn scan(tid: TableId, schema: &Schema) -> LogicalPlan {
        LogicalPlan::scan("t", tid, schema.clone())
    }

    #[test]
    fn scan_filter_project() {
        use vw_plan::BinOp;
        let (ctx, tid, schema) = setup(100);
        let plan = scan(tid, &schema)
            .filter(Expr::binary(
                BinOp::Lt,
                Expr::col(0),
                Expr::lit(Value::I64(10)),
            ))
            .project(vec![(
                Expr::binary(BinOp::Mul, Expr::col(0), Expr::lit(Value::I64(3))),
                "k3",
            )]);
        let mut op = compile_row(&plan, &ctx).unwrap();
        let rows = collect_row_engine(op.as_mut()).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[9], vec![Value::I64(27)]);
    }

    #[test]
    fn aggregate_group() {
        let (ctx, tid, schema) = setup(100);
        let plan = scan(tid, &schema).aggregate(
            vec![1],
            vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(0)),
                    name: "s".into(),
                },
            ],
        );
        let mut op = compile_row(&plan, &ctx).unwrap();
        let mut rows = collect_row_engine(op.as_mut()).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][1], Value::I64(20));
        let total: i64 = rows.iter().map(|r| r[2].as_i64().unwrap()).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn f64_group_keys_normalized_like_vectorized_engine() {
        // Same edge case as the vectorized HashAggregate test: ±0.0 is one
        // group (emitted as +0.0), NaN payloads are one group.
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let schema = Schema::new(vec![Field::new("f", DataType::F64)]);
        let mut b = TableBuilder::with_group_size(schema.clone(), disk, 64);
        for v in [
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_0001),
            1.0,
        ] {
            b.push_row(vec![Value::F64(v)]).unwrap();
        }
        let storage = b.finish().unwrap();
        let tid = TableId::new(1);
        let mut ctx = RowCtx::new();
        ctx.insert(tid, Arc::new(RwLock::new(storage)));
        let plan = scan(tid, &schema).aggregate(
            vec![0],
            vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            }],
        );
        let mut op = compile_row(&plan, &ctx).unwrap();
        let mut rows = collect_row_engine(op.as_mut()).unwrap();
        rows.sort_by(|a, b| a[1].total_cmp(&b[1]));
        assert_eq!(rows.len(), 3, "expected 3 groups, got {:?}", rows);
        let counts: Vec<Value> = rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(counts, vec![Value::I64(1), Value::I64(2), Value::I64(2)]);
        let zero = rows
            .iter()
            .find(|r| matches!(r[0], Value::F64(f) if f == 0.0))
            .expect("zero group present");
        assert_eq!(zero[0], Value::F64(0.0));
    }

    #[test]
    fn join_kinds() {
        let (ctx, tid, schema) = setup(20);
        // self-join on q == k (matches k in 0..5)
        let plan = scan(tid, &schema).join(scan(tid, &schema), JoinKind::Semi, vec![(0, 1)]);
        let mut op = compile_row(&plan, &ctx).unwrap();
        let rows = collect_row_engine(op.as_mut()).unwrap();
        // left rows whose k appears as some q: k ∈ {0..4}
        assert_eq!(rows.len(), 5);
        let plan = scan(tid, &schema).join(scan(tid, &schema), JoinKind::Anti, vec![(0, 1)]);
        let mut op = compile_row(&plan, &ctx).unwrap();
        assert_eq!(collect_row_engine(op.as_mut()).unwrap().len(), 15);
    }

    #[test]
    fn sort_and_limit() {
        let (ctx, tid, schema) = setup(30);
        let plan = scan(tid, &schema).sort(vec![SortKey::desc(0)]).limit(2, 3);
        let mut op = compile_row(&plan, &ctx).unwrap();
        let rows = collect_row_engine(op.as_mut()).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(27), Value::I64(26), Value::I64(25)]
        );
    }

    #[test]
    fn exchange_unsupported() {
        let (ctx, tid, schema) = setup(5);
        let plan = LogicalPlan::Exchange {
            input: Box::new(scan(tid, &schema)),
            partitions: 2,
        };
        assert!(compile_row(&plan, &ctx).is_err());
    }
}
