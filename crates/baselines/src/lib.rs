//! `vw-baselines` — the two execution models the paper positions
//! vectorized execution against (§I-A):
//!
//! * [`row`] — a **tuple-at-a-time Volcano** engine: one `next()` virtual
//!   call and a full expression-tree interpretation per tuple. This is the
//!   "straightforward implementation … bound to spend most execution time in
//!   interpretation overhead" that Vectorwise claims a >10x win over
//!   (experiment E2), and the stand-in for the pipelined commercial engine
//!   in the TPC-H comparison (E1).
//! * [`materialized`] — a **full-materialization column-at-a-time** engine
//!   in the MonetDB mould: operators consume and produce whole materialized
//!   intermediates. Implemented by composing the vectorized kernels of
//!   `vw-core` with a materialization barrier between every operator, which
//!   reproduces the memory/cache behaviour the paper criticizes (E3) while
//!   sharing kernel code (so the measured difference is the execution
//!   *model*, not incidental implementation quality).
//!
//! Both engines cross-compile the same `vw_plan::LogicalPlan` and scan the
//! same `vw_storage::TableStorage`, so the three-way comparisons isolate the
//! execution model. The baselines read stable storage only (no PDT merge):
//! comparisons run on bulk-loaded, checkpointed tables.

pub mod materialized;
pub mod row;

pub use materialized::compile_materialized;
pub use row::{collect_row_engine, compile_row, RowOperator};
