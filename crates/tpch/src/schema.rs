//! TPC-H table schemas, mapped onto the engine's types: DECIMAL → DOUBLE,
//! fixed/variable CHAR → VARCHAR, DATE → DATE.

use vw_common::{DataType, Field, Schema};

/// Schema of one TPC-H table (by its lowercase standard name).
pub fn tpch_schema(table: &str) -> Option<Schema> {
    use DataType::*;
    let fields: Vec<Field> = match table {
        "region" => vec![
            Field::new("r_regionkey", I64),
            Field::new("r_name", Str),
            Field::new("r_comment", Str),
        ],
        "nation" => vec![
            Field::new("n_nationkey", I64),
            Field::new("n_name", Str),
            Field::new("n_regionkey", I64),
            Field::new("n_comment", Str),
        ],
        "supplier" => vec![
            Field::new("s_suppkey", I64),
            Field::new("s_name", Str),
            Field::new("s_address", Str),
            Field::new("s_nationkey", I64),
            Field::new("s_phone", Str),
            Field::new("s_acctbal", F64),
            Field::new("s_comment", Str),
        ],
        "part" => vec![
            Field::new("p_partkey", I64),
            Field::new("p_name", Str),
            Field::new("p_mfgr", Str),
            Field::new("p_brand", Str),
            Field::new("p_type", Str),
            Field::new("p_size", I64),
            Field::new("p_container", Str),
            Field::new("p_retailprice", F64),
            Field::new("p_comment", Str),
        ],
        "partsupp" => vec![
            Field::new("ps_partkey", I64),
            Field::new("ps_suppkey", I64),
            Field::new("ps_availqty", I64),
            Field::new("ps_supplycost", F64),
            Field::new("ps_comment", Str),
        ],
        "customer" => vec![
            Field::new("c_custkey", I64),
            Field::new("c_name", Str),
            Field::new("c_address", Str),
            Field::new("c_nationkey", I64),
            Field::new("c_phone", Str),
            Field::new("c_acctbal", F64),
            Field::new("c_mktsegment", Str),
            Field::new("c_comment", Str),
        ],
        "orders" => vec![
            Field::new("o_orderkey", I64),
            Field::new("o_custkey", I64),
            Field::new("o_orderstatus", Str),
            Field::new("o_totalprice", F64),
            Field::new("o_orderdate", Date),
            Field::new("o_orderpriority", Str),
            Field::new("o_clerk", Str),
            Field::new("o_shippriority", I64),
            Field::new("o_comment", Str),
        ],
        "lineitem" => vec![
            Field::new("l_orderkey", I64),
            Field::new("l_partkey", I64),
            Field::new("l_suppkey", I64),
            Field::new("l_linenumber", I64),
            Field::new("l_quantity", F64),
            Field::new("l_extendedprice", F64),
            Field::new("l_discount", F64),
            Field::new("l_tax", F64),
            Field::new("l_returnflag", Str),
            Field::new("l_linestatus", Str),
            Field::new("l_shipdate", Date),
            Field::new("l_commitdate", Date),
            Field::new("l_receiptdate", Date),
            Field::new("l_shipinstruct", Str),
            Field::new("l_shipmode", Str),
            Field::new("l_comment", Str),
        ],
        _ => return None,
    };
    Some(Schema::new(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_tables_have_schemas() {
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            let s = tpch_schema(t).unwrap();
            assert!(!s.is_empty(), "{}", t);
            s.check_unique_names().unwrap();
        }
        assert!(tpch_schema("nosuch").is_none());
    }

    #[test]
    fn lineitem_has_16_columns_like_the_spec() {
        assert_eq!(tpch_schema("lineitem").unwrap().len(), 16);
        assert_eq!(tpch_schema("orders").unwrap().len(), 9);
        assert_eq!(tpch_schema("part").unwrap().len(), 9);
    }
}
