//! The 22 TPC-H queries as logical-plan builders (standard parameter
//! defaults).
//!
//! Queries are built against a [`TpchCatalog`] that maps table names to the
//! `(TableId, Schema)` pairs of a concrete database. A small name-tracking
//! wrapper ([`P`]) threads column names through the algebra so the plans are
//! written by name, never by brittle positional index.
//!
//! SQL features the dialect lacks are expressed the way optimizers
//! decorrelate them anyway:
//!
//! * correlated scalar subqueries (Q2, Q17, Q20) → per-key aggregate + join,
//! * uncorrelated scalar subqueries (Q11, Q15, Q22) → single-row aggregate
//!   joined on a constant key,
//! * `EXISTS`/`NOT EXISTS` (Q4, Q21, Q22) → semi/anti joins (with residual
//!   predicates for the correlated inequality in Q21),
//! * `COUNT(DISTINCT x)` (Q16) → nested aggregation.

use std::collections::HashMap;
use vw_common::date::parse_date;
use vw_common::{Result, Schema, TableId, Value, VwError};
use vw_plan::{AggExpr, AggFunc, BinOp, DatePart, Expr, JoinKind, LogicalPlan, SortKey};

/// Table name → (id, schema) mapping for a loaded TPC-H database.
#[derive(Debug, Clone)]
pub struct TpchCatalog {
    tables: HashMap<String, (TableId, Schema)>,
}

impl TpchCatalog {
    /// Build from a resolver (e.g. `vw_core::Database`'s catalog view).
    pub fn new(resolve: impl Fn(&str) -> Option<(TableId, Schema)>) -> Result<TpchCatalog> {
        let mut tables = HashMap::new();
        for t in crate::gen::TPCH_TABLES {
            let entry = resolve(t)
                .ok_or_else(|| VwError::Catalog(format!("TPC-H table '{}' missing", t)))?;
            tables.insert(t.to_string(), entry);
        }
        Ok(TpchCatalog { tables })
    }

    fn get(&self, t: &str) -> &(TableId, Schema) {
        self.tables
            .get(t)
            .unwrap_or_else(|| panic!("unknown TPC-H table {}", t))
    }
}

/// All 22 queries, in order, as `(query number, plan)`.
pub fn all_queries(cat: &TpchCatalog) -> Vec<(u8, LogicalPlan)> {
    vec![
        (1, q1(cat)),
        (2, q2(cat)),
        (3, q3(cat)),
        (4, q4(cat)),
        (5, q5(cat)),
        (6, q6(cat)),
        (7, q7(cat)),
        (8, q8(cat)),
        (9, q9(cat)),
        (10, q10(cat)),
        (11, q11(cat)),
        (12, q12(cat)),
        (13, q13(cat)),
        (14, q14(cat)),
        (15, q15(cat)),
        (16, q16(cat)),
        (17, q17(cat)),
        (18, q18(cat, 300.0)),
        (19, q19(cat)),
        (20, q20(cat)),
        (21, q21(cat)),
        (22, q22(cat)),
    ]
}

// ------------------------------------------------------- plan builder by name

/// A plan fragment with tracked column names.
#[derive(Debug, Clone)]
struct P {
    plan: LogicalPlan,
    cols: Vec<String>,
}

fn d(s: &str) -> Value {
    Value::Date(parse_date(s).expect("bad date literal"))
}

fn lit_f(x: f64) -> Expr {
    Expr::lit(Value::F64(x))
}

fn lit_i(x: i64) -> Expr {
    Expr::lit(Value::I64(x))
}

fn lit_s(s: &str) -> Expr {
    Expr::lit(Value::Str(s.to_string()))
}

impl P {
    fn scan(cat: &TpchCatalog, table: &str) -> P {
        let (id, schema) = cat.get(table).clone();
        let cols = schema.fields().iter().map(|f| f.name.clone()).collect();
        P {
            plan: LogicalPlan::scan(table, id, schema),
            cols,
        }
    }

    /// Column index by name.
    fn c(&self, name: &str) -> usize {
        self.cols
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column '{}' in {:?}", name, self.cols))
    }

    /// Column reference by name.
    fn col(&self, name: &str) -> Expr {
        Expr::col(self.c(name))
    }

    fn filter(self, predicate: Expr) -> P {
        P {
            plan: self.plan.filter(predicate),
            cols: self.cols,
        }
    }

    /// Inner/left/semi/anti join by named keys (+ optional residual built
    /// from the combined columns).
    #[allow(clippy::type_complexity)]
    fn join_on(
        self,
        right: P,
        kind: JoinKind,
        keys: &[(&str, &str)],
        residual: Option<Box<dyn Fn(&P) -> Expr>>,
    ) -> P {
        let on: Vec<(usize, usize)> = keys.iter().map(|(l, r)| (self.c(l), right.c(r))).collect();
        let mut combined_cols = self.cols.clone();
        combined_cols.extend(right.cols.iter().cloned());
        let combined_view = P {
            plan: self.plan.clone(), // placeholder: only cols are used
            cols: combined_cols.clone(),
        };
        let residual = residual.map(|f| f(&combined_view));
        let out_cols = match kind {
            JoinKind::Semi | JoinKind::Anti => self.cols.clone(),
            _ => combined_cols,
        };
        P {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                kind,
                on,
                residual,
            },
            cols: out_cols,
        }
    }

    fn join(self, right: P, keys: &[(&str, &str)]) -> P {
        self.join_on(right, JoinKind::Inner, keys, None)
    }

    /// Project named expressions (borrows so items may reference `self`).
    fn select(&self, items: Vec<(Expr, &str)>) -> P {
        let cols = items.iter().map(|(_, n)| n.to_string()).collect();
        P {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan.clone()),
                exprs: items.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
            },
            cols,
        }
    }

    /// Group by named columns with aggregates `(func, arg, output name)`.
    fn agg(&self, group: &[&str], aggs: Vec<(AggFunc, Option<Expr>, &str)>) -> P {
        let group_by: Vec<usize> = group.iter().map(|g| self.c(g)).collect();
        let mut cols: Vec<String> = group.iter().map(|g| g.to_string()).collect();
        let agg_exprs: Vec<AggExpr> = aggs
            .into_iter()
            .map(|(func, arg, name)| {
                cols.push(name.to_string());
                AggExpr {
                    func,
                    arg,
                    name: name.to_string(),
                }
            })
            .collect();
        P {
            plan: self.plan.clone().aggregate(group_by, agg_exprs),
            cols,
        }
    }

    fn sort(self, keys: &[(&str, bool)]) -> P {
        let sort_keys: Vec<SortKey> = keys
            .iter()
            .map(|(name, asc)| SortKey::new(self.c(name), *asc))
            .collect();
        P {
            plan: self.plan.sort(sort_keys),
            cols: self.cols,
        }
    }

    fn limit(self, n: u64) -> P {
        P {
            plan: self.plan.limit(0, n),
            cols: self.cols,
        }
    }

    /// Join this (left) with a single-row aggregate (right) on a constant
    /// key — the decorrelated form of an uncorrelated scalar subquery.
    fn cross_one(self, right: P) -> P {
        let left = self.select_with_extra("__kl");
        let right = right.select_with_extra("__kr");
        left.join(right, &[("__kl", "__kr")])
    }

    fn select_with_extra(self, key_name: &str) -> P {
        let mut items: Vec<(Expr, String)> = self
            .cols
            .iter()
            .enumerate()
            .map(|(i, n)| (Expr::col(i), n.clone()))
            .collect();
        items.push((lit_i(1), key_name.to_string()));
        let cols = items.iter().map(|(_, n)| n.clone()).collect();
        P {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs: items,
            },
            cols,
        }
    }
}

fn between(e: Expr, lo: Expr, hi: Expr) -> Expr {
    Expr::and(
        Expr::binary(BinOp::Ge, e.clone(), lo),
        Expr::binary(BinOp::Le, e, hi),
    )
}

fn ge_lt(e: Expr, lo: Expr, hi: Expr) -> Expr {
    Expr::and(
        Expr::binary(BinOp::Ge, e.clone(), lo),
        Expr::binary(BinOp::Lt, e, hi),
    )
}

fn like(e: Expr, pattern: &str) -> Expr {
    Expr::Like {
        e: Box::new(e),
        pattern: pattern.to_string(),
        negated: false,
    }
}

fn not_like(e: Expr, pattern: &str) -> Expr {
    Expr::Like {
        e: Box::new(e),
        pattern: pattern.to_string(),
        negated: true,
    }
}

fn year(e: Expr) -> Expr {
    Expr::Extract {
        part: DatePart::Year,
        e: Box::new(e),
    }
}

/// `l_extendedprice * (1 - l_discount)` over a fragment with lineitem cols.
fn disc_price(p: &P) -> Expr {
    Expr::binary(
        BinOp::Mul,
        p.col("l_extendedprice"),
        Expr::binary(BinOp::Sub, lit_f(1.0), p.col("l_discount")),
    )
}

// ------------------------------------------------------------------ queries

/// Q1: pricing summary report.
pub fn q1(cat: &TpchCatalog) -> LogicalPlan {
    let li = P::scan(cat, "lineitem");
    let pred = Expr::binary(BinOp::Le, li.col("l_shipdate"), Expr::lit(d("1998-09-02")));
    let li = li.filter(pred);
    let charge = Expr::binary(
        BinOp::Mul,
        disc_price(&li),
        Expr::binary(BinOp::Add, lit_f(1.0), li.col("l_tax")),
    );
    let dp = disc_price(&li);
    let li = li.clone().agg(
        &["l_returnflag", "l_linestatus"],
        vec![
            (AggFunc::Sum, Some(li.col("l_quantity")), "sum_qty"),
            (
                AggFunc::Sum,
                Some(li.col("l_extendedprice")),
                "sum_base_price",
            ),
            (AggFunc::Sum, Some(dp), "sum_disc_price"),
            (AggFunc::Sum, Some(charge), "sum_charge"),
            (AggFunc::Avg, Some(li.col("l_quantity")), "avg_qty"),
            (AggFunc::Avg, Some(li.col("l_extendedprice")), "avg_price"),
            (AggFunc::Avg, Some(li.col("l_discount")), "avg_disc"),
            (AggFunc::CountStar, None, "count_order"),
        ],
    );
    li.sort(&[("l_returnflag", true), ("l_linestatus", true)])
        .plan
}

/// Q2: minimum-cost supplier (correlated scalar subquery → min-agg + join).
pub fn q2(cat: &TpchCatalog) -> LogicalPlan {
    // Europe suppliers with costs per part.
    let europe_ps = || {
        P::scan(cat, "partsupp")
            .join(P::scan(cat, "supplier"), &[("ps_suppkey", "s_suppkey")])
            .join(P::scan(cat, "nation"), &[("s_nationkey", "n_nationkey")])
            .join(
                P::scan(cat, "region").filter(Expr::eq(
                    Expr::col(1), // r_name
                    lit_s("EUROPE"),
                )),
                &[("n_regionkey", "r_regionkey")],
            )
    };
    let joined2 = {
        let j = {
            let mut j = europe_ps()
                .join(
                    P::scan(cat, "part").filter(Expr::and(
                        Expr::eq(Expr::col(5), lit_i(15)),
                        like(Expr::col(4), "%BRASS"),
                    )),
                    &[("ps_partkey", "p_partkey")],
                )
                .join(
                    {
                        let eps = europe_ps();
                        let sc = eps.col("ps_supplycost");
                        let mc =
                            eps.agg(&["ps_partkey"], vec![(AggFunc::Min, Some(sc), "min_cost")]);
                        P {
                            plan: mc.plan,
                            cols: vec!["mc_partkey".into(), "min_cost".into()],
                        }
                    },
                    &[("ps_partkey", "mc_partkey")],
                );
            let pred = Expr::eq(j.col("ps_supplycost"), j.col("min_cost"));
            j = j.filter(pred);
            j
        };
        j.select(vec![
            (j.col("s_acctbal"), "s_acctbal"),
            (j.col("s_name"), "s_name"),
            (j.col("n_name"), "n_name"),
            (j.col("p_partkey"), "p_partkey"),
            (j.col("p_mfgr"), "p_mfgr"),
            (j.col("s_address"), "s_address"),
            (j.col("s_phone"), "s_phone"),
            (j.col("s_comment"), "s_comment"),
        ])
    };
    joined2
        .sort(&[
            ("s_acctbal", false),
            ("n_name", true),
            ("s_name", true),
            ("p_partkey", true),
        ])
        .limit(100)
        .plan
}

/// Q3: shipping priority.
pub fn q3(cat: &TpchCatalog) -> LogicalPlan {
    let cust = P::scan(cat, "customer");
    let seg = Expr::eq(cust.col("c_mktsegment"), lit_s("BUILDING"));
    let cust = cust.filter(seg);
    let orders = P::scan(cat, "orders");
    let od = Expr::binary(
        BinOp::Lt,
        orders.col("o_orderdate"),
        Expr::lit(d("1995-03-15")),
    );
    let orders = orders.filter(od);
    let li = P::scan(cat, "lineitem");
    let sd = Expr::binary(BinOp::Gt, li.col("l_shipdate"), Expr::lit(d("1995-03-15")));
    let li = li.filter(sd);
    let j = li
        .join(orders, &[("l_orderkey", "o_orderkey")])
        .join(cust, &[("o_custkey", "c_custkey")]);
    let dp = disc_price(&j);
    let g = j.clone().agg(
        &["l_orderkey", "o_orderdate", "o_shippriority"],
        vec![(AggFunc::Sum, Some(dp), "revenue")],
    );
    g.sort(&[("revenue", false), ("o_orderdate", true)])
        .limit(10)
        .plan
}

/// Q4: order priority checking (EXISTS → semi join).
pub fn q4(cat: &TpchCatalog) -> LogicalPlan {
    let orders = P::scan(cat, "orders");
    let od = ge_lt(
        orders.col("o_orderdate"),
        Expr::lit(d("1993-07-01")),
        Expr::lit(d("1993-10-01")),
    );
    let orders = orders.filter(od);
    let li = P::scan(cat, "lineitem");
    let late = Expr::binary(BinOp::Lt, li.col("l_commitdate"), li.col("l_receiptdate"));
    let li = li.filter(late);
    let semi = orders.join_on(li, JoinKind::Semi, &[("o_orderkey", "l_orderkey")], None);
    semi.agg(
        &["o_orderpriority"],
        vec![(AggFunc::CountStar, None, "order_count")],
    )
    .sort(&[("o_orderpriority", true)])
    .plan
}

/// Q5: local supplier volume.
pub fn q5(cat: &TpchCatalog) -> LogicalPlan {
    let orders = P::scan(cat, "orders");
    let od = ge_lt(
        orders.col("o_orderdate"),
        Expr::lit(d("1994-01-01")),
        Expr::lit(d("1995-01-01")),
    );
    let orders = orders.filter(od);
    let region = P::scan(cat, "region");
    let rn = Expr::eq(region.col("r_name"), lit_s("ASIA"));
    let region = region.filter(rn);
    let j = P::scan(cat, "lineitem")
        .join(orders, &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "customer"), &[("o_custkey", "c_custkey")])
        .join(P::scan(cat, "supplier"), &[("l_suppkey", "s_suppkey")]);
    // local supplier: customer and supplier in the same nation
    let same_nation = Expr::eq(j.col("c_nationkey"), j.col("s_nationkey"));
    let j = j
        .filter(same_nation)
        .join(P::scan(cat, "nation"), &[("s_nationkey", "n_nationkey")])
        .join(region, &[("n_regionkey", "r_regionkey")]);
    let dp = disc_price(&j);
    j.clone()
        .agg(&["n_name"], vec![(AggFunc::Sum, Some(dp), "revenue")])
        .sort(&[("revenue", false)])
        .plan
}

/// Q6: revenue change forecast.
pub fn q6(cat: &TpchCatalog) -> LogicalPlan {
    let li = P::scan(cat, "lineitem");
    let pred = Expr::and(
        Expr::and(
            ge_lt(
                li.col("l_shipdate"),
                Expr::lit(d("1994-01-01")),
                Expr::lit(d("1995-01-01")),
            ),
            between(li.col("l_discount"), lit_f(0.05), lit_f(0.07)),
        ),
        Expr::binary(BinOp::Lt, li.col("l_quantity"), lit_f(24.0)),
    );
    let li = li.filter(pred);
    let rev = Expr::binary(BinOp::Mul, li.col("l_extendedprice"), li.col("l_discount"));
    li.agg(&[], vec![(AggFunc::Sum, Some(rev), "revenue")]).plan
}

/// Q7: volume shipping between two nations.
pub fn q7(cat: &TpchCatalog) -> LogicalPlan {
    let n1 = P {
        plan: P::scan(cat, "nation").plan,
        cols: vec![
            "n1_nationkey".into(),
            "n1_name".into(),
            "n1_regionkey".into(),
            "n1_comment".into(),
        ],
    };
    let n2 = P {
        plan: P::scan(cat, "nation").plan,
        cols: vec![
            "n2_nationkey".into(),
            "n2_name".into(),
            "n2_regionkey".into(),
            "n2_comment".into(),
        ],
    };
    let li = P::scan(cat, "lineitem");
    let sd = between(
        li.col("l_shipdate"),
        Expr::lit(d("1995-01-01")),
        Expr::lit(d("1996-12-31")),
    );
    let li = li.filter(sd);
    let j = li
        .join(P::scan(cat, "orders"), &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "customer"), &[("o_custkey", "c_custkey")])
        .join(P::scan(cat, "supplier"), &[("l_suppkey", "s_suppkey")])
        .join(n1, &[("s_nationkey", "n1_nationkey")])
        .join(n2, &[("c_nationkey", "n2_nationkey")]);
    let pair = Expr::or(
        Expr::and(
            Expr::eq(j.col("n1_name"), lit_s("FRANCE")),
            Expr::eq(j.col("n2_name"), lit_s("GERMANY")),
        ),
        Expr::and(
            Expr::eq(j.col("n1_name"), lit_s("GERMANY")),
            Expr::eq(j.col("n2_name"), lit_s("FRANCE")),
        ),
    );
    let j = j.filter(pair);
    let dp = disc_price(&j);
    let yr = year(j.col("l_shipdate"));
    let sel = j.select(vec![
        (j.col("n1_name"), "supp_nation"),
        (j.col("n2_name"), "cust_nation"),
        (yr, "l_year"),
        (dp, "volume"),
    ]);
    let volume = sel.col("volume");
    sel.agg(
        &["supp_nation", "cust_nation", "l_year"],
        vec![(AggFunc::Sum, Some(volume), "revenue")],
    )
    .sort(&[
        ("supp_nation", true),
        ("cust_nation", true),
        ("l_year", true),
    ])
    .plan
}

/// Q8: national market share.
pub fn q8(cat: &TpchCatalog) -> LogicalPlan {
    let n1 = P {
        plan: P::scan(cat, "nation").plan,
        cols: vec![
            "n1_nationkey".into(),
            "n1_name".into(),
            "n1_regionkey".into(),
            "n1_comment".into(),
        ],
    };
    let n2 = P {
        plan: P::scan(cat, "nation").plan,
        cols: vec![
            "n2_nationkey".into(),
            "n2_name".into(),
            "n2_regionkey".into(),
            "n2_comment".into(),
        ],
    };
    let part = P::scan(cat, "part");
    let pt = Expr::eq(part.col("p_type"), lit_s("ECONOMY ANODIZED STEEL"));
    let part = part.filter(pt);
    let orders = P::scan(cat, "orders");
    let od = between(
        orders.col("o_orderdate"),
        Expr::lit(d("1995-01-01")),
        Expr::lit(d("1996-12-31")),
    );
    let orders = orders.filter(od);
    let region = P::scan(cat, "region");
    let rn = Expr::eq(region.col("r_name"), lit_s("AMERICA"));
    let region = region.filter(rn);
    let j = P::scan(cat, "lineitem")
        .join(part, &[("l_partkey", "p_partkey")])
        .join(orders, &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "customer"), &[("o_custkey", "c_custkey")])
        .join(n1, &[("c_nationkey", "n1_nationkey")])
        .join(region, &[("n1_regionkey", "r_regionkey")])
        .join(P::scan(cat, "supplier"), &[("l_suppkey", "s_suppkey")])
        .join(n2, &[("s_nationkey", "n2_nationkey")]);
    let dp = disc_price(&j);
    let yr = year(j.col("o_orderdate"));
    let brazil_volume = Expr::Case {
        whens: vec![(Expr::eq(j.col("n2_name"), lit_s("BRAZIL")), dp.clone())],
        otherwise: Some(Box::new(lit_f(0.0))),
    };
    let sel = j.select(vec![
        (yr, "o_year"),
        (dp, "volume"),
        (brazil_volume, "brazil_volume"),
    ]);
    let (v, bv) = (sel.col("volume"), sel.col("brazil_volume"));
    let g = sel.agg(
        &["o_year"],
        vec![
            (AggFunc::Sum, Some(bv), "brazil"),
            (AggFunc::Sum, Some(v), "total"),
        ],
    );
    let share = Expr::binary(BinOp::Div, g.col("brazil"), g.col("total"));
    let oy = g.col("o_year");
    g.select(vec![(oy, "o_year"), (share, "mkt_share")])
        .sort(&[("o_year", true)])
        .plan
}

/// Q9: product-type profit measure.
pub fn q9(cat: &TpchCatalog) -> LogicalPlan {
    let part = P::scan(cat, "part");
    let pn = like(part.col("p_name"), "%green%");
    let part = part.filter(pn);
    let j = P::scan(cat, "lineitem")
        .join(part, &[("l_partkey", "p_partkey")])
        .join(P::scan(cat, "supplier"), &[("l_suppkey", "s_suppkey")])
        .join(
            P::scan(cat, "partsupp"),
            &[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
        )
        .join(P::scan(cat, "orders"), &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "nation"), &[("s_nationkey", "n_nationkey")]);
    // amount = extprice*(1-disc) - supplycost*quantity
    let amount = Expr::binary(
        BinOp::Sub,
        disc_price(&j),
        Expr::binary(BinOp::Mul, j.col("ps_supplycost"), j.col("l_quantity")),
    );
    let yr = year(j.col("o_orderdate"));
    let sel = j.select(vec![
        (j.col("n_name"), "nation"),
        (yr, "o_year"),
        (amount, "amount"),
    ]);
    let amt = sel.col("amount");
    sel.agg(
        &["nation", "o_year"],
        vec![(AggFunc::Sum, Some(amt), "sum_profit")],
    )
    .sort(&[("nation", true), ("o_year", false)])
    .plan
}

/// Q10: returned item reporting.
pub fn q10(cat: &TpchCatalog) -> LogicalPlan {
    let orders = P::scan(cat, "orders");
    let od = ge_lt(
        orders.col("o_orderdate"),
        Expr::lit(d("1993-10-01")),
        Expr::lit(d("1994-01-01")),
    );
    let orders = orders.filter(od);
    let li = P::scan(cat, "lineitem");
    let rf = Expr::eq(li.col("l_returnflag"), lit_s("R"));
    let li = li.filter(rf);
    let j = li
        .join(orders, &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "customer"), &[("o_custkey", "c_custkey")])
        .join(P::scan(cat, "nation"), &[("c_nationkey", "n_nationkey")]);
    let dp = disc_price(&j);
    j.clone()
        .agg(
            &[
                "c_custkey",
                "c_name",
                "c_acctbal",
                "c_phone",
                "n_name",
                "c_address",
                "c_comment",
            ],
            vec![(AggFunc::Sum, Some(dp), "revenue")],
        )
        .sort(&[("revenue", false)])
        .limit(20)
        .plan
}

/// Q11: important stock identification (global-total scalar subquery →
/// constant-key join).
pub fn q11(cat: &TpchCatalog) -> LogicalPlan {
    let germany_ps = || {
        let n = P::scan(cat, "nation");
        let g = Expr::eq(n.col("n_name"), lit_s("GERMANY"));
        P::scan(cat, "partsupp")
            .join(P::scan(cat, "supplier"), &[("ps_suppkey", "s_suppkey")])
            .join(n.filter(g), &[("s_nationkey", "n_nationkey")])
    };
    let value_expr = |p: &P| {
        Expr::binary(
            BinOp::Mul,
            p.col("ps_supplycost"),
            Expr::Cast(Box::new(p.col("ps_availqty")), vw_common::DataType::F64),
        )
    };
    let base = germany_ps();
    let ve = value_expr(&base);
    let per_part = base.agg(&["ps_partkey"], vec![(AggFunc::Sum, Some(ve), "value")]);
    let total_base = germany_ps();
    let tve = value_expr(&total_base);
    let total = total_base.agg(&[], vec![(AggFunc::Sum, Some(tve), "total_value")]);
    let j = per_part.cross_one(total);
    let threshold = Expr::binary(BinOp::Mul, j.col("total_value"), lit_f(0.0001));
    let keep = Expr::binary(BinOp::Gt, j.col("value"), threshold);
    let j = j.filter(keep);
    let (pk, v) = (j.col("ps_partkey"), j.col("value"));
    j.select(vec![(pk, "ps_partkey"), (v, "value")])
        .sort(&[("value", false)])
        .plan
}

/// Q12: shipping modes and order priority.
pub fn q12(cat: &TpchCatalog) -> LogicalPlan {
    let li = P::scan(cat, "lineitem");
    let pred = Expr::and(
        Expr::and(
            Expr::InList {
                e: Box::new(li.col("l_shipmode")),
                list: vec![Value::Str("MAIL".into()), Value::Str("SHIP".into())],
                negated: false,
            },
            Expr::and(
                Expr::binary(BinOp::Lt, li.col("l_commitdate"), li.col("l_receiptdate")),
                Expr::binary(BinOp::Lt, li.col("l_shipdate"), li.col("l_commitdate")),
            ),
        ),
        ge_lt(
            li.col("l_receiptdate"),
            Expr::lit(d("1994-01-01")),
            Expr::lit(d("1995-01-01")),
        ),
    );
    let li = li.filter(pred);
    let j = li.join(P::scan(cat, "orders"), &[("l_orderkey", "o_orderkey")]);
    let high = Expr::Case {
        whens: vec![(
            Expr::InList {
                e: Box::new(j.col("o_orderpriority")),
                list: vec![Value::Str("1-URGENT".into()), Value::Str("2-HIGH".into())],
                negated: false,
            },
            lit_i(1),
        )],
        otherwise: Some(Box::new(lit_i(0))),
    };
    let low = Expr::Case {
        whens: vec![(
            Expr::InList {
                e: Box::new(j.col("o_orderpriority")),
                list: vec![Value::Str("1-URGENT".into()), Value::Str("2-HIGH".into())],
                negated: true,
            },
            lit_i(1),
        )],
        otherwise: Some(Box::new(lit_i(0))),
    };
    let sel = j.select(vec![
        (j.col("l_shipmode"), "l_shipmode"),
        (high, "high_line"),
        (low, "low_line"),
    ]);
    let (h, l) = (sel.col("high_line"), sel.col("low_line"));
    sel.agg(
        &["l_shipmode"],
        vec![
            (AggFunc::Sum, Some(h), "high_line_count"),
            (AggFunc::Sum, Some(l), "low_line_count"),
        ],
    )
    .sort(&[("l_shipmode", true)])
    .plan
}

/// Q13: customer distribution (left join + aggregate of aggregate).
pub fn q13(cat: &TpchCatalog) -> LogicalPlan {
    let orders = P::scan(cat, "orders");
    let oc = not_like(orders.col("o_comment"), "%special%requests%");
    let orders = orders.filter(oc);
    let j = P::scan(cat, "customer").join_on(
        orders,
        JoinKind::Left,
        &[("c_custkey", "o_custkey")],
        None,
    );
    let per_cust = {
        let ok = j.col("o_orderkey");
        j.agg(&["c_custkey"], vec![(AggFunc::Count, Some(ok), "c_count")])
    };
    per_cust
        .agg(&["c_count"], vec![(AggFunc::CountStar, None, "custdist")])
        .sort(&[("custdist", false), ("c_count", false)])
        .plan
}

/// Q14: promotion effect.
pub fn q14(cat: &TpchCatalog) -> LogicalPlan {
    let li = P::scan(cat, "lineitem");
    let sd = ge_lt(
        li.col("l_shipdate"),
        Expr::lit(d("1995-09-01")),
        Expr::lit(d("1995-10-01")),
    );
    let li = li.filter(sd);
    let j = li.join(P::scan(cat, "part"), &[("l_partkey", "p_partkey")]);
    let dp = disc_price(&j);
    let promo = Expr::Case {
        whens: vec![(like(j.col("p_type"), "PROMO%"), dp.clone())],
        otherwise: Some(Box::new(lit_f(0.0))),
    };
    let sel = j.select(vec![(promo, "promo"), (dp, "total")]);
    let (p, t) = (sel.col("promo"), sel.col("total"));
    let g = sel.agg(
        &[],
        vec![
            (AggFunc::Sum, Some(p), "promo_sum"),
            (AggFunc::Sum, Some(t), "total_sum"),
        ],
    );
    let pct = Expr::binary(
        BinOp::Mul,
        lit_f(100.0),
        Expr::binary(BinOp::Div, g.col("promo_sum"), g.col("total_sum")),
    );
    g.select(vec![(pct, "promo_revenue")]).plan
}

/// Q15: top supplier (max-of-aggregate via constant-key join).
pub fn q15(cat: &TpchCatalog) -> LogicalPlan {
    let revenue = || {
        let li = P::scan(cat, "lineitem");
        let sd = ge_lt(
            li.col("l_shipdate"),
            Expr::lit(d("1996-01-01")),
            Expr::lit(d("1996-04-01")),
        );
        let li = li.filter(sd);
        let dp = disc_price(&li);
        li.agg(
            &["l_suppkey"],
            vec![(AggFunc::Sum, Some(dp), "total_revenue")],
        )
    };
    let max_rev = {
        let r = revenue();
        let tr = r.col("total_revenue");
        r.agg(&[], vec![(AggFunc::Max, Some(tr), "max_revenue")])
    };
    let j = revenue().cross_one(max_rev);
    let is_max = Expr::eq(j.col("total_revenue"), j.col("max_revenue"));
    let j = j
        .filter(is_max)
        .join(P::scan(cat, "supplier"), &[("l_suppkey", "s_suppkey")]);
    j.select(vec![
        (j.col("s_suppkey"), "s_suppkey"),
        (j.col("s_name"), "s_name"),
        (j.col("s_address"), "s_address"),
        (j.col("s_phone"), "s_phone"),
        (j.col("total_revenue"), "total_revenue"),
    ])
    .sort(&[("s_suppkey", true)])
    .plan
}

/// Q16: parts/supplier relationship (NOT IN → anti join;
/// COUNT(DISTINCT) → nested aggregation).
pub fn q16(cat: &TpchCatalog) -> LogicalPlan {
    let part = P::scan(cat, "part");
    let pp = Expr::and(
        Expr::and(
            Expr::binary(BinOp::Ne, part.col("p_brand"), lit_s("Brand#45")),
            not_like(part.col("p_type"), "MEDIUM POLISHED%"),
        ),
        Expr::InList {
            e: Box::new(part.col("p_size")),
            list: [49i64, 14, 23, 45, 19, 3, 36, 9]
                .iter()
                .map(|&x| Value::I64(x))
                .collect(),
            negated: false,
        },
    );
    let part = part.filter(pp);
    let complainers = {
        let s = P::scan(cat, "supplier");
        let c = like(s.col("s_comment"), "%Customer%Complaints%");
        s.filter(c).select(vec![(Expr::col(0), "bad_suppkey")])
    };
    let ps = P::scan(cat, "partsupp").join_on(
        complainers,
        JoinKind::Anti,
        &[("ps_suppkey", "bad_suppkey")],
        None,
    );
    let j = ps.join(part, &[("ps_partkey", "p_partkey")]);
    // distinct (brand, type, size, suppkey) then count per (brand,type,size)
    let distinct = j.agg(&["p_brand", "p_type", "p_size", "ps_suppkey"], vec![]);
    distinct
        .agg(
            &["p_brand", "p_type", "p_size"],
            vec![(AggFunc::CountStar, None, "supplier_cnt")],
        )
        .sort(&[
            ("supplier_cnt", false),
            ("p_brand", true),
            ("p_type", true),
            ("p_size", true),
        ])
        .plan
}

/// Q17: small-quantity-order revenue (correlated avg → per-part agg + join).
pub fn q17(cat: &TpchCatalog) -> LogicalPlan {
    let avg_qty = {
        let li = P::scan(cat, "lineitem");
        let q = li.col("l_quantity");
        let a = li.agg(&["l_partkey"], vec![(AggFunc::Avg, Some(q), "avg_qty")]);
        P {
            plan: a.plan,
            cols: vec!["aq_partkey".into(), "avg_qty".into()],
        }
    };
    let part = P::scan(cat, "part");
    let pp = Expr::and(
        Expr::eq(part.col("p_brand"), lit_s("Brand#23")),
        Expr::eq(part.col("p_container"), lit_s("MED BOX")),
    );
    let part = part.filter(pp);
    let j = P::scan(cat, "lineitem")
        .join(part, &[("l_partkey", "p_partkey")])
        .join(avg_qty, &[("l_partkey", "aq_partkey")]);
    let small = Expr::binary(
        BinOp::Lt,
        j.col("l_quantity"),
        Expr::binary(BinOp::Mul, lit_f(0.2), j.col("avg_qty")),
    );
    let j = j.filter(small);
    let ep = j.col("l_extendedprice");
    let g = j.agg(&[], vec![(AggFunc::Sum, Some(ep), "sum_price")]);
    let avg_yearly = Expr::binary(BinOp::Div, g.col("sum_price"), lit_f(7.0));
    g.select(vec![(avg_yearly, "avg_yearly")]).plan
}

/// Q18: large-volume customers (HAVING sum > threshold via agg + join back).
pub fn q18(cat: &TpchCatalog, threshold: f64) -> LogicalPlan {
    let big_orders = {
        let li = P::scan(cat, "lineitem");
        let q = li.col("l_quantity");
        let a = li.agg(&["l_orderkey"], vec![(AggFunc::Sum, Some(q), "sum_qty_o")]);
        let keep = Expr::binary(BinOp::Gt, a.col("sum_qty_o"), lit_f(threshold));
        let f = a.filter(keep);
        let k = f.col("l_orderkey");
        f.select(vec![(k, "big_orderkey")])
    };
    let j = P::scan(cat, "lineitem")
        .join(big_orders, &[("l_orderkey", "big_orderkey")])
        .join(P::scan(cat, "orders"), &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "customer"), &[("o_custkey", "c_custkey")]);
    let q = j.col("l_quantity");
    j.agg(
        &[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
        ],
        vec![(AggFunc::Sum, Some(q), "sum_qty")],
    )
    .sort(&[("o_totalprice", false), ("o_orderdate", true)])
    .limit(100)
    .plan
}

/// Q19: discounted revenue (disjunctive join predicates as residual filter).
pub fn q19(cat: &TpchCatalog) -> LogicalPlan {
    let j = P::scan(cat, "lineitem").join(P::scan(cat, "part"), &[("l_partkey", "p_partkey")]);
    let common = Expr::and(
        Expr::InList {
            e: Box::new(j.col("l_shipmode")),
            list: vec![Value::Str("AIR".into()), Value::Str("REG AIR".into())],
            negated: false,
        },
        Expr::eq(j.col("l_shipinstruct"), lit_s("DELIVER IN PERSON")),
    );
    let branch = |brand: &str, containers: &[&str], qlo: f64, qhi: f64, size_hi: i64| {
        Expr::and(
            Expr::and(
                Expr::eq(j.col("p_brand"), lit_s(brand)),
                Expr::InList {
                    e: Box::new(j.col("p_container")),
                    list: containers
                        .iter()
                        .map(|c| Value::Str(c.to_string()))
                        .collect(),
                    negated: false,
                },
            ),
            Expr::and(
                between(j.col("l_quantity"), lit_f(qlo), lit_f(qhi)),
                between(j.col("p_size"), lit_i(1), lit_i(size_hi)),
            ),
        )
    };
    let disjunct = Expr::or(
        Expr::or(
            branch(
                "Brand#12",
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                1.0,
                11.0,
                5,
            ),
            branch(
                "Brand#23",
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10.0,
                20.0,
                10,
            ),
        ),
        branch(
            "Brand#34",
            &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
            20.0,
            30.0,
            15,
        ),
    );
    let j = j.filter(Expr::and(common, disjunct));
    let dp = disc_price(&j);
    j.agg(&[], vec![(AggFunc::Sum, Some(dp), "revenue")]).plan
}

/// Q20: potential part promotion (nested subqueries → aggregates + semi
/// joins).
pub fn q20(cat: &TpchCatalog) -> LogicalPlan {
    // half the quantity shipped per (part, supp) in 1994
    let half_qty = {
        let li = P::scan(cat, "lineitem");
        let sd = ge_lt(
            li.col("l_shipdate"),
            Expr::lit(d("1994-01-01")),
            Expr::lit(d("1995-01-01")),
        );
        let li = li.filter(sd);
        let q = li.col("l_quantity");
        let a = li.agg(
            &["l_partkey", "l_suppkey"],
            vec![(AggFunc::Sum, Some(q), "sum_qty")],
        );
        P {
            plan: a.plan,
            cols: vec!["hq_partkey".into(), "hq_suppkey".into(), "sum_qty".into()],
        }
    };
    let forest_parts = {
        let p = P::scan(cat, "part");
        let f = like(p.col("p_name"), "forest%");
        let fp = p.filter(f);
        let k = fp.col("p_partkey");
        fp.select(vec![(k, "fp_partkey")])
    };
    let ps = P::scan(cat, "partsupp")
        .join_on(
            forest_parts,
            JoinKind::Semi,
            &[("ps_partkey", "fp_partkey")],
            None,
        )
        .join(
            half_qty,
            &[("ps_partkey", "hq_partkey"), ("ps_suppkey", "hq_suppkey")],
        );
    let excess = Expr::binary(
        BinOp::Gt,
        Expr::Cast(Box::new(ps.col("ps_availqty")), vw_common::DataType::F64),
        Expr::binary(BinOp::Mul, lit_f(0.5), ps.col("sum_qty")),
    );
    let ps = ps.filter(excess);
    let good_supp = {
        let k = ps.col("ps_suppkey");
        ps.select(vec![(k, "gs_suppkey")])
    };
    let j = P::scan(cat, "supplier")
        .join_on(
            good_supp,
            JoinKind::Semi,
            &[("s_suppkey", "gs_suppkey")],
            None,
        )
        .join(P::scan(cat, "nation"), &[("s_nationkey", "n_nationkey")]);
    let canada = Expr::eq(j.col("n_name"), lit_s("CANADA"));
    let j = j.filter(canada);
    j.select(vec![
        (j.col("s_name"), "s_name"),
        (j.col("s_address"), "s_address"),
    ])
    .sort(&[("s_name", true)])
    .plan
}

/// Q21: suppliers who kept orders waiting (correlated EXISTS/NOT EXISTS →
/// semi/anti joins with inequality residuals).
pub fn q21(cat: &TpchCatalog) -> LogicalPlan {
    // l1: the late line
    let l1 = {
        let li = P::scan(cat, "lineitem");
        let late = Expr::binary(BinOp::Gt, li.col("l_receiptdate"), li.col("l_commitdate"));
        li.filter(late)
    };
    let orders = {
        let o = P::scan(cat, "orders");
        let f = Expr::eq(o.col("o_orderstatus"), lit_s("F"));
        o.filter(f)
    };
    let nation = {
        let n = P::scan(cat, "nation");
        let f = Expr::eq(n.col("n_name"), lit_s("SAUDI ARABIA"));
        n.filter(f)
    };
    let base = l1
        .join(orders, &[("l_orderkey", "o_orderkey")])
        .join(P::scan(cat, "supplier"), &[("l_suppkey", "s_suppkey")])
        .join(nation, &[("s_nationkey", "n_nationkey")]);

    // exists other line of same order from a different supplier
    let l2 = {
        let li = P::scan(cat, "lineitem");
        P {
            plan: li.plan,
            cols: li.cols.iter().map(|c| format!("l2_{}", &c[2..])).collect(),
        }
    };
    let base_cols = base.cols.len();
    let with_other = base.join_on(
        l2,
        JoinKind::Semi,
        &[("l_orderkey", "l2_orderkey")],
        Some(Box::new(move |j: &P| {
            let _ = j;
            // residual over combined: l2_suppkey <> l_suppkey
            Expr::binary(
                BinOp::Ne,
                Expr::col(base_cols + 2), // l2_suppkey
                Expr::col(2),             // l_suppkey
            )
        })),
    );
    // not exists another late line of same order from a different supplier
    let l3 = {
        let li = P::scan(cat, "lineitem");
        let late = Expr::binary(BinOp::Gt, li.col("l_receiptdate"), li.col("l_commitdate"));
        let f = li.filter(late);
        P {
            plan: f.plan,
            cols: f.cols.iter().map(|c| format!("l3_{}", &c[2..])).collect(),
        }
    };
    let with_cols = with_other.cols.len();
    let waiting = with_other.join_on(
        l3,
        JoinKind::Anti,
        &[("l_orderkey", "l3_orderkey")],
        Some(Box::new(move |_j: &P| {
            Expr::binary(
                BinOp::Ne,
                Expr::col(with_cols + 2), // l3_suppkey
                Expr::col(2),             // l_suppkey
            )
        })),
    );
    waiting
        .agg(&["s_name"], vec![(AggFunc::CountStar, None, "numwait")])
        .sort(&[("numwait", false), ("s_name", true)])
        .limit(100)
        .plan
}

/// Q22: global sales opportunity (scalar avg subquery → constant-key join;
/// NOT EXISTS → anti join).
pub fn q22(cat: &TpchCatalog) -> LogicalPlan {
    let codes: Vec<Value> = ["13", "31", "23", "29", "30", "18", "17"]
        .iter()
        .map(|s| Value::Str(s.to_string()))
        .collect();
    let cust_with_code = |name: &str| {
        let c = P::scan(cat, "customer");
        let code = Expr::Substr {
            e: Box::new(c.col("c_phone")),
            start: 1,
            len: 2,
        };
        let mut items: Vec<(Expr, &str)> = vec![];
        let cols = ["c_custkey", "c_phone", "c_acctbal"];
        for col in cols {
            items.push((c.col(col), col));
        }
        items.push((code, name));
        let sel = c.select(items);
        let in_list = Expr::InList {
            e: Box::new(sel.col(name)),
            list: codes.clone(),
            negated: false,
        };
        sel.filter(in_list)
    };
    let avg_bal = {
        let c = cust_with_code("cntrycode");
        let positive = Expr::binary(BinOp::Gt, c.col("c_acctbal"), lit_f(0.0));
        let f = c.filter(positive);
        let b = f.col("c_acctbal");
        f.agg(&[], vec![(AggFunc::Avg, Some(b), "avg_bal")])
    };
    let j = cust_with_code("cntrycode").cross_one(avg_bal);
    let rich = Expr::binary(BinOp::Gt, j.col("c_acctbal"), j.col("avg_bal"));
    let j = j.filter(rich);
    // NOT EXISTS orders
    let orders_keys = {
        let o = P::scan(cat, "orders");
        let k = o.col("o_custkey");
        o.select(vec![(k, "ok_custkey")])
    };
    let no_orders = j.join_on(
        orders_keys,
        JoinKind::Anti,
        &[("c_custkey", "ok_custkey")],
        None,
    );
    let bal = no_orders.col("c_acctbal");
    no_orders
        .agg(
            &["cntrycode"],
            vec![
                (AggFunc::CountStar, None, "numcust"),
                (AggFunc::Sum, Some(bal), "totacctbal"),
            ],
        )
        .sort(&[("cntrycode", true)])
        .plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tpch_schema;

    fn catalog() -> TpchCatalog {
        let mut map = HashMap::new();
        for (i, t) in crate::gen::TPCH_TABLES.iter().enumerate() {
            map.insert(
                t.to_string(),
                (TableId::new(i as u64 + 1), tpch_schema(t).unwrap()),
            );
        }
        TpchCatalog { tables: map }
    }

    #[test]
    fn all_queries_build_and_typecheck() {
        let cat = catalog();
        let queries = all_queries(&cat);
        assert_eq!(queries.len(), 22);
        for (n, plan) in queries {
            let schema = plan
                .schema()
                .unwrap_or_else(|e| panic!("Q{} schema error: {}", n, e));
            assert!(!schema.is_empty(), "Q{} empty schema", n);
            schema
                .check_unique_names()
                .unwrap_or_else(|e| panic!("Q{}: {}", n, e));
        }
    }

    #[test]
    fn known_output_schemas() {
        let cat = catalog();
        let q1s = q1(&cat).schema().unwrap();
        assert_eq!(q1s.len(), 10);
        assert_eq!(q1s.field(0).name, "l_returnflag");
        assert_eq!(q1s.field(2).name, "sum_qty");
        let q6s = q6(&cat).schema().unwrap();
        assert_eq!(q6s.len(), 1);
        assert_eq!(q6s.field(0).name, "revenue");
        let q3s = q3(&cat).schema().unwrap();
        assert_eq!(q3s.len(), 4);
        let q14s = q14(&cat).schema().unwrap();
        assert_eq!(q14s.field(0).name, "promo_revenue");
        let q22s = q22(&cat).schema().unwrap();
        assert_eq!(
            q22s.fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            vec!["cntrycode", "numcust", "totacctbal"]
        );
    }

    #[test]
    fn rewriting_keeps_queries_valid() {
        let cat = catalog();
        for (n, plan) in all_queries(&cat) {
            let before = plan.schema().unwrap();
            let rewritten = vw_plan::rewrite_default(plan, 1);
            let after = rewritten
                .schema()
                .unwrap_or_else(|e| panic!("Q{} broken by rewrite: {}", n, e));
            assert_eq!(before, after, "Q{} schema changed by rewrite", n);
        }
    }

    #[test]
    fn parallelize_keeps_queries_valid() {
        let cat = catalog();
        for (n, plan) in all_queries(&cat) {
            let before = plan.schema().unwrap();
            let rewritten = vw_plan::rewrite_default(plan, 4);
            let after = rewritten
                .schema()
                .unwrap_or_else(|e| panic!("Q{} broken by parallelize: {}", n, e));
            assert_eq!(before, after, "Q{} schema changed by parallelize", n);
        }
    }
}
