//! The deterministic TPC-H data generator.
//!
//! Faithful to the properties queries depend on rather than to dbgen's exact
//! text grammars; see the crate docs for the substitution rationale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vw_common::date::parse_date;
use vw_common::Value;

/// The eight TPC-H tables in load (dependency) order.
pub const TPCH_TABLES: &[&str] = &[
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// (name, regionkey) for the 25 standard nations.
const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const TYPE_SYL1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYL1: &[&str] = &["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_SYL2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];
const WORDS: &[&str] = &[
    "packages",
    "instructions",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "beans",
    "requests",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
    "sauternes",
    "warthogs",
    "frets",
    "dinos",
    "attainments",
    "somas",
    "braids",
    "hockey",
    "players",
    "excuses",
    "waters",
    "sheaves",
    "depths",
    "sentiments",
    "decoys",
    "realms",
    "pains",
    "grouches",
    "escapades",
    "quickly",
    "slyly",
    "carefully",
    "furiously",
    "blithely",
    "express",
    "regular",
    "final",
    "ironic",
    "even",
    "bold",
    "silent",
    "pending",
    "unusual",
    "special",
];

/// Deterministic TPC-H generator at a given scale factor.
pub struct TpchGenerator {
    sf: f64,
    seed: u64,
}

impl TpchGenerator {
    pub fn new(sf: f64) -> TpchGenerator {
        TpchGenerator { sf, seed: 0x7c_d6 }
    }

    pub fn with_seed(sf: f64, seed: u64) -> TpchGenerator {
        TpchGenerator { sf, seed }
    }

    pub fn scale_factor(&self) -> f64 {
        self.sf
    }

    fn scaled(&self, base: u64, min: u64) -> u64 {
        ((base as f64 * self.sf).round() as u64).max(min)
    }

    /// Cardinality of a table at this scale factor.
    pub fn rows_of(&self, table: &str) -> u64 {
        match table {
            "region" => 5,
            "nation" => 25,
            "supplier" => self.scaled(10_000, 10),
            "part" => self.scaled(200_000, 50),
            "partsupp" => self.rows_of("part") * 4,
            "customer" => self.scaled(150_000, 30),
            "orders" => self.scaled(1_500_000, 150),
            // lineitem is 1..7 per order; exact count comes from generation
            "lineitem" => self.rows_of("orders") * 4,
            _ => 0,
        }
    }

    fn rng(&self, table: &str) -> SmallRng {
        let mut h = self.seed;
        for b in table.bytes() {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        SmallRng::seed_from_u64(h)
    }

    /// Generate all rows of one table.
    pub fn rows(&self, table: &str) -> Vec<Vec<Value>> {
        match table {
            "region" => self.region(),
            "nation" => self.nation(),
            "supplier" => self.supplier(),
            "part" => self.part(),
            "partsupp" => self.partsupp(),
            "customer" => self.customer(),
            "orders" => self.orders().0,
            "lineitem" => self.lineitem(),
            other => panic!("unknown TPC-H table {}", other),
        }
    }

    fn comment(rng: &mut SmallRng, inject: Option<&str>) -> String {
        let n = rng.gen_range(3..8);
        let mut words: Vec<&str> = (0..n)
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
            .collect();
        if let Some(phrase) = inject {
            words.insert(rng.gen_range(0..words.len()), phrase);
        }
        words.join(" ")
    }

    fn region(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("region");
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                vec![
                    Value::I64(i as i64),
                    Value::Str(name.to_string()),
                    Value::Str(Self::comment(&mut rng, None)),
                ]
            })
            .collect()
    }

    fn nation(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("nation");
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| {
                vec![
                    Value::I64(i as i64),
                    Value::Str(name.to_string()),
                    Value::I64(*region),
                    Value::Str(Self::comment(&mut rng, None)),
                ]
            })
            .collect()
    }

    fn supplier(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("supplier");
        let n = self.rows_of("supplier");
        (1..=n as i64)
            .map(|k| {
                let nation = rng.gen_range(0..25i64);
                // Q16 filters suppliers with complaint comments (~5%).
                let inject = if rng.gen_bool(0.05) {
                    Some("Customer Complaints")
                } else {
                    None
                };
                vec![
                    Value::I64(k),
                    Value::Str(format!("Supplier#{:09}", k)),
                    Value::Str(format!("addr sup {}", k * 7 % 1000)),
                    Value::I64(nation),
                    Value::Str(phone(nation, k)),
                    Value::F64(money(&mut rng, -999.99, 9999.99)),
                    Value::Str(Self::comment(&mut rng, inject)),
                ]
            })
            .collect()
    }

    fn part(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("part");
        let n = self.rows_of("part");
        (1..=n as i64)
            .map(|k| {
                let name: Vec<&str> = (0..5)
                    .map(|_| COLORS[rng.gen_range(0..COLORS.len())])
                    .collect();
                let brand = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
                let ptype = format!(
                    "{} {} {}",
                    TYPE_SYL1[rng.gen_range(0..TYPE_SYL1.len())],
                    TYPE_SYL2[rng.gen_range(0..TYPE_SYL2.len())],
                    TYPE_SYL3[rng.gen_range(0..TYPE_SYL3.len())]
                );
                let container = format!(
                    "{} {}",
                    CONTAINER_SYL1[rng.gen_range(0..CONTAINER_SYL1.len())],
                    CONTAINER_SYL2[rng.gen_range(0..CONTAINER_SYL2.len())]
                );
                vec![
                    Value::I64(k),
                    Value::Str(name.join(" ")),
                    Value::Str(format!("Manufacturer#{}", (k % 5) + 1)),
                    Value::Str(brand),
                    Value::Str(ptype),
                    Value::I64(rng.gen_range(1..=50)),
                    Value::Str(container),
                    Value::F64(retail_price(k)),
                    Value::Str(Self::comment(&mut rng, None)),
                ]
            })
            .collect()
    }

    fn partsupp(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("partsupp");
        let parts = self.rows_of("part") as i64;
        let suppliers = self.rows_of("supplier") as i64;
        let mut out = Vec::with_capacity((parts * 4) as usize);
        for p in 1..=parts {
            for s in 0..4i64 {
                let suppkey = (p + s * spread_step(suppliers, p)) % suppliers + 1;
                out.push(vec![
                    Value::I64(p),
                    Value::I64(suppkey),
                    Value::I64(rng.gen_range(1..=9999)),
                    Value::F64(money(&mut rng, 1.0, 1000.0)),
                    Value::Str(Self::comment(&mut rng, None)),
                ]);
            }
        }
        out
    }

    fn customer(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("customer");
        let n = self.rows_of("customer");
        (1..=n as i64)
            .map(|k| {
                let nation = rng.gen_range(0..25i64);
                vec![
                    Value::I64(k),
                    Value::Str(format!("Customer#{:09}", k)),
                    Value::Str(format!("addr cust {}", k * 13 % 1000)),
                    Value::I64(nation),
                    Value::Str(phone(nation, k)),
                    Value::F64(money(&mut rng, -999.99, 9999.99)),
                    Value::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string()),
                    Value::Str(Self::comment(&mut rng, None)),
                ]
            })
            .collect()
    }

    /// Orders plus the per-order (orderdate, line count) needed by lineitem.
    #[allow(clippy::type_complexity)]
    fn orders(&self) -> (Vec<Vec<Value>>, Vec<(i64, i32, u32)>) {
        let mut rng = self.rng("orders");
        let n = self.rows_of("orders");
        let customers = self.rows_of("customer") as i64;
        let start = parse_date("1992-01-01").unwrap();
        let end = parse_date("1998-08-02").unwrap();
        let cutoff = parse_date("1995-06-17").unwrap();
        let mut rows = Vec::with_capacity(n as usize);
        let mut meta = Vec::with_capacity(n as usize);
        for k in 1..=n as i64 {
            // Spec: a third of customers get no orders (custkey % 3 == 0).
            let mut custkey = rng.gen_range(1..=customers);
            if custkey % 3 == 0 {
                custkey = (custkey % customers) + 1;
                if custkey % 3 == 0 {
                    custkey = (custkey % customers) + 1;
                }
            }
            let orderdate = rng.gen_range(start..=end - 122);
            let n_lines = rng.gen_range(1..=7u32);
            let status = if orderdate + 121 < cutoff {
                "F"
            } else if orderdate > cutoff {
                "O"
            } else {
                "P"
            };
            // Q13 filters comments '%special%requests%' (~5%).
            let inject = if rng.gen_bool(0.05) {
                Some("special handling requests")
            } else {
                None
            };
            rows.push(vec![
                Value::I64(k),
                Value::I64(custkey),
                Value::Str(status.to_string()),
                Value::F64(money(&mut rng, 800.0, 500_000.0)),
                Value::Date(orderdate),
                Value::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string()),
                Value::Str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
                Value::I64(0),
                Value::Str(Self::comment(&mut rng, inject)),
            ]);
            meta.push((k, orderdate, n_lines));
        }
        (rows, meta)
    }

    fn lineitem(&self) -> Vec<Vec<Value>> {
        let mut rng = self.rng("lineitem");
        let (_, order_meta) = self.orders();
        let parts = self.rows_of("part") as i64;
        let suppliers = self.rows_of("supplier") as i64;
        let cutoff = parse_date("1995-06-17").unwrap();
        let mut out = Vec::with_capacity(order_meta.len() * 4);
        for (orderkey, orderdate, n_lines) in order_meta {
            for line in 1..=n_lines {
                let partkey = rng.gen_range(1..=parts);
                // one of the 4 suppliers of this part (same spreading fn)
                let s = rng.gen_range(0..4i64);
                let suppkey = (partkey + s * spread_step(suppliers, partkey)) % suppliers + 1;
                let quantity = rng.gen_range(1..=50) as f64;
                let extendedprice = quantity * retail_price(partkey);
                let discount = rng.gen_range(0..=10) as f64 / 100.0;
                let tax = rng.gen_range(0..=8) as f64 / 100.0;
                let shipdate = orderdate + rng.gen_range(1..=121);
                let commitdate = orderdate + rng.gen_range(30..=90);
                let receiptdate = shipdate + rng.gen_range(1..=30);
                let returnflag = if receiptdate <= cutoff {
                    if rng.gen_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > cutoff { "O" } else { "F" };
                out.push(vec![
                    Value::I64(orderkey),
                    Value::I64(partkey),
                    Value::I64(suppkey),
                    Value::I64(line as i64),
                    Value::F64(quantity),
                    Value::F64(extendedprice),
                    Value::F64(discount),
                    Value::F64(tax),
                    Value::Str(returnflag.to_string()),
                    Value::Str(linestatus.to_string()),
                    Value::Date(shipdate),
                    Value::Date(commitdate),
                    Value::Date(receiptdate),
                    Value::Str(INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())].to_string()),
                    Value::Str(SHIPMODES[rng.gen_range(0..SHIPMODES.len())].to_string()),
                    Value::Str(Self::comment(&mut rng, None)),
                ]);
            }
        }
        out
    }
}

/// The spec's supplier spreading step, adjusted so the four suppliers of a
/// part stay distinct even at tiny scale factors (where `suppliers/4` can
/// divide `suppliers`).
fn spread_step(suppliers: i64, partkey: i64) -> i64 {
    let mut step = suppliers / 4 + (partkey - 1) / suppliers;
    while (1..4).any(|k| (k * step) % suppliers == 0) {
        step += 1;
    }
    step
}

fn phone(nation: i64, key: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        key * 31 % 1000,
        key * 17 % 1000,
        key * 7 % 10_000
    )
}

fn money(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo..hi) * 100.0).round() / 100.0
}

/// The spec's retail price formula (deterministic in the part key).
fn retail_price(partkey: i64) -> f64 {
    (90000.0 + (partkey % 200_001) as f64 / 10.0 + 100.0 * (partkey % 1000) as f64) / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tpch_schema;
    use vw_common::date::parse_date;

    #[test]
    fn deterministic_for_same_seed() {
        let a = TpchGenerator::new(0.001).rows("customer");
        let b = TpchGenerator::new(0.001).rows("customer");
        assert_eq!(a, b);
        let c = TpchGenerator::with_seed(0.001, 42).rows("customer");
        assert_ne!(a, c);
    }

    #[test]
    fn row_counts_scale() {
        let g = TpchGenerator::new(0.01);
        assert_eq!(g.rows_of("region"), 5);
        assert_eq!(g.rows_of("nation"), 25);
        assert_eq!(g.rows_of("supplier"), 100);
        assert_eq!(g.rows_of("part"), 2000);
        assert_eq!(g.rows_of("customer"), 1500);
        assert_eq!(g.rows_of("orders"), 15000);
        assert_eq!(g.rows("partsupp").len(), 8000);
        let li = g.rows("lineitem").len();
        assert!((45_000..75_000).contains(&li), "lineitem {}", li);
    }

    #[test]
    fn rows_match_schemas() {
        let g = TpchGenerator::new(0.001);
        for t in TPCH_TABLES {
            let schema = tpch_schema(t).unwrap();
            let rows = g.rows(t);
            assert!(!rows.is_empty(), "{}", t);
            for row in rows.iter().take(50) {
                assert_eq!(row.len(), schema.len(), "{}", t);
                for (v, f) in row.iter().zip(schema.fields()) {
                    assert_eq!(v.data_type(), Some(f.ty), "table {} column {}", t, f.name);
                }
            }
        }
    }

    #[test]
    fn lineitem_date_invariants() {
        let g = TpchGenerator::new(0.001);
        let schema = tpch_schema("lineitem").unwrap();
        let ship = schema.index_of("l_shipdate").unwrap();
        let commit = schema.index_of("l_commitdate").unwrap();
        let receipt = schema.index_of("l_receiptdate").unwrap();
        let flag = schema.index_of("l_returnflag").unwrap();
        let status = schema.index_of("l_linestatus").unwrap();
        let cutoff = parse_date("1995-06-17").unwrap();
        for row in g.rows("lineitem") {
            let s = row[ship].as_i64().unwrap() as i32;
            let c = row[commit].as_i64().unwrap() as i32;
            let r = row[receipt].as_i64().unwrap() as i32;
            assert!(r > s, "receipt after ship");
            assert!(c >= s - 121, "commit sane");
            let f = row[flag].as_str().unwrap();
            if r <= cutoff {
                assert!(f == "R" || f == "A");
            } else {
                assert_eq!(f, "N");
            }
            let st = row[status].as_str().unwrap();
            assert_eq!(st == "O", s > cutoff);
        }
    }

    #[test]
    fn orders_skip_every_third_customer() {
        let g = TpchGenerator::new(0.01);
        let schema = tpch_schema("orders").unwrap();
        let ck = schema.index_of("o_custkey").unwrap();
        for row in g.rows("orders") {
            let c = row[ck].as_i64().unwrap();
            assert_ne!(c % 3, 0, "custkey {} should have no orders", c);
        }
    }

    #[test]
    fn partsupp_pairs_are_distinct() {
        let g = TpchGenerator::new(0.003);
        let rows = g.rows("partsupp");
        let mut seen = std::collections::HashSet::new();
        for row in &rows {
            let p = row[0].as_i64().unwrap();
            let s = row[1].as_i64().unwrap();
            assert!(seen.insert((p, s)), "dup pair ({}, {})", p, s);
            assert!(s >= 1 && s <= g.rows_of("supplier") as i64);
        }
    }

    #[test]
    fn query_relevant_value_domains_present() {
        let g = TpchGenerator::new(0.01);
        // Q14 needs PROMO parts, Q2 needs BRASS, Q9 needs green names.
        let parts = g.rows("part");
        assert!(parts
            .iter()
            .any(|r| r[4].as_str().unwrap().starts_with("PROMO")));
        assert!(parts
            .iter()
            .any(|r| r[4].as_str().unwrap().ends_with("BRASS")));
        assert!(parts
            .iter()
            .any(|r| r[1].as_str().unwrap().contains("green")));
        // Q13/Q16 comment phrases.
        let orders = g.rows("orders");
        assert!(orders
            .iter()
            .any(|r| r[8].as_str().unwrap().contains("special handling requests")));
        let suppliers = g.rows("supplier");
        assert!(suppliers
            .iter()
            .any(|r| r[6].as_str().unwrap().contains("Customer Complaints")));
        // Q22 phone codes: two-digit country codes 10..34.
        let cust = g.rows("customer");
        assert!(cust.iter().all(|r| {
            let p = r[4].as_str().unwrap();
            let code: i64 = p[..2].parse().unwrap();
            (10..35).contains(&code)
        }));
    }
}
