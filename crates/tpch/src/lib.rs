//! `vw-tpch` — a deterministic TPC-H data generator and the 22 benchmark
//! queries as logical-plan builders.
//!
//! The paper's evaluation (§I-C) is audited TPC-H at 100GB–1TB. This crate
//! reproduces the workload at laptop scale factors (0.001–0.1): the official
//! `dbgen` is C and its exact text grammars are irrelevant to engine
//! behaviour, so [`gen`] produces schema-correct, distribution-faithful data
//! (uniform keys, the 1992–1998 date ranges, the flag/status/priority
//! domains, comment text seeded with the phrases Q13/Q16 filter on, skipping
//! every third customer for orders so Q13/Q22 have customers without orders,
//! and so on — every property a TPC-H query's predicate or join relies on).
//!
//! [`queries`] builds all 22 queries as `vw_plan::LogicalPlan`s with the
//! standard parameter defaults — the same role the Ingres front-end plays
//! for the product: hand the engine a well-shaped plan. Constructs SQL-level
//! machinery can't express in this dialect (correlated scalar subqueries)
//! are expressed the way optimizers decorrelate them anyway: aggregate +
//! join (documented per query).

pub mod gen;
pub mod queries;
pub mod schema;

pub use gen::{TpchGenerator, TPCH_TABLES};
pub use queries::{all_queries, TpchCatalog};
pub use schema::tpch_schema;
